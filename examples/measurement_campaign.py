#!/usr/bin/env python
"""The paper's full measurement pipeline on the simulated lab.

Run with::

    python examples/measurement_campaign.py          # scaled-down, ~30 s
    python examples/measurement_campaign.py --full   # paper-scale campaign

Section 3 of the paper: build the Table 1 test environment, run
longevity (stability) tests under workload, run an automated
fault-injection campaign, then turn the measurements into model
parameters with the Section 5 statistics (Eqs. 1 and 2) — closing the
loop by solving the availability model with the *measured* values.
"""

import argparse

from repro.estimation import required_injections_for_fir
from repro.models.jsas import PAPER_PARAMETERS, JsasConfiguration
from repro.testbed import (
    ClusterConfig,
    run_fault_injection_campaign,
    run_longevity_test,
)
from repro.units import HOURS_PER_YEAR


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full",
        action="store_true",
        help="run the paper-scale protocol (3,287 injections, 7-day runs)",
    )
    parser.add_argument("--seed", type=int, default=2004)
    args = parser.parse_args()

    n_injections = 3287 if args.full else 400
    longevity_days = 7.0 if args.full else 2.0

    # The Table 1 environment: 2 AS instances, 2 HADB pairs, spares.
    lab = ClusterConfig(n_as_instances=2, n_hadb_pairs=2, n_spares=2)

    # -- Stability test ----------------------------------------------------
    print(f"Longevity run ({longevity_days:.0f} days, Table 1 topology)...")
    longevity = run_longevity_test(
        duration_days=longevity_days, config=lab, seed=args.seed
    )
    print(f"  {longevity.summary()}")
    rate = longevity.as_failure_rate_estimate(0.95)
    print(
        f"  Eq.2: AS failure rate <= {rate.upper * 24:.4f}/day at 95% "
        f"({longevity.as_exposure_hours:.0f} instance-hours, "
        f"{longevity.as_failures} failures observed)"
    )
    modeled = PAPER_PARAMETERS["La_as"] * HOURS_PER_YEAR
    print(
        f"  The paper models {modeled:.0f}/year per instance — "
        "deliberately above any bound short tests can support.\n"
    )

    # -- Fault-injection campaign -------------------------------------------
    print(f"Automated fault-injection campaign ({n_injections} injections)...")
    campaign = run_fault_injection_campaign(
        n_injections, config=lab, target_kind="hadb", seed=args.seed
    )
    print("  " + campaign.summary().replace("\n", "\n  "))
    coverage = campaign.coverage(0.95)
    print(
        f"  Eq.1: FIR <= {coverage.fir_upper:.4%} at 95% confidence "
        f"({campaign.n_successful}/{campaign.n_injections} successful)"
    )
    needed = required_injections_for_fir(0.001, 0.95)
    print(
        f"  (Demonstrating FIR <= 0.1% requires {needed} all-successful "
        "injections — which is why the paper ran >3,000.)\n"
    )

    # -- Close the loop: measured values into the model ---------------------
    print("Solving Config 1 with campaign-measured parameters...")
    values = PAPER_PARAMETERS.to_dict()
    values["Tstart_short_hadb"] = campaign.recovery_summary(
        "hadb_restart"
    ).conservative_value(percentile=95.0, margin=1.5)
    values["FIR"] = min(coverage.fir_upper, 0.002)
    result = JsasConfiguration(2, 2).solve(values)
    print(f"  measured-parameter model: {result.system.summary()}")
    reference = JsasConfiguration(2, 2).solve(PAPER_PARAMETERS)
    print(f"  paper-parameter model:    {reference.system.summary()}")


if __name__ == "__main__":
    main()
