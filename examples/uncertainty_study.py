#!/usr/bin/env python
"""Uncertainty analysis: the paper's Figs. 7-8, plus an LHS refinement.

Run with::

    python examples/uncertainty_study.py [--samples 1000]

"Assume we have N systems with each system's parameters selected by
randomly sampling from possible ranges in customer sites — what is the
average system availability and its confidence intervals?"  This example
answers the paper's question for both configurations, renders the
scatter as ASCII, and shows how Latin hypercube sampling tightens the
estimate for the same cost.
"""

import argparse

from repro.models.jsas import (
    CONFIG_1,
    CONFIG_2,
    PAPER_PARAMETERS,
    build_uncertainty_analysis,
    uncertainty_distributions,
)
from repro.uncertainty import UncertaintyAnalysis


def ascii_scatter(values, width=72, height=14) -> str:
    """Render (index, value) pairs the way the paper's figures plot them."""
    top = max(values)
    rows = []
    for level in range(height, -1, -1):
        threshold_low = top * level / height
        threshold_high = top * (level + 1) / height
        line = ""
        step = max(1, len(values) // width)
        for i in range(0, len(values), step):
            window = values[i : i + step]
            hit = any(threshold_low <= v < threshold_high for v in window)
            line += "*" if hit else " "
        rows.append(f"{threshold_low:5.1f} |{line}")
    rows.append("      +" + "-" * width)
    rows.append("       parameter snapshot ->")
    return "\n".join(rows)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--samples", type=int, default=1000)
    parser.add_argument("--seed", type=int, default=2004)
    args = parser.parse_args()

    for label, config, paper in (
        ("Config 1 (Fig. 7)", CONFIG_1, "mean 3.78, 80% CI (1.89, 6.02)"),
        ("Config 2 (Fig. 8)", CONFIG_2, "mean 2.99, 80% CI (1.01, 5.19)"),
    ):
        analysis = build_uncertainty_analysis(config)
        result = analysis.run(n_samples=args.samples, seed=args.seed)
        low80, high80 = result.confidence_interval(0.80)
        low90, high90 = result.confidence_interval(0.90)
        print(f"{label} — yearly downtime over {args.samples} sampled systems")
        print(f"  mean = {result.mean:.2f} min      (paper: {paper})")
        print(f"  80% CI = ({low80:.2f}, {high80:.2f})")
        print(f"  90% CI = ({low90:.2f}, {high90:.2f})")
        print(
            f"  below 5.25 min (five 9s): {result.fraction_below(5.25):.1%}"
        )
        print(ascii_scatter(list(result.values)))
        print()

    # Which uncertainty drives the spread?  First-order Sobol indices
    # from the stored snapshots (no extra solves needed).
    from repro.uncertainty import first_order_indices

    analysis = build_uncertainty_analysis(CONFIG_1)
    result = analysis.run(n_samples=max(args.samples, 300), seed=args.seed)
    indices = first_order_indices(result, n_bins=12)
    print("Variance decomposition of Config 1's downtime spread "
          "(first-order Sobol indices):")
    for name, share in indices.items():
        bar = "#" * int(round(share * 40))
        print(f"  {name:16s} {share:5.1%} {bar}")
    print()

    # Latin hypercube vs plain Monte Carlo: tighter mean for free.
    print("Sampler comparison (Config 1, 200 samples x 5 repeats):")
    for sampler in ("monte_carlo", "latin_hypercube"):
        means = []
        for repeat in range(5):
            analysis = UncertaintyAnalysis(
                metric=lambda values: CONFIG_1.solve(
                    values
                ).yearly_downtime_minutes,
                distributions=uncertainty_distributions(),
                base_values=PAPER_PARAMETERS.to_dict(),
                sampler=sampler,
            )
            means.append(analysis.run(n_samples=200, seed=repeat).mean)
        spread = max(means) - min(means)
        print(f"  {sampler:16s} means {['%.2f' % m for m in means]} "
              f"(spread {spread:.3f})")


if __name__ == "__main__":
    main()
