#!/usr/bin/env python
"""SLA risk: from expected downtime to the distribution an operator signs.

Run with::

    python examples/sla_risk_study.py

The paper reports Config 1's *expected* downtime as 3.49 min/yr — safely
inside a five-9s budget of 5.25 min. But a year is one draw, not an
expectation: outages arrive a handful of times per decade and an HADB
pair loss alone costs about an hour. This example quantifies:

1. the distribution of a single year's downtime (compound-Poisson over
   the solved hierarchy) and the real SLA-violation probability;
2. interval availability over finite missions (one quarter) for the
   HADB pair chain, simulated against the analytic mean;
3. what shape the planner picks once the target is expressed as a
   *quantile* instead of a mean.
"""

from repro.analysis import annual_downtime_risk, mission_availability
from repro.models.jsas import (
    CONFIG_1,
    CONFIG_2,
    PAPER_PARAMETERS,
    build_hadb_pair_model,
    plan_configuration,
)
from repro.units import nines_to_availability

SLA_MINUTES = 5.25  # five 9s expressed as a yearly budget


def main(fast: bool = False) -> None:
    """``fast=True`` shrinks sample counts for smoke testing."""
    n_years = 2_000 if fast else 50_000
    n_missions = 60 if fast else 400
    n_plan_years = 2_000 if fast else 20_000
    _run(n_years, n_missions, n_plan_years)


def _run(n_years: int, n_missions: int, n_plan_years: int) -> None:
    # 1. Annual downtime distribution ---------------------------------------
    print("1. One year is a draw, not an expectation")
    for label, config in (("Config 1", CONFIG_1), ("Config 2", CONFIG_2)):
        result = config.solve(PAPER_PARAMETERS)
        risk = annual_downtime_risk(result, n_years=n_years, seed=2004)
        print(f"   {label}: model mean {result.yearly_downtime_minutes:.2f} "
              f"min/yr; {risk.summary(SLA_MINUTES)}")
    print(
        "   -> both configs beat five 9s *on average*, yet roughly one\n"
        "      year in twelve busts the 5.25-minute budget, because one\n"
        "      outage typically costs 30-60 minutes on its own.\n"
    )

    # 2. Mission availability -------------------------------------------------
    print("2. Interval availability over a one-quarter mission (HADB pair)")
    values = PAPER_PARAMETERS.to_dict()
    mission = mission_availability(
        build_hadb_pair_model(),
        mission_hours=2190.0,  # ~3 months
        n_missions=n_missions,
        values=values,
        seed=7,
    )
    print(f"   {mission.summary(target=nines_to_availability(5))}")
    print(
        "   -> the sampled mean lands on the analytic uniformization\n"
        "      integral; the perfect-mission fraction shows how rarely a\n"
        "      pair is touched at all in a quarter.\n"
    )

    # 3. Planning against a quantile -----------------------------------------
    print("3. Plan for the tail, not the mean")
    mean_plan = plan_configuration(nines_to_availability(5), values)
    config = mean_plan.configuration
    print(
        f"   mean-based five-9s plan: {config.n_instances} instances / "
        f"{config.n_pairs} pairs"
    )
    # Quantile criterion: smallest shape with P(annual > SLA) <= 5%.
    chosen = None
    for n_instances, n_pairs in ((2, 2), (4, 4), (4, 2), (6, 4)):
        from repro.models.jsas import JsasConfiguration

        candidate = JsasConfiguration(n_instances, n_pairs)
        risk = annual_downtime_risk(
            candidate.solve(values), n_years=n_plan_years, seed=5
        )
        p_violate = risk.probability_exceeding(SLA_MINUTES)
        print(
            f"   {n_instances}+{n_pairs}: P(annual downtime > "
            f"{SLA_MINUTES} min) = {p_violate:.1%}"
        )
        if chosen is None and p_violate <= 0.05:
            chosen = candidate
    if chosen is None:
        print(
            "   -> no searched shape keeps the violation risk under 5%: "
            "at these outage durations the tail is driven by Trestore "
            "and Tstart_all, not by adding hardware — invest in faster "
            "restore paths instead."
        )
    else:
        print(
            f"   -> tail-based plan: {chosen.n_instances} instances / "
            f"{chosen.n_pairs} pairs"
        )


if __name__ == "__main__":
    import sys

    main(fast="--fast" in sys.argv)
