#!/usr/bin/env python
"""Beyond the paper: performability, upgrades, human error, exact derivatives.

Run with::

    python examples/operations_study.py

Four questions the paper raises but leaves out of scope, answered with
the same modeling machinery:

1. *Performability* — the paper notes Recovery "could be a degraded
   state". How much degraded service hides behind the availability
   number?
2. *Online upgrades* — the paper restricts itself to one cluster and
   recommends dual clusters for upgrades. Quantify the three strategies.
3. *Human error* — the paper flags it as ~50% of production outages.
   Add it to the HADB pair model and see the sensitivity.
4. *Exact derivatives* — which parameter buys the most downtime per unit
   of improvement, computed with the adjoint method (machine-precision,
   one linear solve per parameter).
"""

from repro.core import model_to_dot
from repro.ctmc import steady_state_availability
from repro.models.jsas import (
    PAPER_PARAMETERS,
    build_hadb_pair_model,
    build_hadb_pair_model_with_human_error,
    compare_upgrade_strategies,
    evaluate_performability,
    extension_values,
)
from repro.sensitivity import downtime_derivatives
from repro.units import HOURS_PER_YEAR


def main() -> None:
    values = extension_values(PAPER_PARAMETERS.to_dict())

    # 1. Performability -----------------------------------------------------
    print("1. Performability (capacity-proportional rewards)")
    for n in (2, 4):
        result = evaluate_performability(n, values)
        print(f"   {n} instances: {result.summary()}")
    print(
        "   -> the 2-instance cluster spends two orders of magnitude more\n"
        "      time at half capacity than fully down; adding instances\n"
        "      buys capacity smoothness, not just uptime.\n"
    )

    # 2. Upgrade strategies ---------------------------------------------------
    print("2. Online upgrade strategies (12 campaigns/year)")
    for n in (2, 4):
        comparison = compare_upgrade_strategies(n, values)
        print(f"   {n} instances: {comparison.summary()}")
    print(
        "   -> with only 2 instances, rolling upgrades erode the margin\n"
        "      (an upgrade window plus one failure is an outage); the\n"
        "      dual-cluster switchover is cheaper. At 4 instances the\n"
        "      rolling penalty collapses — consistent with the paper's\n"
        "      finding that 4 instances make the AS tier a non-issue.\n"
    )

    # 3. Human error ---------------------------------------------------------
    print("3. Human error during reduced-redundancy windows")
    baseline = steady_state_availability(build_hadb_pair_model(), values)
    human_model = build_hadb_pair_model_with_human_error()
    print(
        f"   baseline pair downtime: "
        f"{baseline.yearly_downtime_minutes:.3f} min/yr"
    )
    for interventions_per_year, fhe in ((12, 0.02), (52, 0.02), (52, 0.10)):
        scenario = dict(
            values,
            La_human=interventions_per_year / HOURS_PER_YEAR,
            FHE=fhe,
        )
        result = steady_state_availability(human_model, scenario)
        print(
            f"   {interventions_per_year:3d} interventions/yr, "
            f"{fhe:.0%} catastrophic: "
            f"{result.yearly_downtime_minutes:.3f} min/yr "
            f"(+{result.yearly_downtime_minutes - baseline.yearly_downtime_minutes:.3f})"
        )
    print(
        "   -> weekly error-prone interventions at 10% severity add ~10%\n"
        "      to pair downtime — and every added minute is a catastrophic\n"
        "      data-loss outage, the failure mode the paper warns about.\n"
    )

    # 4. Exact downtime derivatives -------------------------------------------
    print("4. Exact downtime derivatives (adjoint method), HADB pair model")
    derivatives = downtime_derivatives(
        build_hadb_pair_model(),
        PAPER_PARAMETERS.to_dict(),
        ["La_hadb", "La_hw", "FIR", "Trestore", "Trepair"],
    )
    for name, value in sorted(
        derivatives.items(), key=lambda kv: abs(kv[1]), reverse=True
    ):
        print(f"   d(downtime)/d({name:9s}) = {value:+.4g} min/yr per unit")
    print(
        "   -> FIR dominates: each 0.1% of imperfect recovery costs about\n"
        f"      {derivatives['FIR'] * 0.001:.2f} minutes of yearly downtime "
        "per pair.\n"
    )

    # Bonus: regenerate a Fig. 3-style diagram.
    dot = model_to_dot(build_hadb_pair_model())
    print("Graphviz source for the Fig. 3 diagram (first 3 lines):")
    print("\n".join(dot.splitlines()[:3]))
    print("  ... (pipe model_to_dot output into `dot -Tpng` to render)")


if __name__ == "__main__":
    main()
