#!/usr/bin/env python
"""Build your own availability model three ways and cross-check them.

Run with::

    python examples/custom_model_spn.py

Models a small replicated cache (3 replicas, one repair crew, quorum-2
availability) as:

1. a hand-built Markov model (the RAScad-diagram style),
2. a generalized stochastic Petri net compiled to a CTMC,
3. a Monte Carlo simulation of the same chain,

and shows all three agree — then uses the Markov model for questions the
others answer less directly (MTTF, transient availability after a cold
start).
"""

from repro.core.model import MarkovModel
from repro.ctmc import (
    mean_time_to_failure,
    steady_state_availability,
    transient_reward,
    build_generator,
)
from repro.simulation import run_replications, simulate_ctmc
from repro.spn import PetriNet, solve_petri_net

FAIL_RATE = 0.02      # per replica-hour
REPAIR_RATE = 0.5     # one crew, repairs per hour
REPLICAS = 3
QUORUM = 2


def build_markov() -> MarkovModel:
    """States indexed by live replicas; quorum-2 defines 'up'."""
    model = MarkovModel("cache_markov")
    for live in range(REPLICAS, -1, -1):
        model.add_state(f"live{live}", reward=1.0 if live >= QUORUM else 0.0)
    for live in range(REPLICAS, 0, -1):
        model.add_transition(f"live{live}", f"live{live - 1}",
                             live * FAIL_RATE)
    for live in range(REPLICAS):
        model.add_transition(f"live{live}", f"live{live + 1}", REPAIR_RATE)
    return model


def build_net() -> PetriNet:
    net = PetriNet("cache_spn")
    net.add_place("Live", REPLICAS)
    net.add_place("Dead", 0)
    net.add_timed_transition("fail", FAIL_RATE, server="infinite")
    net.add_input_arc("Live", "fail")
    net.add_output_arc("fail", "Dead")
    net.add_timed_transition("repair", REPAIR_RATE)  # single crew
    net.add_input_arc("Dead", "repair")
    net.add_output_arc("repair", "Live")
    return net


def main() -> None:
    markov = build_markov()
    analytic = steady_state_availability(markov, {})
    print("Hand-built Markov model:")
    print(f"  {analytic.summary()}")

    spn = solve_petri_net(
        build_net(), {}, reward=lambda m: 1.0 if m["Live"] >= QUORUM else 0.0
    )
    print("GSPN compiled to a CTMC:")
    print(f"  {spn.summary()}")
    agreement = abs(spn.availability - analytic.availability)
    print(f"  agreement with the Markov build: |delta| = {agreement:.2e}")

    generator = build_generator(markov, {})
    simulated = run_replications(
        lambda seed: simulate_ctmc(
            generator, horizon=50_000.0, seed=seed
        ).availability,
        n_replications=8,
        master_seed=7,
        confidence=0.99,
    )
    print("Monte Carlo simulation (8 x 50k hours):")
    print(f"  {simulated.summary()}")
    inside = simulated.contains(analytic.availability)
    print(f"  analytic value inside the 99% CI: {inside}")

    # Questions the analytic engine answers directly:
    mttf = mean_time_to_failure(markov, {})
    print(f"\nMTTF from all-replicas-up to quorum loss: {mttf:,.0f} hours")
    for t in (1.0, 24.0, 720.0):
        a_t = transient_reward(markov, t, {}, initial="live3")
        print(f"  point availability at t={t:6.0f} h: {a_t:.6f}")


if __name__ == "__main__":
    main()
