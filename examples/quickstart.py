#!/usr/bin/env python
"""Quickstart: solve the paper's two configurations and read the results.

Run with::

    python examples/quickstart.py

This walks the shortest path through the library: take the paper's
parameters, build the paper's Config 1 (2 AS instances + 2 HADB pairs)
and Config 2 (4 + 4), solve the hierarchical Markov model, and print the
availability story — the reproduction of the paper's Table 2.
"""

from repro.analysis import nines_summary
from repro.models.jsas import (
    CONFIG_1,
    CONFIG_2,
    PAPER_PARAMETERS,
    build_configuration,
)


def main() -> None:
    print("Paper parameters (Section 5):")
    print(PAPER_PARAMETERS.describe())
    print()

    for label, config in (("Config 1", CONFIG_1), ("Config 2", CONFIG_2)):
        result = config.solve(PAPER_PARAMETERS)
        print(f"{label} — {config.n_instances} AS instances, "
              f"{config.n_pairs} HADB pairs")
        print(f"  availability:    {nines_summary(result.availability)}")
        print(f"  yearly downtime: {result.yearly_downtime_minutes:.2f} min")
        print(f"  MTBF:            {result.mtbf_hours:,.0f} hours")
        for name, report in result.submodels.items():
            print(
                f"    {name:10s} contributes "
                f"{report.downtime_minutes:6.2f} min/yr "
                f"({report.downtime_fraction:6.2%})"
            )
        print()

    # Any other deployment shape solves the same way.
    custom = build_configuration(n_instances=3, n_pairs=2)
    result = custom.solve(PAPER_PARAMETERS)
    print(f"Custom 3+2 deployment: {result.system.summary()}")

    # And what-if questions are parameter overrides.
    slower_ops = PAPER_PARAMETERS.updated(Tstart_all=2.0)  # 2 h to restore
    result = CONFIG_1.solve(slower_ops)
    print(
        "Config 1 with a 2-hour operator response: "
        f"{result.yearly_downtime_minutes:.2f} min/yr"
    )


if __name__ == "__main__":
    main()
