#!/usr/bin/env python
"""Capacity planning: choose a deployment shape for an availability SLA.

Run with::

    python examples/capacity_planning.py

The paper's Table 3 observation — availability peaks at 4 AS instances +
4 HADB pairs and *degrades* as more pairs add data-loss exposure — is a
planning question. This example runs the comparison, finds the optimal
shape, checks which shapes meet a five-9s SLA, and then asks the
follow-up question operators actually face: which parameter should I
invest in improving?  (Answered with sweep + importance analysis.)
"""

from repro.analysis.report import render_table
from repro.models.jsas import (
    PAPER_PARAMETERS,
    UNCERTAINTY_RANGES,
    JsasConfiguration,
    compare_configurations,
    optimal_configuration,
)
from repro.sensitivity import (
    downtime_importance,
    local_sensitivities,
    parametric_sweep,
)
from repro.units import nines_to_availability

SLA = nines_to_availability(5)  # 99.999%


def main() -> None:
    # 1. The Table 3 comparison, extended with intermediate shapes.
    shapes = [(1, 0), (2, 2), (3, 3), (4, 4), (6, 6), (8, 8), (10, 10)]
    rows = compare_configurations(shapes)
    table = render_table(
        ["# AS", "# pairs", "availability", "downtime/yr", "MTBF (h)",
         "meets 5-nines SLA"],
        [
            row.as_row() + ("yes" if row.availability >= SLA else "NO",)
            for row in rows
        ],
        title="Deployment comparison",
    )
    print(table)
    best = optimal_configuration(rows)
    print(
        f"\nOptimal shape: {best.n_instances} instances / "
        f"{best.n_pairs} pairs ({best.availability:.5%})"
    )
    print(
        "(The paper's Table 3 samples only even shapes and reports 4+4 as\n"
        " optimal; including 3+3 — enough instances to crush the AS term,\n"
        " one fewer pair of data-loss exposure — edges it out.)\n"
    )

    # 2. Where is Config 1 sensitive?  Elasticities rank the knobs.
    config = JsasConfiguration(2, 2)
    base = PAPER_PARAMETERS.to_dict()

    def downtime(values: dict) -> float:
        return config.solve(values).yearly_downtime_minutes

    knobs = ["La_as", "La_hadb", "FIR", "Tstart_long_as", "Tstart_all",
             "Trestore"]
    elasticities = local_sensitivities(downtime, knobs, base)
    print("Downtime elasticities at the operating point "
          "(% downtime change per % parameter change):")
    for name, value in sorted(
        elasticities.items(), key=lambda kv: abs(kv[1]), reverse=True
    ):
        print(f"  {name:16s} {value:+.3f}")
    print()

    # 3. Which uncertainty matters most over its realistic range?
    swings = downtime_importance(downtime, UNCERTAINTY_RANGES, base)
    print("Downtime swing over each parameter's realistic range "
          "(tornado ranking):")
    for name, swing in swings.items():
        print(f"  {name:16s} {swing:6.2f} min/yr")
    print()

    # 4. The paper's Fig. 5 question as a planning rule: how fast must
    #    HW/OS recovery be to keep five 9s on the 2+2 shape?
    sweep = parametric_sweep(
        lambda values: config.solve(values).availability,
        "Tstart_long_as",
        [0.5, 1.0, 1.5, 2.0, 2.5, 3.0],
        base,
    )
    crossing = sweep.crossing(SLA)
    print(
        "Five-9s rule for the 2+2 shape: keep AS HW/OS recovery under "
        f"{crossing:.2f} hours (the paper's Fig. 5 crossover)."
    )
    four_four = JsasConfiguration(4, 4)
    sweep4 = parametric_sweep(
        lambda values: four_four.solve(values).availability,
        "Tstart_long_as",
        [0.5, 1.75, 3.0],
        base,
    )
    print(
        "The 4+4 shape is insensitive to the same knob: availability "
        f"stays within [{min(sweep4.values):.7f}, {max(sweep4.values):.7f}] "
        "across 0.5-3 h (the paper's Fig. 6)."
    )


if __name__ == "__main__":
    main()
