"""Shared-memory multiprocess execution for batch workloads.

One deliberately small surface:

* :func:`map_chunked` — evaluate a ``(start, stop) -> values`` range
  function over ``n_samples`` in fixed-size chunks, fanned out over
  forked worker processes that write straight into a shared-memory
  result array.  Chunk boundaries depend only on ``n_samples`` and
  ``chunk_size`` — **never** on the worker count — and every solver
  stage underneath is per-sample independent (enforced by
  ``tests/kernels`` and ``tests/parallel``), so a seeded run returns
  bit-identical results for any ``n_jobs``.
* :func:`parallel_map` — ordered ``fn`` over items on forked workers;
  the engine under ``run_replications(n_jobs=...)``.  Fork inheritance
  means closures and lambdas work — nothing needs to be picklable
  except the *results*.

On platforms without the ``fork`` start method (Windows), both fall
back to sequential execution with the same chunking, keeping results
identical — parallelism is a speedup here, never a semantic.
"""

from repro.parallel.pool import (
    DEFAULT_CHUNK,
    chunk_bounds,
    cpu_count,
    map_chunked,
    parallel_map,
    resolve_jobs,
)

__all__ = [
    "DEFAULT_CHUNK",
    "chunk_bounds",
    "cpu_count",
    "map_chunked",
    "parallel_map",
    "resolve_jobs",
]
