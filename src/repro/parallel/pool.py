"""Fork-based worker pool with shared-memory result transport.

Two execution engines, both deliberately boring:

``map_chunked``
    Splits ``range(n_samples)`` into fixed-size chunks, forks
    ``n_jobs`` workers, statically assigns chunk ``c`` to worker
    ``c % n_jobs``, and lets each worker write its ``(stop - start,)``
    float result slices directly into a
    :class:`multiprocessing.shared_memory` buffer — results never
    travel through a pickle pipe.  Chunk bounds are a pure function of
    ``(n_samples, chunk_size)``, so the set of evaluated ranges — and
    therefore the bits of the result — is independent of the worker
    count.  Static assignment is deadlock-free by construction and
    load-balances well because chunks are homogeneous solver batches.

``parallel_map``
    Ordered ``fn(item)`` fan-out over forked workers with dynamic
    work-stealing (items can be heterogeneous — simulation
    replications vary in length) and results returned through a
    queue.  Results are pre-pickled *inside* the worker so an
    unpicklable return value surfaces as an error instead of a silent
    feeder-thread death (and a hung parent).

Fork start method only: inherited memory makes closures, compiled
models, and lambdas all work without pickling the *work*.  Where fork
is unavailable (Windows, some embedded interpreters) both functions
degrade to sequential execution with identical results.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import queue as queue_module
from multiprocessing import shared_memory
from typing import Any, Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.exceptions import ParallelError

#: Samples per scheduling chunk.  Fixed — never derived from the worker
#: count — so chunk boundaries (and the result bits) are the same for
#: every ``n_jobs``.
DEFAULT_CHUNK = 256

#: ``evaluate_range(start, stop)`` returns ``(stop - start,)`` floats.
RangeEvaluator = Callable[[int, int], Sequence[float]]

_JOIN_TIMEOUT = 120.0


def cpu_count() -> int:
    """Usable CPU count (scheduler affinity when the OS exposes it)."""
    if hasattr(os, "sched_getaffinity"):
        try:
            return len(os.sched_getaffinity(0)) or 1
        except OSError:  # pragma: no cover - exotic kernels
            pass
    return multiprocessing.cpu_count()


def resolve_jobs(n_jobs: Optional[int]) -> int:
    """Normalize an ``n_jobs`` request: ``None`` means all CPUs."""
    if n_jobs is None:
        return cpu_count()
    jobs = int(n_jobs)
    if jobs < 1:
        raise ParallelError(f"n_jobs must be >= 1 or None, got {n_jobs}")
    return jobs


def chunk_bounds(
    n_samples: int, chunk_size: int = DEFAULT_CHUNK
) -> List[Tuple[int, int]]:
    """``[(start, stop), ...]`` covering ``range(n_samples)``.

    Depends only on its arguments — never on worker count — which is
    the load-bearing fact behind ``n_jobs``-independent determinism.
    """
    if n_samples < 0:
        raise ParallelError(f"n_samples must be >= 0, got {n_samples}")
    if chunk_size < 1:
        raise ParallelError(f"chunk_size must be >= 1, got {chunk_size}")
    return [
        (start, min(start + chunk_size, n_samples))
        for start in range(0, n_samples, chunk_size)
    ]


def _fork_context() -> Optional[Any]:
    try:
        if "fork" in multiprocessing.get_all_start_methods():
            return multiprocessing.get_context("fork")
    except (ValueError, OSError):  # pragma: no cover - platform
        pass
    return None  # pragma: no cover - non-fork platform


def _dumps_exception(exc: BaseException) -> bytes:
    try:
        return pickle.dumps(exc)
    except Exception:  # noqa: BLE001 - any pickling failure
        fallback = ParallelError(
            f"worker raised unpicklable {type(exc).__name__}: {exc}"
        )
        return pickle.dumps(fallback)


# Chunked shared-memory map ------------------------------------------------


def _evaluate_into(
    evaluate_range: RangeEvaluator,
    out: np.ndarray,
    start: int,
    stop: int,
) -> None:
    values = np.asarray(evaluate_range(start, stop), dtype=np.float64)
    if values.shape != (stop - start,):
        raise ParallelError(
            f"evaluate_range({start}, {stop}) returned shape "
            f"{values.shape}; expected ({stop - start},)"
        )
    out[start:stop] = values


def _chunk_worker(
    evaluate_range: RangeEvaluator,
    bounds: Sequence[Tuple[int, int]],
    worker_index: int,
    n_workers: int,
    error_queue: Any,
    shm_name: str,
    n_samples: int,
) -> None:
    shm = shared_memory.SharedMemory(name=shm_name)
    try:
        out = np.ndarray((n_samples,), dtype=np.float64, buffer=shm.buf)
        for index in range(worker_index, len(bounds), n_workers):
            start, stop = bounds[index]
            try:
                _evaluate_into(evaluate_range, out, start, stop)
            except BaseException as exc:  # noqa: BLE001 - forwarded
                error_queue.put((index, _dumps_exception(exc)))
                return
    finally:
        shm.close()


def map_chunked(
    evaluate_range: RangeEvaluator,
    n_samples: int,
    n_jobs: Optional[int] = 1,
    chunk_size: int = DEFAULT_CHUNK,
) -> np.ndarray:
    """Evaluate ``evaluate_range`` over ``range(n_samples)`` in chunks.

    Args:
        evaluate_range: ``(start, stop) -> (stop - start,)`` floats.
            Must be per-sample independent: the value at ``i`` may not
            depend on which chunk contains ``i``.
        n_samples: Total number of samples.
        n_jobs: Worker processes (``None`` = all CPUs).  Does not
            affect results, only wall-clock.
        chunk_size: Samples per scheduling unit.  Affects neither
            results (given per-sample independence) nor correctness —
            only load balance.

    Returns:
        ``(n_samples,)`` float64 array.

    Raises:
        ParallelError: bad arguments, a worker died, or
            ``evaluate_range`` returned the wrong shape.  Exceptions
            raised *by* ``evaluate_range`` inside a worker re-raise
            as themselves in the parent.
    """
    jobs = resolve_jobs(n_jobs)
    bounds = chunk_bounds(n_samples, chunk_size)
    if n_samples == 0:
        return np.empty(0, dtype=np.float64)
    context = _fork_context()
    n_workers = min(jobs, len(bounds))
    if n_workers <= 1 or context is None:
        out = np.empty(n_samples, dtype=np.float64)
        for start, stop in bounds:
            _evaluate_into(evaluate_range, out, start, stop)
        return out

    with obs.span(
        "parallel.map_chunked",
        n_samples=n_samples,
        n_jobs=n_workers,
        n_chunks=len(bounds),
        chunk_size=chunk_size,
    ):
        obs.counter("parallel_chunks_total").inc(len(bounds))
        shm = shared_memory.SharedMemory(create=True, size=8 * n_samples)
        processes: List[Any] = []
        try:
            error_queue = context.SimpleQueue()
            processes = [
                context.Process(
                    target=_chunk_worker,
                    args=(
                        evaluate_range,
                        bounds,
                        worker_index,
                        n_workers,
                        error_queue,
                        shm.name,
                        n_samples,
                    ),
                    daemon=True,
                )
                for worker_index in range(n_workers)
            ]
            for process in processes:
                process.start()
            for process in processes:
                process.join(_JOIN_TIMEOUT)
            if not error_queue.empty():
                _index, payload = error_queue.get()
                raise pickle.loads(payload)
            for process in processes:
                if process.is_alive() or process.exitcode != 0:
                    obs.counter("parallel_worker_deaths_total").inc()
                    raise ParallelError(
                        "a map_chunked worker died without reporting an "
                        f"error (exitcode={process.exitcode})"
                    )
            view = np.ndarray(
                (n_samples,), dtype=np.float64, buffer=shm.buf
            )
            return np.array(view)  # copy out before unlink
        finally:
            for process in processes:
                if process.is_alive():
                    process.terminate()
                    process.join(5.0)
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - unlink race
                pass


# Ordered item map ---------------------------------------------------------


def _item_worker(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    task_queue: Any,
    result_queue: Any,
) -> None:
    while True:
        index = task_queue.get()
        if index is None:
            return
        try:
            payload = pickle.dumps((index, True, fn(items[index])))
        except BaseException as exc:  # noqa: BLE001 - forwarded
            result_queue.put(pickle.dumps((index, False, exc)))
            return
        result_queue.put(payload)


def parallel_map(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    n_jobs: Optional[int] = 1,
) -> List[Any]:
    """``[fn(item) for item in items]`` across forked workers, in order.

    ``fn`` and the items need not be picklable (fork inheritance); the
    *results* must be.  Worker exceptions re-raise in the parent; a
    worker that dies without reporting raises :class:`ParallelError`.
    """
    items = list(items)
    jobs = resolve_jobs(n_jobs)
    context = _fork_context()
    n_workers = min(jobs, len(items))
    if n_workers <= 1 or context is None:
        return [fn(item) for item in items]

    with obs.span("parallel.map", n_items=len(items), n_jobs=n_workers):
        # Queue (not SimpleQueue) for tasks: its feeder thread gives an
        # unbounded buffer, so preloading every index never blocks on
        # pipe capacity.
        task_queue = context.Queue()
        result_queue = context.Queue()
        for index in range(len(items)):
            task_queue.put(index)
        for _ in range(n_workers):
            task_queue.put(None)
        processes = [
            context.Process(
                target=_item_worker,
                args=(fn, items, task_queue, result_queue),
                daemon=True,
            )
            for _ in range(n_workers)
        ]
        for process in processes:
            process.start()
        results: List[Any] = [None] * len(items)
        received = 0
        failure: Optional[BaseException] = None
        try:
            while received < len(items) and failure is None:
                try:
                    payload = result_queue.get(timeout=0.5)
                except queue_module.Empty:
                    if all(not p.is_alive() for p in processes):
                        try:
                            payload = result_queue.get_nowait()
                        except queue_module.Empty:
                            obs.counter(
                                "parallel_worker_deaths_total"
                            ).inc()
                            failure = ParallelError(
                                "a parallel_map worker died without "
                                "reporting a result"
                            )
                            break
                    else:
                        continue
                index, ok, value = pickle.loads(payload)
                if not ok:
                    failure = value
                    break
                results[index] = value
                received += 1
        finally:
            for process in processes:
                if process.is_alive():
                    process.terminate()
            for process in processes:
                process.join(5.0)
            task_queue.cancel_join_thread()
            result_queue.cancel_join_thread()
        if failure is not None:
            raise failure
        return results
