"""Trace and metrics sinks: JSONL event logs and Prometheus exposition.

Three output shapes cover the usual consumers:

* :class:`JsonlSink` — one JSON object per line, the machine-readable
  trace (``repro-avail --trace run.jsonl ...`` and the ``obs report``
  subcommand both speak it);
* :func:`render_prometheus` — Prometheus text exposition format for the
  metrics registry, scrapable or diffable;
* the human-readable span-tree report lives in :mod:`repro.obs.report`.
"""

from __future__ import annotations

import io
import json
import math
import pathlib
from typing import Any, Dict, List, Optional, Union

from repro.obs.metrics import MetricsRegistry

#: Format version stamped on every JSONL trace line's first record.
#: v2 added cross-process trace-context fields (``trace_id`` /
#: ``span_ref`` / ``parent_ref`` / ``process`` on span and event
#: records, plus optional process metadata on the header).
TRACE_SCHEMA_VERSION = 2


def _json_default(value: Any) -> Any:
    """Coerce numpy scalars and other stragglers to plain JSON types."""
    for attribute in ("item",):  # numpy scalar protocol
        item = getattr(value, attribute, None)
        if callable(item):
            return item()
    return str(value)


class JsonlSink:
    """Writes each record as one JSON line to a file or stream.

    The first line is a ``trace_header`` record carrying the schema
    version, so readers can detect format drift.  ``header_fields``
    (e.g. ``{"process": "shard-0", "pid": 1234}``) are merged into the
    header so a cluster's per-process files stay attributable.

    File targets are opened **line-buffered**: each record reaches the
    OS as soon as it is written, so a process killed without warning
    (the failover drill SIGKILLs shards) loses at most the record being
    formatted, never its whole buffered tail.
    """

    def __init__(
        self,
        target: Union[str, pathlib.Path, io.TextIOBase],
        header_fields: Optional[Dict[str, Any]] = None,
    ) -> None:
        if isinstance(target, (str, pathlib.Path)):
            self._stream: Any = open(
                target, "w", encoding="utf-8", buffering=1
            )
            self._owns_stream = True
        else:
            self._stream = target
            self._owns_stream = False
        fields: Dict[str, Any] = {"schema_version": TRACE_SCHEMA_VERSION}
        if header_fields:
            fields.update(header_fields)
        self.write(
            {
                "kind": "trace_header",
                "name": "trace_header",
                "fields": fields,
            }
        )

    def write(self, record: Dict[str, Any]) -> None:
        self._stream.write(
            json.dumps(record, default=_json_default, sort_keys=True) + "\n"
        )

    def flush(self) -> None:
        self._stream.flush()

    def close(self) -> None:
        if self._owns_stream:
            self._stream.close()


class InMemorySink:
    """Collects records in a list (handy for tests and composition)."""

    def __init__(self) -> None:
        self.records: List[Dict[str, Any]] = []

    def write(self, record: Dict[str, Any]) -> None:
        self.records.append(record)


def _prom_labels(labels) -> str:
    if not labels:
        return ""
    rendered = ",".join(
        f'{key}="{_prom_escape(value)}"' for key, value in labels
    )
    return "{" + rendered + "}"


def _prom_escape(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _prom_number(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    return repr(float(value))


def render_prometheus(registry: MetricsRegistry) -> str:
    """Render a metrics registry in Prometheus text exposition format."""
    lines: List[str] = []
    by_name: Dict[str, List] = {}
    for counter in registry.counters:
        by_name.setdefault(counter.name, []).append(("counter", counter))
    for gauge in registry.gauges:
        by_name.setdefault(gauge.name, []).append(("gauge", gauge))
    for histogram in registry.histograms:
        by_name.setdefault(histogram.name, []).append(("histogram", histogram))
    for name in sorted(by_name):
        family = by_name[name]
        kind = family[0][0]
        lines.append(f"# TYPE {name} {kind}")
        for _, instrument in family:
            if kind == "histogram":
                for bound, cumulative in instrument.cumulative_counts():
                    bucket_labels = tuple(instrument.labels) + (
                        ("le", _prom_number(bound)),
                    )
                    lines.append(
                        f"{name}_bucket{_prom_labels(bucket_labels)} "
                        f"{cumulative}"
                    )
                lines.append(
                    f"{name}_sum{_prom_labels(instrument.labels)} "
                    f"{_prom_number(instrument.sum)}"
                )
                lines.append(
                    f"{name}_count{_prom_labels(instrument.labels)} "
                    f"{instrument.count}"
                )
                if instrument.count:
                    for pname, value in instrument.quantiles().items():
                        lines.append(
                            f"{name}_{pname}"
                            f"{_prom_labels(instrument.labels)} "
                            f"{_prom_number(value)}"
                        )
            else:
                lines.append(
                    f"{name}{_prom_labels(instrument.labels)} "
                    f"{_prom_number(instrument.value)}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


def relabel_prometheus(text: str, **labels: str) -> str:
    """Inject extra labels into every sample of a Prometheus exposition.

    The cluster router aggregates its shards' ``/metrics`` scrapes into
    one exposition; each shard's samples get a ``shard="shard-N"``
    label here so per-shard counters stay distinguishable after
    aggregation.  Comment lines (``# TYPE`` ...) pass through untouched;
    sample lines ``name{a="b"} value`` and ``name value`` gain the
    given labels (existing labels keep precedence on key collision).
    """
    if not labels:
        return text
    rendered = ",".join(
        f'{key}="{_prom_escape(value)}"' for key, value in labels.items()
    )
    out: List[str] = []
    for line in text.splitlines():
        if not line or line.startswith("#"):
            out.append(line)
            continue
        name_part, _, value_part = line.rpartition(" ")
        if not name_part:
            out.append(line)
            continue
        if name_part.endswith("}"):
            brace = name_part.index("{")
            existing = name_part[brace + 1:-1]
            keys = {
                pair.split("=", 1)[0]
                for pair in existing.split(",") if "=" in pair
            }
            extra = ",".join(
                f'{key}="{_prom_escape(value)}"'
                for key, value in labels.items()
                if key not in keys
            )
            merged = existing + ("," + extra if extra else "")
            out.append(f"{name_part[:brace]}{{{merged}}} {value_part}")
        else:
            out.append(f"{name_part}{{{rendered}}} {value_part}")
    return "\n".join(out) + ("\n" if text.endswith("\n") else "")


def write_metrics(
    registry: MetricsRegistry, path: Union[str, pathlib.Path]
) -> pathlib.Path:
    """Write the registry's Prometheus exposition to ``path``."""
    target = pathlib.Path(path)
    target.write_text(render_prometheus(registry), encoding="utf-8")
    return target


def load_trace(
    source: Union[str, pathlib.Path, io.TextIOBase],
) -> List[Dict[str, Any]]:
    """Read a JSONL trace back into a list of record dicts.

    Raises:
        ValueError: On lines that are not valid JSON objects.
    """
    if isinstance(source, (str, pathlib.Path)):
        text = pathlib.Path(source).read_text(encoding="utf-8")
    else:
        text = source.read()
    records: List[Dict[str, Any]] = []
    for line_number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"trace line {line_number} is not valid JSON: {exc}"
            ) from exc
        if not isinstance(record, dict):
            raise ValueError(
                f"trace line {line_number} is not a JSON object"
            )
        records.append(record)
    return records


def trace_schema_version(records: List[Dict[str, Any]]) -> Optional[int]:
    """The schema version from a trace's header record, if present."""
    for record in records:
        if record.get("kind") == "trace_header":
            version = record.get("fields", {}).get("schema_version")
            return int(version) if version is not None else None
    return None
