"""repro.obs — unified tracing, metrics, and solver diagnostics.

The paper's method is measurement all the way down (instrumented
longevity runs, >3,000 recorded fault injections), and this subsystem
gives the *reproduction pipeline itself* the same treatment: structured
events, nested tracing spans with wall/CPU timing, and a metrics
registry (counters, gauges, histograms), threaded through the solver,
simulation and testbed layers.

Usage — the module-level API dispatches to a process-global recorder,
which defaults to a shared no-op (:data:`~repro.obs.recorder.NULL_RECORDER`)
so instrumented code is effectively free until someone turns tracing on::

    from repro import obs
    from repro.obs import Recorder, JsonlSink

    with obs.observe(Recorder(sinks=(JsonlSink("run.jsonl"),))) as rec:
        run_uncertainty(CONFIG_1, n_samples=1000, seed=7)
    print(obs.render_span_tree(rec.records))

Instrumented code uses the same three verbs everywhere::

    with obs.span("ctmc.batch_solve", model=name, n_samples=k) as sp:
        ...
        sp.set(engine=engine)
    obs.event("ctmc.gth_fallback", n_samples=int(bad.size))
    obs.counter("ctmc_solves_total", method=method).inc()

See ``docs/observability_guide.md`` for the span/metric inventory and
measured overhead, and ``repro-avail --trace/--metrics`` plus
``repro-avail obs report`` for the CLI integration.
"""

from __future__ import annotations

import contextlib
from typing import Any, Iterator, Union

from repro.obs.collect import (
    build_cluster_trace,
    load_trace_dir,
    merge_cluster_traces,
    render_cluster_report,
    render_cluster_trace,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.recorder import (
    NULL_RECORDER,
    NullRecorder,
    Recorder,
    Span,
    process_label,
    set_process_label,
)
from repro.obs.report import (
    build_span_tree,
    render_span_tree,
    render_trace_report,
    summarize_events,
)
from repro.obs.sinks import (
    InMemorySink,
    JsonlSink,
    load_trace,
    relabel_prometheus,
    render_prometheus,
    write_metrics,
)
from repro.obs.tracecontext import (
    TRACEPARENT_HEADER,
    TraceContext,
    deterministic_trace_id,
    format_traceparent,
    new_trace_id,
    parse_traceparent,
    trace_scope,
)
from repro.obs.tracecontext import current as current_trace_context

# NOTE: repro.obs.monitor is intentionally NOT imported here — it
# depends on repro.service.client, which imports this package; import
# it directly (``from repro.obs import monitor``) at call sites.

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "InMemorySink",
    "JsonlSink",
    "MetricsRegistry",
    "NullRecorder",
    "Recorder",
    "Span",
    "TRACEPARENT_HEADER",
    "TraceContext",
    "build_cluster_trace",
    "build_span_tree",
    "counter",
    "current_trace_context",
    "deterministic_trace_id",
    "enabled",
    "event",
    "format_traceparent",
    "gauge",
    "get_recorder",
    "histogram",
    "load_trace",
    "load_trace_dir",
    "merge_cluster_traces",
    "new_trace_id",
    "observe",
    "parse_traceparent",
    "process_label",
    "relabel_prometheus",
    "render_cluster_report",
    "render_cluster_trace",
    "render_prometheus",
    "render_span_tree",
    "render_trace_report",
    "set_process_label",
    "set_recorder",
    "span",
    "summarize_events",
    "trace_scope",
    "write_metrics",
]

RecorderLike = Union[Recorder, NullRecorder]

_current: RecorderLike = NULL_RECORDER


def get_recorder() -> RecorderLike:
    """The recorder instrumentation currently dispatches to."""
    return _current


def set_recorder(recorder: RecorderLike) -> RecorderLike:
    """Install a recorder globally; returns the previous one."""
    global _current
    previous = _current
    _current = recorder
    return previous


def enabled() -> bool:
    """True when a live recorder is installed (guard for hot loops)."""
    return _current.enabled


def span(name: str, **fields: Any):
    """Open a span on the current recorder (no-op context when disabled)."""
    return _current.span(name, **fields)


def event(name: str, **fields: Any) -> None:
    """Emit a structured event on the current recorder."""
    _current.event(name, **fields)


def counter(name: str, **labels: object):
    """The named counter (a no-op instrument when disabled)."""
    return _current.counter(name, **labels)


def gauge(name: str, **labels: object):
    """The named gauge (a no-op instrument when disabled)."""
    return _current.gauge(name, **labels)


def histogram(name: str, **labels: object):
    """The named histogram (a no-op instrument when disabled)."""
    return _current.histogram(name, **labels)


@contextlib.contextmanager
def observe(recorder: Union[Recorder, None] = None) -> Iterator[Recorder]:
    """Install a recorder for the duration of a ``with`` block.

    Creates a fresh in-memory :class:`Recorder` when none is given.
    Restores the previous recorder (and flushes this one) on exit.
    """
    active = recorder if recorder is not None else Recorder()
    previous = set_recorder(active)
    try:
        yield active
    finally:
        set_recorder(previous)
        active.flush()
