"""The structured-event bus and tracing-span recorder.

One :class:`Recorder` instance owns everything a run observes: a stream
of structured events, a stack of nested spans (context managers that
measure wall *and* CPU time), and a :class:`~repro.obs.metrics.MetricsRegistry`.
Sinks subscribe to the event stream; the JSONL sink in
:mod:`repro.obs.sinks` writes each record as one line.

Observability is **off by default**.  The module-level API in
:mod:`repro.obs` dispatches to a process-global recorder which starts as
the :data:`NULL_RECORDER` — a shared no-op object whose ``span()``
returns a reusable null context manager and whose metric lookups return
no-op instruments.  Instrumented code therefore costs a dict-free
attribute call per site when disabled, and the hot per-sample loops
additionally guard with ``obs.enabled()`` and aggregate counts locally.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Tuple

from repro.obs import tracecontext
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry

#: Record kinds emitted on the event bus.
KIND_EVENT = "event"
KIND_SPAN = "span"

#: Label stamped on trace-context-annotated records so the cluster
#: collector can say which process a span ran in ("router", "shard-0",
#: "shard-0.worker1", ...).  Module-global: one process, one label.
_process_label = "main"


def set_process_label(label: str) -> str:
    """Name this process in cross-process traces; returns the old label."""
    global _process_label
    previous = _process_label
    _process_label = str(label)
    return previous


def process_label() -> str:
    """The label cross-process trace records carry for this process."""
    return _process_label


class Span:
    """One live tracing span; used as a context manager.

    Measures wall time (``time.perf_counter``) and process CPU time
    (``time.process_time``); on exit it emits a single ``"span"`` record
    carrying the start timestamp, duration, CPU time, nesting links and
    any fields attached at creation or later via :meth:`set`.
    """

    __slots__ = (
        "recorder", "name", "fields", "span_id", "parent_id",
        "started_at", "_perf0", "_cpu0", "status",
        "trace_id", "span_ref", "parent_ref",
    )

    def __init__(
        self,
        recorder: "Recorder",
        name: str,
        span_id: int,
        parent_id: Optional[int],
        fields: Dict[str, Any],
    ) -> None:
        self.recorder = recorder
        self.name = name
        self.fields = fields
        self.span_id = span_id
        self.parent_id = parent_id
        self.started_at = 0.0
        self._perf0 = 0.0
        self._cpu0 = 0.0
        self.status = "ok"
        self.trace_id: Optional[str] = None
        self.span_ref: Optional[str] = None
        self.parent_ref: Optional[str] = None

    def set(self, **fields: Any) -> "Span":
        """Attach fields discovered mid-span (e.g. result sizes)."""
        self.fields.update(fields)
        return self

    def __enter__(self) -> "Span":
        self.recorder._stack.append(self.span_id)
        # Under an active trace scope (thread-local), claim a globally
        # unique ref so this span stays linkable across process
        # boundaries; single-process traces skip this entirely.
        link = tracecontext.begin_span()
        if link is not None:
            self.trace_id, self.span_ref, self.parent_ref = link
        self.started_at = time.time()
        self._cpu0 = time.process_time()
        self._perf0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        wall = time.perf_counter() - self._perf0
        cpu = time.process_time() - self._cpu0
        stack = self.recorder._stack
        if stack and stack[-1] == self.span_id:
            stack.pop()
        if self.span_ref is not None:
            tracecontext.end_span(self.span_ref)
        if exc_type is not None:
            self.status = "error"
            self.fields.setdefault("error", exc_type.__name__)
        record = {
            "kind": KIND_SPAN,
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "t": self.started_at,
            "duration_s": wall,
            "cpu_s": cpu,
            "status": self.status,
            "fields": self.fields,
        }
        if self.trace_id is not None:
            record["trace_id"] = self.trace_id
            record["span_ref"] = self.span_ref
            record["parent_ref"] = self.parent_ref
            record["process"] = _process_label
        self.recorder._emit(record)


class _NullSpan:
    """Reusable no-op span for the disabled path."""

    __slots__ = ()

    def set(self, **fields: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


class _NullInstrument:
    """No-op stand-in for Counter/Gauge/Histogram when disabled."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        return None

    def dec(self, amount: float = 1.0) -> None:
        return None

    def set(self, value: float) -> None:
        return None

    def observe(self, value: float) -> None:
        return None


_NULL_SPAN = _NullSpan()
_NULL_INSTRUMENT = _NullInstrument()


class NullRecorder:
    """The default, disabled recorder: every operation is a no-op."""

    enabled = False

    def span(self, name: str, **fields: Any) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, **fields: Any) -> None:
        return None

    def counter(self, name: str, **labels: object) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, **labels: object) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, **labels: object) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def flush(self) -> None:
        return None

    def close(self) -> None:
        return None


NULL_RECORDER = NullRecorder()


class Recorder:
    """A live recorder: events, nested spans, and a metrics registry.

    Args:
        sinks: Objects with a ``write(record: dict)`` method (and
            optionally ``flush()``/``close()``); each emitted record is
            fanned out to every sink.
        keep_records: Also buffer records in memory (``records``
            attribute) so tests and in-process reporting can read the
            trace without a file round-trip.  On by default; disable for
            very long runs writing to a file sink.
    """

    enabled = True

    def __init__(self, sinks: Tuple = (), keep_records: bool = True) -> None:
        self.metrics = MetricsRegistry()
        self.records: List[Dict[str, Any]] = []
        self._sinks = list(sinks)
        self._keep = keep_records
        self._stack: List[int] = []
        self._next_id = 1

    # Event bus -----------------------------------------------------------

    def add_sink(self, sink) -> None:
        self._sinks.append(sink)

    def remove_sink(self, sink) -> None:
        """Detach a sink added with :meth:`add_sink` (no-op if absent)."""
        try:
            self._sinks.remove(sink)
        except ValueError:
            pass

    def _emit(self, record: Dict[str, Any]) -> None:
        if self._keep:
            self.records.append(record)
        for sink in self._sinks:
            sink.write(record)

    def event(self, name: str, **fields: Any) -> None:
        """Emit one structured event, linked to the enclosing span."""
        record = {
            "kind": KIND_EVENT,
            "name": name,
            "span_id": None,
            "parent_id": self._stack[-1] if self._stack else None,
            "t": time.time(),
            "fields": fields,
        }
        context = tracecontext.current()
        if context is not None:
            record["trace_id"] = context.trace_id
            record["parent_ref"] = context.span_ref
            record["process"] = _process_label
        self._emit(record)

    def span(self, name: str, **fields: Any) -> Span:
        """Open a nested span; use as ``with recorder.span("stage"): ...``."""
        span_id = self._next_id
        self._next_id += 1
        parent = self._stack[-1] if self._stack else None
        return Span(self, name, span_id, parent, fields)

    # Metrics -------------------------------------------------------------

    def counter(self, name: str, **labels: object) -> Counter:
        return self.metrics.counter(name, **labels)

    def gauge(self, name: str, **labels: object) -> Gauge:
        return self.metrics.gauge(name, **labels)

    def histogram(self, name: str, **labels: object) -> Histogram:
        return self.metrics.histogram(name, **labels)

    # Lifecycle -----------------------------------------------------------

    def flush(self) -> None:
        for sink in self._sinks:
            flush = getattr(sink, "flush", None)
            if flush is not None:
                flush()

    def close(self) -> None:
        for sink in self._sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                close()
