"""Human-readable reporting over a recorded trace.

Reconstructs the span tree from ``"span"`` records (children link to
parents by id; a span record is emitted when the span *closes*, so the
file order is children-before-parents and the tree is rebuilt from the
links, not the line order) and renders a timing report:

.. code-block:: text

    uncertainty.run                         812.4 ms  (cpu 805.1 ms)
      uncertainty.sample                      1.2 ms
      uncertainty.solve                     790.7 ms  path=batch
        hierarchy.solve_batch               789.9 ms
          core.compile                        3.1 ms  model=jsas_2as_2pairs
          ...

Events are summarized per enclosing span (count by name) to keep the
report readable even for traces with thousands of fine-grained events.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

#: Span fields that are shown inline in the tree (all others summarized).
_HIDDEN_FIELDS = ("error",)


def _format_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.1f} ms"
    return f"{seconds * 1e6:.0f} us"


def _format_fields(fields: Dict[str, Any], limit: int = 4) -> str:
    shown = [
        f"{key}={value}"
        for key, value in fields.items()
        if key not in _HIDDEN_FIELDS
    ][:limit]
    return "  ".join(shown)


class SpanNode:
    """One reconstructed span plus its children and attached events."""

    def __init__(self, record: Dict[str, Any]) -> None:
        self.record = record
        self.children: List["SpanNode"] = []
        self.event_counts: Dict[str, int] = {}

    @property
    def name(self) -> str:
        return self.record.get("name", "?")

    @property
    def started_at(self) -> float:
        return float(self.record.get("t", 0.0))

    @property
    def duration_s(self) -> float:
        return float(self.record.get("duration_s", 0.0))

    @property
    def cpu_s(self) -> float:
        return float(self.record.get("cpu_s", 0.0))


def build_span_tree(records: Sequence[Dict[str, Any]]) -> List[SpanNode]:
    """Root span nodes (started-at order), with events attached."""
    nodes: Dict[int, SpanNode] = {}
    for record in records:
        if record.get("kind") == "span" and record.get("span_id") is not None:
            nodes[int(record["span_id"])] = SpanNode(record)
    roots: List[SpanNode] = []
    for node in nodes.values():
        parent_id = node.record.get("parent_id")
        parent = nodes.get(int(parent_id)) if parent_id is not None else None
        if parent is not None:
            parent.children.append(node)
        else:
            roots.append(node)
    orphan_events: Dict[str, int] = {}
    for record in records:
        if record.get("kind") != "event":
            continue
        parent_id = record.get("parent_id")
        parent = nodes.get(int(parent_id)) if parent_id is not None else None
        name = record.get("name", "?")
        if parent is not None:
            parent.event_counts[name] = parent.event_counts.get(name, 0) + 1
        else:
            orphan_events[name] = orphan_events.get(name, 0) + 1
    for node in nodes.values():
        node.children.sort(key=lambda child: child.started_at)
    roots.sort(key=lambda node: node.started_at)
    if orphan_events:
        # Surface top-level events as a synthetic root so nothing is lost.
        synthetic = SpanNode({"name": "(top-level events)", "t": -1.0,
                              "duration_s": 0.0, "cpu_s": 0.0})
        synthetic.event_counts = orphan_events
        roots.insert(0, synthetic)
    return roots


def render_span_tree(records: Sequence[Dict[str, Any]]) -> str:
    """The indented span-tree timing report for one trace."""
    roots = build_span_tree(records)
    if not roots:
        return "(trace contains no spans)"
    lines: List[str] = []

    def walk(node: SpanNode, depth: int) -> None:
        indent = "  " * depth
        label = f"{indent}{node.name}"
        timing = ""
        if node.duration_s or node.cpu_s:
            timing = (
                f"{_format_seconds(node.duration_s):>10}  "
                f"(cpu {_format_seconds(node.cpu_s)})"
            )
        status = node.record.get("status", "ok")
        suffix = "" if status == "ok" else f"  [{status}]"
        fields = _format_fields(node.record.get("fields", {}))
        parts = [f"{label:<44}{timing}{suffix}"]
        if fields:
            parts.append(f"{indent}    {fields}")
        for name in sorted(node.event_counts):
            parts.append(
                f"{indent}    * {name} x{node.event_counts[name]}"
            )
        lines.extend(parts)
        for child in node.children:
            walk(child, depth + 1)

    for root in roots:
        walk(root, 0)
    return "\n".join(lines)


def summarize_events(records: Sequence[Dict[str, Any]]) -> Dict[str, int]:
    """Event counts by name over the whole trace."""
    counts: Dict[str, int] = {}
    for record in records:
        if record.get("kind") == "event":
            name = record.get("name", "?")
            counts[name] = counts.get(name, 0) + 1
    return counts


def render_trace_report(
    records: Sequence[Dict[str, Any]],
    title: Optional[str] = None,
) -> str:
    """Full report: span tree plus whole-trace event summary."""
    n_spans = sum(1 for r in records if r.get("kind") == "span")
    n_events = sum(1 for r in records if r.get("kind") == "event")
    lines: List[str] = []
    if title:
        lines += [title, "=" * len(title), ""]
    lines.append(
        f"{len(records)} records: {n_spans} spans, {n_events} events"
    )
    lines += ["", "span tree (wall time, CPU time):", ""]
    lines.append(render_span_tree(records))
    counts = summarize_events(records)
    if counts:
        lines += ["", "events by name:"]
        for name in sorted(counts):
            lines.append(f"  {name:<40} {counts[name]}")
    return "\n".join(lines)
