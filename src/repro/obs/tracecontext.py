"""W3C-style trace context: ids, the ``Traceparent`` header, scopes.

One request that crosses the cluster touches at least three processes —
the client (often the router's own process), the owning shard, and a
pre-forked solver worker inside that shard.  Each process records spans
into its *own* JSONL sink, so the only thing that can stitch them back
into one tree is an identity that travels with the request:

* a **trace id** (32 hex chars) naming the whole request, and
* a **span ref** (16 hex chars) naming the sender's current span, which
  becomes the receiver's parent.

Both ride in a ``Traceparent`` header shaped like the W3C Trace Context
``traceparent`` field (``00-{trace_id}-{span_ref}-01``), and over the
prefork pipe as a plain ``(trace_id, span_ref)`` tuple.

Scopes are **thread-local**: an HTTP handler thread parses the incoming
header and opens a :func:`trace_scope`; every span the recorder opens
on that thread while the scope is active is stamped with the trace id,
a fresh globally-unique span ref, and the enclosing span's ref (or the
remote parent's, for the first span).  The recorder's own integer span
ids keep working for single-process traces — the refs exist purely so
parent links survive the process boundary, where per-process counters
would collide.

Span refs are drawn from ``os.urandom`` (uniqueness across processes
matters; determinism does not — seeded pipelines get determinism from
the *trace id* via :func:`deterministic_trace_id`, e.g. the probe loop
derives ``sha256("probe:{seed}:{index}")`` so the same seed names the
same traces in every run).
"""

from __future__ import annotations

import contextlib
import hashlib
import os
import threading
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

#: HTTP header carrying the context (W3C spells it ``traceparent``;
#: header names are case-insensitive on the wire).
TRACEPARENT_HEADER = "Traceparent"

_VERSION = "00"
_FLAGS = "01"
_TRACE_ID_CHARS = 32
_SPAN_REF_CHARS = 16
_HEX = set("0123456789abcdef")


@dataclass(frozen=True)
class TraceContext:
    """One point in a distributed trace: the trace plus a parent span.

    ``span_ref`` is ``None`` for a freshly minted root context that has
    not opened its first span yet; such a context cannot be serialized
    to a header (there is no parent to name) but can seed a scope.
    """

    trace_id: str
    span_ref: Optional[str] = None

    def __post_init__(self) -> None:
        if (
            len(self.trace_id) != _TRACE_ID_CHARS
            or not set(self.trace_id) <= _HEX
        ):
            raise ValueError(
                f"trace_id must be {_TRACE_ID_CHARS} lowercase hex chars, "
                f"got {self.trace_id!r}"
            )
        if self.span_ref is not None and (
            len(self.span_ref) != _SPAN_REF_CHARS
            or not set(self.span_ref) <= _HEX
        ):
            raise ValueError(
                f"span_ref must be {_SPAN_REF_CHARS} lowercase hex chars, "
                f"got {self.span_ref!r}"
            )


def new_trace_id() -> str:
    """A random trace id (32 hex chars)."""
    return os.urandom(_TRACE_ID_CHARS // 2).hex()


def deterministic_trace_id(material: str) -> str:
    """A trace id derived from ``material`` — same input, same id.

    Seeded pipelines (the probe loop, drills) use this so the trace
    files of two same-seed runs name identical traces, which is what
    lets CI diff "one merged tree per probe" deterministically.
    """
    return hashlib.sha256(material.encode("utf-8")).hexdigest()[
        :_TRACE_ID_CHARS
    ]


def new_span_ref() -> str:
    """A globally unique span ref (16 hex chars, ``os.urandom``)."""
    return os.urandom(_SPAN_REF_CHARS // 2).hex()


def format_traceparent(context: TraceContext) -> str:
    """Serialize a context to the ``Traceparent`` header value.

    Raises:
        ValueError: If the context has no ``span_ref`` — a header names
            the sender's current span; a span-less root has nothing to
            put there.
    """
    if context.span_ref is None:
        raise ValueError("cannot format a trace context without a span_ref")
    return f"{_VERSION}-{context.trace_id}-{context.span_ref}-{_FLAGS}"


def parse_traceparent(value: Optional[str]) -> Optional[TraceContext]:
    """Parse a ``Traceparent`` header; ``None`` on anything malformed.

    A bad header must never fail the request it rode in on — the
    request simply proceeds untraced.
    """
    if not value or not isinstance(value, str):
        return None
    parts = value.strip().lower().split("-")
    if len(parts) != 4:
        return None
    version, trace_id, span_ref, _flags = parts
    if version != _VERSION:
        return None
    if len(trace_id) != _TRACE_ID_CHARS or not set(trace_id) <= _HEX:
        return None
    if len(span_ref) != _SPAN_REF_CHARS or not set(span_ref) <= _HEX:
        return None
    if set(trace_id) == {"0"} or set(span_ref) == {"0"}:
        return None
    return TraceContext(trace_id, span_ref)


class _Scope:
    """One active trace on one thread: the id plus the open-span stack."""

    __slots__ = ("trace_id", "stack")

    def __init__(self, trace_id: str, parent_ref: Optional[str]) -> None:
        self.trace_id = trace_id
        self.stack: List[str] = [parent_ref] if parent_ref else []


_local = threading.local()


def _scopes() -> List[_Scope]:
    scopes = getattr(_local, "scopes", None)
    if scopes is None:
        scopes = _local.scopes = []
    return scopes


def active() -> Optional[_Scope]:
    """The innermost trace scope on this thread, if any."""
    scopes = _scopes()
    return scopes[-1] if scopes else None


def current() -> Optional[TraceContext]:
    """The context to propagate from here: trace id + innermost span.

    ``None`` when no scope is active on this thread.  With a scope but
    no span opened yet, the remote parent ref (or ``None``) is carried
    through, so header injection can simply check ``span_ref``.
    """
    scope = active()
    if scope is None:
        return None
    return TraceContext(
        scope.trace_id, scope.stack[-1] if scope.stack else None
    )


@contextlib.contextmanager
def trace_scope(context: Optional[TraceContext]) -> Iterator[Optional[_Scope]]:
    """Activate ``context`` on this thread for the ``with`` block.

    ``None`` is accepted and does nothing, so call sites can write
    ``with trace_scope(parse_traceparent(header)):`` without branching.
    """
    if context is None:
        yield None
        return
    scope = _Scope(context.trace_id, context.span_ref)
    scopes = _scopes()
    scopes.append(scope)
    try:
        yield scope
    finally:
        scopes.pop()


def begin_span() -> Optional[Tuple[str, str, Optional[str]]]:
    """Claim a span ref under the active scope (recorder internals).

    Returns ``(trace_id, span_ref, parent_ref)`` and pushes the new ref
    onto the scope's stack, or ``None`` when no scope is active.
    """
    scope = active()
    if scope is None:
        return None
    parent = scope.stack[-1] if scope.stack else None
    ref = new_span_ref()
    scope.stack.append(ref)
    return scope.trace_id, ref, parent


def end_span(span_ref: str) -> None:
    """Pop a ref claimed by :func:`begin_span` (recorder internals)."""
    scope = active()
    if scope is not None and scope.stack and scope.stack[-1] == span_ref:
        scope.stack.pop()
