"""Metric instruments: counters, gauges, and histograms.

The registry follows the Prometheus data model closely enough that
:func:`repro.obs.sinks.render_prometheus` can expose it as standard text
exposition format, while staying dependency-free and cheap: instruments
are plain Python objects keyed by ``(name, sorted labels)`` and updates
are a float add or compare.

Conventions:

* counter names end in ``_total`` (enforced softly — the renderer does
  not care, but the instrumented code sticks to it);
* durations are recorded in the library's native unit, **hours** for
  simulated time and **seconds** for wall/CPU time, with the unit spelled
  out in the metric name (``..._hours``, ``..._seconds``).
"""

from __future__ import annotations

import bisect
import math
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

#: Default histogram buckets: log-spaced from microseconds to hours so
#: one bucket family covers both fast solver stages and long recoveries.
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(
    10.0 ** e for e in range(-6, 5)
)

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Mapping[str, object]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0.0:
            raise ValueError(
                f"counter {self.name!r} cannot decrease (inc by {amount})"
            )
        self.value += amount


class Gauge:
    """A value that can go up and down (last write wins)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Cumulative-bucket histogram with sum/count/min/max tracking."""

    __slots__ = ("name", "labels", "buckets", "counts", "sum", "count",
                 "min", "max")

    def __init__(
        self,
        name: str,
        labels: LabelKey = (),
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> None:
        self.name = name
        self.labels = labels
        self.buckets: Tuple[float, ...] = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError(f"histogram {name!r} needs at least one bucket")
        # counts[i] observations <= buckets[i]; one extra slot for +Inf.
        self.counts: List[int] = [0] * (len(self.buckets) + 1)
        self.sum = 0.0
        self.count = 0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def cumulative_counts(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, +Inf last."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, n in zip(self.buckets, self.counts):
            running += n
            out.append((bound, running))
        out.append((math.inf, running + self.counts[-1]))
        return out

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile from the cumulative buckets.

        Standard Prometheus-style estimation: find the bucket the target
        rank falls in and interpolate linearly inside it.  The estimate
        is clamped to the observed ``[min, max]`` so log-spaced buckets
        cannot report a p99 beyond the largest observation (the usual
        histogram-quantile artifact).

        Raises:
            ValueError: If ``q`` is outside ``[0, 1]`` or the histogram
                is empty.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            raise ValueError(
                f"histogram {self.name!r} is empty; no quantiles"
            )
        rank = q * self.count
        running = 0
        lower = 0.0 if self.buckets[0] > 0.0 else self.min
        for bound, n in zip(self.buckets, self.counts):
            if running + n >= rank and n > 0:
                fraction = (rank - running) / n
                estimate = lower + fraction * (bound - lower)
                return min(max(estimate, self.min), self.max)
            running += n
            lower = bound
        # Target rank lives in the +Inf overflow bucket.
        return self.max

    def quantiles(
        self, qs: Iterable[float] = (0.5, 0.95, 0.99)
    ) -> Dict[str, float]:
        """``{"p50": ..., "p95": ..., ...}`` for the given quantiles."""
        return {f"p{round(q * 100):d}": self.quantile(q) for q in qs}


class MetricsRegistry:
    """Owns every instrument created during one observed run.

    Instruments are created on first use and shared afterwards; the same
    ``(name, labels)`` pair always returns the same object, so hot code
    can cache the instrument or re-look it up, whichever reads better.
    """

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, LabelKey], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelKey], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelKey], Histogram] = {}

    def counter(self, name: str, **labels: object) -> Counter:
        key = (name, _label_key(labels))
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter(name, key[1])
        return instrument

    def gauge(self, name: str, **labels: object) -> Gauge:
        key = (name, _label_key(labels))
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge(name, key[1])
        return instrument

    def histogram(
        self,
        name: str,
        buckets: Optional[Iterable[float]] = None,
        **labels: object,
    ) -> Histogram:
        key = (name, _label_key(labels))
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram(
                name, key[1], buckets=buckets or DEFAULT_BUCKETS
            )
        return instrument

    @property
    def counters(self) -> Tuple[Counter, ...]:
        return tuple(self._counters.values())

    @property
    def gauges(self) -> Tuple[Gauge, ...]:
        return tuple(self._gauges.values())

    @property
    def histograms(self) -> Tuple[Histogram, ...]:
        return tuple(self._histograms.values())

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Plain-dict view of every instrument (for JSON/testing)."""
        out: Dict[str, Dict[str, object]] = {}
        for counter in self._counters.values():
            out[_series_name(counter)] = {
                "type": "counter", "value": counter.value
            }
        for gauge in self._gauges.values():
            out[_series_name(gauge)] = {"type": "gauge", "value": gauge.value}
        for histogram in self._histograms.values():
            entry: Dict[str, object] = {
                "type": "histogram",
                "count": histogram.count,
                "sum": histogram.sum,
                "mean": histogram.mean,
                "min": histogram.min if histogram.count else None,
                "max": histogram.max if histogram.count else None,
            }
            if histogram.count:
                entry.update(histogram.quantiles())
            out[_series_name(histogram)] = entry
        return out


def _series_name(instrument) -> str:
    if not instrument.labels:
        return instrument.name
    rendered = ",".join(f"{k}={v}" for k, v in instrument.labels)
    return f"{instrument.name}{{{rendered}}}"
