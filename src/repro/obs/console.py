"""Console reporting helper for the CLI.

Every subcommand routes its human-readable output through a
:class:`Reporter` instead of bare ``print()`` (a tier-1 lint guard,
``tests/test_no_bare_print.py``, enforces this for the whole library).
The reporter has two modes:

* **text** (default) — ``line()`` writes to stdout exactly like the old
  ``print`` calls, ``record()`` is a no-op for display but still
  accumulates the structured payload;
* **json** (``--json``) — ``line()`` is suppressed and ``finish()``
  dumps the accumulated payload as one JSON document, so ``solve``,
  ``sweep`` and ``uncertainty`` runs can feed dashboards and scripts
  without scraping tables.
"""

from __future__ import annotations

import json
import sys
from typing import Any, Dict, Optional, TextIO


class Reporter:
    """Dual text/JSON command output.

    Example::

        reporter = Reporter(json_mode=args.json)
        reporter.record(availability=result.availability)
        reporter.line(result.summary())
        reporter.finish(command="solve")
    """

    def __init__(
        self, json_mode: bool = False, stream: Optional[TextIO] = None
    ) -> None:
        self.json_mode = json_mode
        self.stream = stream if stream is not None else sys.stdout
        self.payload: Dict[str, Any] = {}
        self._finished = False

    def line(self, text: str = "") -> None:
        """Write one human-readable line (suppressed under ``--json``)."""
        if not self.json_mode:
            self.stream.write(f"{text}\n")

    def record(self, **fields: Any) -> None:
        """Merge fields into the machine-readable payload."""
        self.payload.update(fields)

    def finish(self, **fields: Any) -> None:
        """Flush the JSON payload (once); a no-op in text mode."""
        if self._finished:
            return
        self._finished = True
        self.payload.update(fields)
        if self.json_mode:
            self.stream.write(
                json.dumps(self.payload, indent=2, sort_keys=True,
                           default=_jsonable)
                + "\n"
            )


def _jsonable(value: Any) -> Any:
    # tolist() before item(): arrays have both, and item() raises on
    # anything with more than one element.
    tolist = getattr(value, "tolist", None)
    if callable(tolist):
        return tolist()
    item = getattr(value, "item", None)  # numpy scalars
    if callable(item):
        return item()
    return str(value)
