"""Availability measurement: probe loop, episode detection, reports.

This module plays the paper's *measurement client* against a live
cluster (PAPER.md §3: instrument the server, log outage episodes, fit
models from observed timings).  Three layers:

* **Probes** — periodic synthetic solves with a hard deadline
  (:class:`ProbeRunner` / :func:`run_probe_campaign`).  Each probe is a
  single attempt (``RetryPolicy(max_attempts=1)`` — a probe measures
  the service, it does not mask it), carries a *deterministic* trace id
  (``sha256("probe:{seed}:{index}")``) so two same-seed campaigns name
  identical traces, and uses a parameter value outside any drill
  workload's range so every probe is a genuine solve, not a cache hit.
* **Episode detection** — :func:`detect_service_episodes` turns runs of
  ``min_failures``-or-more consecutive probe failures into timestamped
  outage episodes (down-at, detected-at, restored-at), and
  :func:`join_shard_episodes` replays the cluster's shard lifecycle
  event log (``cluster.shard.killed`` → ``.dead`` → ``.ready``) into
  per-kill recovery episodes with the paper's three phases: *detect*
  (killed→dead), *respawn* (dead→ready) and *restore* (killed→ready).
* **The measurement report** — :func:`build_measurement_report` emits a
  schema-versioned JSON document: empirical availability, MTTR/MTBF,
  and per-phase recovery-timing samples as plain float lists, i.e.
  exactly the shape
  :func:`repro.estimation.recovery_time.summarize_recovery_times` and
  :func:`~repro.estimation.recovery_time.exponential_rate_mle` consume.

The two episode kinds are deliberately separate, mirroring the paper's
component-vs-service outage distinction: every kill produces a **shard
episode** (the component went down and recovered), while a **service
episode** requires probes to actually fail — a healthy cluster masks
shard deaths behind failover, so a drill's shard-episode count equals
its kill count while its service-episode count is usually zero.
"""

from __future__ import annotations

import json
import pathlib
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro import obs
from repro.obs.tracecontext import (
    TraceContext,
    deterministic_trace_id,
    trace_scope,
)

#: Version of the measurement-report JSON layout.  v2 added the
#: ``"exposure"`` block (total shard exposure + kill count, the inputs
#: of :func:`repro.estimation.estimate_failure_rate`) and put
#: ``kill_count`` in the deterministic block; v1 artifacts load through
#: :func:`load_measurement_report`.
MEASUREMENT_SCHEMA = 2

#: Parameter the synthetic probes vary.  Same knob the drills sweep,
#: but probed at values far outside the drill workload's range
#: (``0.5 + 0.05 i``), so probes never collide with workload cache
#: entries and always exercise the full solve path.
PROBE_PARAMETER = "Tstart_long_as"
# Drill values are 0.5 + 0.05 i — always a multiple of 0.005 with a
# zero third decimal; the 0.003 offset makes collision impossible by
# construction, for any drill length.
PROBE_BASE_VALUE = 5.003
PROBE_VALUE_STEP = 0.01

#: Clamp applied to recovery-phase samples: the estimation layer
#: rejects non-positive durations, and two timestamps taken on either
#: side of a fast transition can coincide at clock resolution.
_MIN_PHASE_SECONDS = 1e-9


def probe_trace_id(seed: int, index: int) -> str:
    """The deterministic trace id of probe ``index`` in a campaign."""
    return deterministic_trace_id(f"probe:{seed}:{index}")


def probe_value(index: int) -> float:
    """The probe's swept parameter value (distinct per index)."""
    return round(PROBE_BASE_VALUE + PROBE_VALUE_STEP * index, 12)


class ProbeRunner:
    """Sends deadline-bounded synthetic solves to one cluster URL.

    Args:
        url: Router (or single-server) base URL.
        deadline_seconds: Probe deadline — the socket timeout; a probe
            that has not answered by then counts as failed.
        seed: Names the campaign's deterministic trace ids.

    Each :meth:`probe` opens a ``probe.request`` span under the probe's
    trace scope, so the span tree merged by :mod:`repro.obs.collect`
    has one root per probe with the full router→shard→worker chain
    beneath it.
    """

    def __init__(
        self, url: str, deadline_seconds: float = 5.0, seed: int = 2004
    ) -> None:
        from repro.service.client import RetryPolicy, ServiceClient

        self.seed = seed
        self.deadline_seconds = float(deadline_seconds)
        self._client = ServiceClient(
            url,
            timeout=self.deadline_seconds,
            retry=RetryPolicy(max_attempts=1),
        )

    def probe(self, index: int) -> Dict[str, Any]:
        """Send probe ``index``; never raises — failure is data."""
        trace_id = probe_trace_id(self.seed, index)
        value = probe_value(index)
        started = time.time()
        t0 = time.perf_counter()
        ok = False
        error: Optional[str] = None
        try:
            with trace_scope(TraceContext(trace_id)):
                with obs.span("probe.request", index=index):
                    response = self._client.solve(
                        parameters={PROBE_PARAMETER: value}
                    )
            ok = isinstance(response.get("availability"), float)
            if not ok:
                error = "malformed payload"
        except Exception as exc:  # noqa: BLE001 - probes record, not raise
            error = f"{type(exc).__name__}: {exc}"
        duration = time.perf_counter() - t0
        record = {
            "index": index,
            "trace_id": trace_id,
            "t": started,
            "duration_s": duration,
            "ok": ok,
            "error": error,
            "value": value,
        }
        obs.event(
            "monitor.probe", index=index, ok=ok, duration_s=duration
        )
        return record

    def close(self) -> None:
        self._client.close()

    def __enter__(self) -> "ProbeRunner":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def run_probe_campaign(
    url: str,
    count: int = 8,
    interval_seconds: float = 0.1,
    deadline_seconds: float = 5.0,
    seed: int = 2004,
) -> List[Dict[str, Any]]:
    """A fixed-count probe campaign against a live service.

    Fixed *count*, not fixed duration: the number of probes (and every
    probe's trace id and parameter value) is a pure function of the
    arguments, which is what lets CI diff two same-seed campaigns.
    """
    if count < 1:
        raise ValueError(f"need at least one probe, got {count}")
    if interval_seconds < 0:
        raise ValueError(f"negative interval {interval_seconds}")
    probes: List[Dict[str, Any]] = []
    with ProbeRunner(url, deadline_seconds, seed) as runner:
        for index in range(count):
            if index and interval_seconds:
                time.sleep(interval_seconds)
            probes.append(runner.probe(index))
    return probes


# Episode detection --------------------------------------------------------


def detect_service_episodes(
    probes: Sequence[Mapping[str, Any]], min_failures: int = 2
) -> List[Dict[str, Any]]:
    """Consecutive probe failures → service-level outage episodes.

    A run of ``min_failures`` or more failed probes becomes one episode:
    ``down_at`` is the first failed probe's start, ``detected_at`` is
    when the ``min_failures``-th failure *completed* (the moment a
    monitor applying this rule would have alarmed), ``restored_at`` is
    the next successful probe's start — ``None`` when the campaign
    ended mid-outage (the episode is reported with
    ``"complete": False`` and excluded from downtime sums).
    """
    if min_failures < 1:
        raise ValueError(f"min_failures must be >= 1, got {min_failures}")
    ordered = sorted(probes, key=lambda p: p["index"])
    episodes: List[Dict[str, Any]] = []
    run: List[Mapping[str, Any]] = []

    def flush(restored_at: Optional[float]) -> None:
        if len(run) >= min_failures:
            trigger = run[min_failures - 1]
            episodes.append(
                {
                    "kind": "service",
                    "down_at": run[0]["t"],
                    "detected_at": trigger["t"] + trigger["duration_s"],
                    "restored_at": restored_at,
                    "complete": restored_at is not None,
                    "n_failed_probes": len(run),
                    "probe_indices": [p["index"] for p in run],
                }
            )
        run.clear()

    for probe in ordered:
        if probe["ok"]:
            flush(restored_at=probe["t"])
        else:
            run.append(probe)
    flush(restored_at=None)
    return episodes


_KILLED = "cluster.shard.killed"
_DEAD = "cluster.shard.dead"
_READY = "cluster.shard.ready"


def join_shard_episodes(
    records: Sequence[Mapping[str, Any]],
) -> Tuple[List[Dict[str, Any]], List[Dict[str, Any]]]:
    """Join the shard lifecycle event log into per-kill episodes.

    Consumes trace records (only ``kind == "event"`` entries matter)
    and matches, per shard, each ``cluster.shard.killed`` with the
    following ``cluster.shard.dead`` (the monitor/forward path noticed)
    and ``cluster.shard.ready`` (the replacement was re-admitted).
    Boot-time ``ready`` events that answer no kill are ignored.

    Returns ``(complete, incomplete)`` episode lists; incomplete means
    the observation window closed before the shard came back.
    """
    events = sorted(
        (
            record
            for record in records
            if record.get("kind") == "event"
            and record.get("name") in (_KILLED, _DEAD, _READY)
        ),
        key=lambda record: record.get("t", 0.0),
    )
    pending: Dict[str, List[Dict[str, Any]]] = {}
    complete: List[Dict[str, Any]] = []
    for event in events:
        fields = event.get("fields", {})
        shard = fields.get("shard")
        when = float(event.get("t", 0.0))
        if event["name"] == _KILLED:
            pending.setdefault(shard, []).append(
                {
                    "kind": "shard",
                    "shard": shard,
                    "pid": fields.get("pid"),
                    "killed_at": when,
                    "dead_at": None,
                    "ready_at": None,
                }
            )
        elif event["name"] == _DEAD:
            for episode in pending.get(shard, []):
                if episode["dead_at"] is None:
                    episode["dead_at"] = when
                    break
        elif event["name"] == _READY:
            queue = pending.get(shard, [])
            for position, episode in enumerate(queue):
                if episode["ready_at"] is None:
                    episode["ready_at"] = when
                    episode["generation"] = fields.get("generation")
                    complete.append(queue.pop(position))
                    break
    incomplete = [
        episode for queue in pending.values() for episode in queue
    ]
    complete.sort(key=lambda episode: episode["killed_at"])
    incomplete.sort(key=lambda episode: episode["killed_at"])
    return complete, incomplete


def recovery_phase_samples(
    episodes: Sequence[Mapping[str, Any]],
) -> Dict[str, List[float]]:
    """Per-phase duration samples from shard episodes.

    Plain float-list samples, directly consumable by
    :func:`repro.estimation.recovery_time.summarize_recovery_times`.
    Phases whose boundary event was never observed are skipped rather
    than fabricated.
    """
    phases: Dict[str, List[float]] = {
        "detect": [], "respawn": [], "restore": [],
    }
    for episode in episodes:
        killed = episode.get("killed_at")
        dead = episode.get("dead_at")
        ready = episode.get("ready_at")
        if killed is None:
            continue
        if dead is not None:
            phases["detect"].append(max(dead - killed, _MIN_PHASE_SECONDS))
            if ready is not None:
                phases["respawn"].append(
                    max(ready - dead, _MIN_PHASE_SECONDS)
                )
        if ready is not None:
            phases["restore"].append(max(ready - killed, _MIN_PHASE_SECONDS))
    return phases


# The report ---------------------------------------------------------------


def build_measurement_report(
    probes: Sequence[Mapping[str, Any]],
    records: Sequence[Mapping[str, Any]] = (),
    seed: int = 2004,
    n_shards: int = 0,
    min_failures: int = 2,
) -> Dict[str, Any]:
    """Assemble the schema-versioned availability measurement report.

    Args:
        probes: Probe records from :class:`ProbeRunner`.
        records: Trace records holding the cluster's shard lifecycle
            events (e.g. an :class:`~repro.obs.sinks.InMemorySink`'s
            ``records``); empty for probe-only campaigns.
        seed: Campaign seed (stamped into the deterministic block).
        n_shards: Cluster size, for the deterministic block.
        min_failures: Consecutive-failure threshold of the service
            episode detector.

    The ``"deterministic"`` sub-document contains only seed-pure fields
    (no timestamps, no durations, nothing probe-outcome-dependent), so
    two same-seed runs produce bit-identical bytes for it — that block
    is what CI diffs.  The kill count is seed-pure (a drill's schedule
    is a function of its seed) and lives there; exposure is wall-clock
    and lives in the top-level ``"exposure"`` block instead.
    """
    probes = sorted(probes, key=lambda p: p["index"])
    service_episodes = detect_service_episodes(probes, min_failures)
    shard_episodes, incomplete = join_shard_episodes(records)
    kill_count = sum(
        1
        for record in records
        if record.get("kind") == "event" and record.get("name") == _KILLED
    )
    phases = recovery_phase_samples(shard_episodes + incomplete)
    n_probes = len(probes)
    failures = sum(1 for probe in probes if not probe["ok"])
    probe_availability = (
        (n_probes - failures) / n_probes if n_probes else None
    )
    if probes:
        campaign_start = probes[0]["t"]
        campaign_end = max(p["t"] + p["duration_s"] for p in probes)
        campaign_seconds = max(campaign_end - campaign_start, 0.0)
    else:
        campaign_start = campaign_end = None
        campaign_seconds = 0.0
    downtime = sum(
        episode["restored_at"] - episode["down_at"]
        for episode in service_episodes
        if episode["complete"]
    )
    empirical_availability = (
        1.0 - downtime / campaign_seconds if campaign_seconds > 0 else None
    )
    restore_samples = phases["restore"]
    mttr = (
        sum(restore_samples) / len(restore_samples)
        if restore_samples
        else None
    )
    total_episodes = len(shard_episodes) + len(incomplete)
    mtbf = (
        campaign_seconds / total_episodes
        if total_episodes and campaign_seconds > 0
        else None
    )
    return {
        "schema": MEASUREMENT_SCHEMA,
        "kind": "measurement",
        "deterministic": {
            "schema": MEASUREMENT_SCHEMA,
            "kind": "measurement",
            "seed": seed,
            "n_shards": n_shards,
            "n_probes": n_probes,
            "probe_parameter": PROBE_PARAMETER,
            "probe_trace_ids": [probe["trace_id"] for probe in probes],
            "min_failures": min_failures,
            "kill_count": kill_count,
            "shard_episode_count": total_episodes,
            "shard_episode_victims": sorted(
                episode["shard"]
                for episode in shard_episodes + incomplete
            ),
        },
        "seed": seed,
        "n_shards": n_shards,
        "n_probes": n_probes,
        "exposure": {
            # Life-test inputs for repro.estimation.estimate_failure_rate
            # (paper Eq. 2): total unit-time under observation and the
            # failures (kills) seen during it.  shard_seconds sums the
            # campaign window over every shard under observation.
            "campaign_seconds": campaign_seconds,
            "shard_seconds": campaign_seconds * max(n_shards, 1),
            "kill_count": kill_count,
        },
        "probe_failures": failures,
        "probe_availability": probe_availability,
        "empirical_availability": empirical_availability,
        "mttr_seconds": mttr,
        "mtbf_seconds": mtbf,
        "campaign": {
            "started_at": campaign_start,
            "finished_at": campaign_end,
            "duration_s": campaign_seconds,
            "downtime_s": downtime,
        },
        "probes": list(probes),
        "service_episodes": service_episodes,
        "shard_episodes": shard_episodes,
        "incomplete_shard_episodes": incomplete,
        "recovery_phases": phases,
    }


def write_measurement_report(
    report: Mapping[str, Any], path: Union[str, pathlib.Path]
) -> pathlib.Path:
    """Write the report as sorted-keys JSON; returns the path."""
    target = pathlib.Path(path)
    target.write_text(
        json.dumps(dict(report), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return target


def load_measurement_report(
    source: Union[str, pathlib.Path, Mapping[str, Any]],
) -> Dict[str, Any]:
    """Load a measurement report, upgrading v1 artifacts to v2 shape.

    Accepts a path to a JSON artifact or an already-parsed mapping
    (e.g. the ``measurement`` block embedded in a drill report).  v1
    reports predate the ``"exposure"`` block: the shim derives it from
    the campaign duration and the shard-episode count, so consumers
    (:mod:`repro.selfmodel` above all) can rely on one shape.

    Raises:
        ValueError: If the document is not a measurement report or its
            schema is newer than this library understands.
    """
    if isinstance(source, Mapping):
        report: Dict[str, Any] = dict(source)
    else:
        report = json.loads(
            pathlib.Path(source).read_text(encoding="utf-8")
        )
    if report.get("kind") != "measurement":
        raise ValueError(
            f"not a measurement report: kind={report.get('kind')!r}"
        )
    schema = report.get("schema")
    if schema == MEASUREMENT_SCHEMA:
        return report
    if schema == 1:
        campaign = report.get("campaign", {})
        campaign_seconds = float(campaign.get("duration_s") or 0.0)
        n_shards = int(report.get("n_shards") or 0)
        # v1 had no explicit kill counter; every kill opened a shard
        # episode, so the episode count is the faithful reconstruction.
        kill_count = len(report.get("shard_episodes", ())) + len(
            report.get("incomplete_shard_episodes", ())
        )
        report = dict(report)
        report["schema"] = MEASUREMENT_SCHEMA
        report["exposure"] = {
            "campaign_seconds": campaign_seconds,
            "shard_seconds": campaign_seconds * max(n_shards, 1),
            "kill_count": kill_count,
        }
        deterministic = dict(report.get("deterministic", {}))
        deterministic.setdefault("kill_count", kill_count)
        deterministic["schema"] = MEASUREMENT_SCHEMA
        report["deterministic"] = deterministic
        return report
    raise ValueError(
        f"unsupported measurement report schema {schema!r} "
        f"(this library reads up to {MEASUREMENT_SCHEMA})"
    )


def render_measurement_report(report: Mapping[str, Any]) -> str:
    """Human-readable summary of one measurement report."""

    def fmt(value: Optional[float], pattern: str = "{:.6f}") -> str:
        return pattern.format(value) if value is not None else "n/a"

    lines = [
        f"availability measurement (schema {report['schema']}, "
        f"seed {report['seed']})",
        f"probes: {report['n_probes']} "
        f"({report['probe_failures']} failed), "
        f"probe availability {fmt(report['probe_availability'])}",
        f"empirical availability: {fmt(report['empirical_availability'])}",
        f"MTTR: {fmt(report['mttr_seconds'], '{:.4f}')} s, "
        f"MTBF: {fmt(report['mtbf_seconds'], '{:.4f}')} s",
        f"shard episodes: {len(report['shard_episodes'])} complete, "
        f"{len(report['incomplete_shard_episodes'])} incomplete; "
        f"service episodes: {len(report['service_episodes'])}",
    ]
    phases = report.get("recovery_phases", {})
    for phase in ("detect", "respawn", "restore"):
        samples = phases.get(phase, [])
        if samples:
            mean = sum(samples) / len(samples)
            lines.append(
                f"  {phase}: n={len(samples)} mean={mean * 1000.0:.1f} ms "
                f"max={max(samples) * 1000.0:.1f} ms"
            )
        else:
            lines.append(f"  {phase}: no samples")
    return "\n".join(lines)


@dataclass(frozen=True)
class EstimationInputs:
    """The measurement report's bridge into :mod:`repro.estimation`.

    Carries the per-phase recovery duration samples (seconds) plus the
    life-test exposure (total shard-seconds under observation and the
    kill count), i.e. every number :mod:`repro.selfmodel` needs to fit
    the cluster model's rates — one object, no report re-parsing.
    """

    detect: Tuple[float, ...]
    respawn: Tuple[float, ...]
    restore: Tuple[float, ...]
    shard_exposure_seconds: float = 0.0
    kill_count: int = 0

    @classmethod
    def from_report(
        cls, report: Mapping[str, Any]
    ) -> "EstimationInputs":
        phases = report.get("recovery_phases", {})
        exposure = report.get("exposure", {})
        if not exposure:
            # v1 artifact: same derivation the loader shim applies.
            campaign = report.get("campaign", {})
            seconds = float(campaign.get("duration_s") or 0.0)
            exposure = {
                "shard_seconds": seconds
                * max(int(report.get("n_shards") or 0), 1),
                "kill_count": len(report.get("shard_episodes", ()))
                + len(report.get("incomplete_shard_episodes", ())),
            }
        return cls(
            detect=tuple(phases.get("detect", ())),
            respawn=tuple(phases.get("respawn", ())),
            restore=tuple(phases.get("restore", ())),
            shard_exposure_seconds=float(
                exposure.get("shard_seconds") or 0.0
            ),
            kill_count=int(exposure.get("kill_count") or 0),
        )

    def summaries(self) -> Dict[str, Any]:
        """Per-phase :class:`RecoveryTimeSummary` (phases with samples)."""
        from repro.estimation.recovery_time import summarize_recovery_times

        return {
            phase: summarize_recovery_times(samples)
            for phase, samples in (
                ("detect", self.detect),
                ("respawn", self.respawn),
                ("restore", self.restore),
            )
            if samples
        }

    def rates(self, confidence: float = 0.95) -> Dict[str, Any]:
        """Per-phase fitted exponential rates with exact CIs (per second).

        Returns a dict of phase name to
        :class:`~repro.estimation.recovery_time.ExponentialRateEstimate`
        for every phase with at least one sample (a single sample yields
        a very wide — but exact — chi-squared interval).  Zero-duration
        samples never occur here: the episode join clamps phase
        durations to a positive floor, and the estimator would reject
        them anyway.
        """
        from repro.estimation.recovery_time import exponential_rate_estimate

        return {
            phase: exponential_rate_estimate(samples, confidence)
            for phase, samples in (
                ("detect", self.detect),
                ("respawn", self.respawn),
                ("restore", self.restore),
            )
            if samples
        }

    def failure_rate(self, confidence: float = 0.95) -> Any:
        """Shard failure-rate estimate (per second) from kills + exposure.

        Paper Eq. 2 over the campaign's life test: ``kill_count``
        failures across ``shard_exposure_seconds`` of summed shard
        observation time.

        Raises:
            EstimationError: When the exposure is zero (no campaign
                window to attribute failures to).
        """
        from repro.estimation.failure_rate import estimate_failure_rate

        return estimate_failure_rate(
            self.kill_count, self.shard_exposure_seconds, confidence
        )
