"""Merge per-process JSONL traces into cluster-wide trace trees.

Every process in a traced cluster — router, each shard, each pre-forked
solver worker — writes its spans to its own file under one trace
directory (``router.<pid>.jsonl``, ``shard-0.<pid>.jsonl``,
``shard-0.worker1.<pid>.jsonl``, ...).  This module reads them all
back, groups span records by ``trace_id``, and rebuilds each request's
tree from the cross-process ``span_ref``/``parent_ref`` links (the
in-process integer span ids are meaningless across files — two shards
both emit span id 1).

Tolerance rules, because crashed processes write ragged files:

* a truncated final line (the process died mid-write) is skipped, not
  fatal — :func:`load_trace_dir` counts skipped lines instead;
* a span whose parent was never written (the parent's process was
  SIGKILLed before that span closed) becomes an **orphan**: it is kept
  and rendered under a synthetic marker rather than silently dropped,
  and kept out of the proper roots so "one connected tree per request"
  stays checkable.

``repro-avail obs report --cluster DIR`` renders the result.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

#: File pattern collected from a trace directory.
TRACE_GLOB = "*.jsonl"


def load_trace_dir(
    directory: Union[str, pathlib.Path],
) -> Tuple[List[Dict[str, Any]], int]:
    """Read every per-process trace file under ``directory``.

    Returns ``(records, skipped_lines)``; each record gains a
    ``"source"`` key naming the file it came from.

    Raises:
        ValueError: If the directory holds no ``*.jsonl`` files at all.
    """
    root = pathlib.Path(directory)
    paths = sorted(root.glob(TRACE_GLOB))
    if not paths:
        raise ValueError(f"no {TRACE_GLOB} trace files under {root}")
    records: List[Dict[str, Any]] = []
    skipped = 0
    for path in paths:
        text = path.read_text(encoding="utf-8")
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                skipped += 1
                continue
            if not isinstance(record, dict):
                skipped += 1
                continue
            record["source"] = path.name
            records.append(record)
    return records, skipped


def spans_by_trace(
    records: Sequence[Dict[str, Any]],
) -> Dict[str, List[Dict[str, Any]]]:
    """Span records grouped by trace id (records without one ignored)."""
    traces: Dict[str, List[Dict[str, Any]]] = {}
    for record in records:
        if record.get("kind") != "span":
            continue
        trace_id = record.get("trace_id")
        ref = record.get("span_ref")
        if not trace_id or not ref:
            continue
        traces.setdefault(str(trace_id), []).append(record)
    return traces


class ClusterSpan:
    """One span in a merged cross-process tree."""

    def __init__(self, record: Dict[str, Any]) -> None:
        self.record = record
        self.children: List["ClusterSpan"] = []

    @property
    def name(self) -> str:
        return self.record.get("name", "?")

    @property
    def process(self) -> str:
        return str(self.record.get("process", "?"))

    @property
    def span_ref(self) -> str:
        return str(self.record.get("span_ref"))

    @property
    def parent_ref(self) -> Optional[str]:
        return self.record.get("parent_ref")

    @property
    def started_at(self) -> float:
        return float(self.record.get("t", 0.0))

    @property
    def duration_s(self) -> float:
        return float(self.record.get("duration_s", 0.0))

    @property
    def status(self) -> str:
        return str(self.record.get("status", "ok"))

    def walk(self):
        """This span then every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()


def build_cluster_trace(
    spans: Sequence[Dict[str, Any]],
) -> Tuple[List[ClusterSpan], List[ClusterSpan]]:
    """Rebuild one trace's tree(s) from ``span_ref``/``parent_ref`` links.

    Returns ``(roots, orphans)``: *roots* are spans with no parent ref
    (the request's origin); *orphans* have a parent ref that matches no
    collected span (the parent's record was lost — typically a process
    killed before its span closed).  A fully connected request yields
    exactly one root and no orphans.
    """
    nodes: Dict[str, ClusterSpan] = {}
    for record in spans:
        node = ClusterSpan(record)
        nodes[node.span_ref] = node
    roots: List[ClusterSpan] = []
    orphans: List[ClusterSpan] = []
    for node in nodes.values():
        parent_ref = node.parent_ref
        if parent_ref is None:
            roots.append(node)
            continue
        parent = nodes.get(str(parent_ref))
        if parent is None:
            orphans.append(node)
        else:
            parent.children.append(node)
    for node in nodes.values():
        node.children.sort(key=lambda child: child.started_at)
    roots.sort(key=lambda node: node.started_at)
    orphans.sort(key=lambda node: node.started_at)
    return roots, orphans


def merge_cluster_traces(
    records: Sequence[Dict[str, Any]],
) -> Dict[str, Tuple[List[ClusterSpan], List[ClusterSpan]]]:
    """Every trace id in ``records`` mapped to its ``(roots, orphans)``."""
    return {
        trace_id: build_cluster_trace(spans)
        for trace_id, spans in spans_by_trace(records).items()
    }


def _format_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.1f} ms"
    return f"{seconds * 1e6:.0f} us"


#: Span fields shown inline in the rendered tree.
_SHOWN_FIELDS = ("endpoint", "shard", "attempt", "failover", "batch_size",
                 "index", "error")


def _render_node(node: ClusterSpan, depth: int, lines: List[str]) -> None:
    indent = "  " * depth
    label = f"{indent}{node.name} [{node.process}]"
    timing = _format_seconds(node.duration_s)
    suffix = "" if node.status == "ok" else f"  [{node.status}]"
    fields = node.record.get("fields", {})
    shown = "  ".join(
        f"{key}={fields[key]}" for key in _SHOWN_FIELDS if key in fields
    )
    line = f"{label:<52}{timing:>10}{suffix}"
    if shown:
        line += f"  {shown}"
    lines.append(line)
    for child in node.children:
        _render_node(child, depth + 1, lines)


def render_cluster_trace(
    trace_id: str,
    roots: Sequence[ClusterSpan],
    orphans: Sequence[ClusterSpan] = (),
) -> str:
    """Render one merged trace as an indented cross-process tree."""
    n_spans = sum(1 for root in roots for _ in root.walk()) + sum(
        1 for orphan in orphans for _ in orphan.walk()
    )
    processes = sorted(
        {
            node.process
            for root in list(roots) + list(orphans)
            for node in root.walk()
        }
    )
    lines = [
        f"trace {trace_id}: {n_spans} spans across "
        f"{len(processes)} process(es) ({', '.join(processes)})"
    ]
    for root in roots:
        _render_node(root, 1, lines)
    if orphans:
        lines.append(
            "  (orphaned spans — parent record lost, e.g. killed process)"
        )
        for orphan in orphans:
            _render_node(orphan, 2, lines)
    return "\n".join(lines)


def render_cluster_report(
    directory: Union[str, pathlib.Path],
    trace_id: Optional[str] = None,
) -> str:
    """The full ``obs report --cluster`` text for a trace directory."""
    records, skipped = load_trace_dir(directory)
    merged = merge_cluster_traces(records)
    sources = sorted({record["source"] for record in records})
    lines = [
        f"cluster trace report: {pathlib.Path(directory)}",
        f"{len(sources)} process file(s), {len(merged)} trace(s), "
        f"{skipped} unparseable line(s) skipped",
        "",
    ]
    if trace_id is not None:
        if trace_id not in merged:
            known = ", ".join(sorted(merged)) or "(none)"
            raise ValueError(
                f"trace id {trace_id!r} not found; traces present: {known}"
            )
        roots, orphans = merged[trace_id]
        lines.append(render_cluster_trace(trace_id, roots, orphans))
        return "\n".join(lines)
    # Whole-directory report: traces ordered by their first span start.
    def first_start(item) -> float:
        roots, orphans = item[1]
        nodes = list(roots) + list(orphans)
        return min((n.started_at for n in nodes), default=0.0)

    for tid, (roots, orphans) in sorted(
        merged.items(), key=first_start
    ):
        lines.append(render_cluster_trace(tid, roots, orphans))
        lines.append("")
    if not merged:
        lines.append("(no trace-context spans found)")
    return "\n".join(lines).rstrip() + "\n"
