"""Core model-building blocks: parameters, rate expressions, Markov models.

This package is the equivalent of RAScad's model-specification layer: a
:class:`~repro.core.model.MarkovModel` is a set of named states carrying
reward rates plus transitions whose rates are either numbers or symbolic
expressions over a :class:`~repro.core.parameters.ParameterSet`.
"""

from repro.core.compiled import CompiledModel, compile_model
from repro.core.expressions import Expression, compile_expression
from repro.core.parameters import Parameter, ParameterSet
from repro.core.model import MarkovModel, State, Transition
from repro.core.serialize import (
    model_from_dict,
    model_from_json,
    model_to_dict,
    model_to_dot,
    model_to_json,
)

__all__ = [
    "CompiledModel",
    "compile_model",
    "Expression",
    "compile_expression",
    "Parameter",
    "ParameterSet",
    "MarkovModel",
    "State",
    "Transition",
    "model_from_dict",
    "model_from_json",
    "model_to_dict",
    "model_to_dot",
    "model_to_json",
]
