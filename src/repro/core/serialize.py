"""Model serialization: JSON-friendly dicts and Graphviz DOT export.

Models are data; teams exchange them, version them, and render them as
diagrams (the paper's Figs. 2-4 are exactly such renderings).  This
module provides:

* :func:`model_to_dict` / :func:`model_from_dict` — a lossless,
  JSON-serializable representation of a :class:`MarkovModel` (states,
  rewards, symbolic rates, descriptions);
* :func:`model_to_json` / :func:`model_from_json` — string convenience
  wrappers;
* :func:`model_to_dot` — a Graphviz digraph with down states drawn as
  double circles and arcs labelled by their rate expressions, matching
  the visual conventions of the paper's figures.
* :func:`canonical_json` — a deterministic, byte-stable JSON encoding
  (sorted keys, normalized numbers) used as the basis for
  content-addressed fingerprints in :mod:`repro.service.fingerprint`.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict

from repro.core.model import MarkovModel
from repro.exceptions import ModelError

#: Format version for the serialized representation.
SCHEMA_VERSION = 1


def model_to_dict(model: MarkovModel) -> Dict[str, Any]:
    """Lossless dict representation of a model."""
    return {
        "schema": SCHEMA_VERSION,
        "name": model.name,
        "description": model.description,
        "states": [
            {
                "name": state.name,
                "reward": state.reward,
                "description": state.description,
            }
            for state in model.states
        ],
        "transitions": [
            {
                "source": transition.source,
                "target": transition.target,
                "rate": transition.rate.source,
                "description": transition.description,
            }
            for transition in model.transitions
        ],
    }


def model_from_dict(data: Dict[str, Any]) -> MarkovModel:
    """Rebuild a model from :func:`model_to_dict` output.

    Raises :class:`~repro.exceptions.ModelError` on malformed input —
    the same strict validation as the builder API, so a hand-edited
    model file fails loudly.
    """
    try:
        schema = data["schema"]
        name = data["name"]
        states = data["states"]
        transitions = data["transitions"]
    except (KeyError, TypeError) as exc:
        raise ModelError(f"malformed model document: missing {exc}") from exc
    if schema != SCHEMA_VERSION:
        raise ModelError(
            f"unsupported model schema version {schema!r}; "
            f"this library reads version {SCHEMA_VERSION}"
        )
    model = MarkovModel(name, data.get("description", ""))
    for state in states:
        model.add_state(
            state["name"],
            reward=float(state.get("reward", 1.0)),
            description=state.get("description", ""),
        )
    for transition in transitions:
        model.add_transition(
            transition["source"],
            transition["target"],
            transition["rate"],
            description=transition.get("description", ""),
        )
    return model


def model_to_json(model: MarkovModel, indent: int = 2) -> str:
    """Serialize a model to a JSON string."""
    return json.dumps(model_to_dict(model), indent=indent)


def model_from_json(text: str) -> MarkovModel:
    """Parse a model from a JSON string."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ModelError(f"invalid JSON: {exc}") from exc
    return model_from_dict(data)


def normalize_canonical(value: Any) -> Any:
    """Recursively normalize a JSON-able value for canonical encoding.

    * dict keys are coerced to ``str`` (JSON requires it; doing it here
      makes the coercion explicit and order-independent);
    * floats are normalized: ``-0.0`` becomes ``0.0`` so the two zero
      bit patterns hash identically; non-finite values are rejected
      because their JSON spelling is implementation-defined;
    * bools and ints pass through unchanged (``True`` stays ``true``,
      never ``1.0``);
    * tuples become lists.

    Integral floats deliberately stay floats (``2.0`` encodes as
    ``2.0``, not ``2``): callers that want ``2`` and ``2.0`` to hash the
    same coerce to ``float`` first, the way
    :func:`repro.service.fingerprint.parameter_fingerprint` does.
    """
    if isinstance(value, bool) or value is None or isinstance(value, (int, str)):
        return value
    if isinstance(value, float):
        if not math.isfinite(value):
            raise ModelError(
                f"non-finite value {value!r} has no canonical JSON form"
            )
        return 0.0 if value == 0.0 else value
    if isinstance(value, dict):
        out: Dict[str, Any] = {}
        for key, item in value.items():
            skey = str(key)
            if skey in out:
                raise ModelError(
                    f"duplicate canonical key {skey!r} after str() coercion"
                )
            out[skey] = normalize_canonical(item)
        return out
    if isinstance(value, (list, tuple)):
        return [normalize_canonical(item) for item in value]
    raise ModelError(
        f"value of type {type(value).__name__} is not canonically "
        "JSON-serializable"
    )


def canonical_json(value: Any) -> str:
    """Deterministic JSON encoding: same value, same bytes, any process.

    Keys are sorted, separators are compact, output is pure ASCII, and
    numbers go through :func:`normalize_canonical` (``-0.0`` -> ``0.0``,
    NaN/Inf rejected).  Python's ``repr`` of a float is the shortest
    round-tripping decimal form on every supported platform, so float
    text is stable across processes and machines — this is what makes
    :mod:`repro.service` cache keys content-addressed rather than
    process-local.
    """
    return json.dumps(
        normalize_canonical(value),
        sort_keys=True,
        separators=(",", ":"),
        ensure_ascii=True,
        allow_nan=False,
    )


def _dot_escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def model_to_dot(model: MarkovModel, rankdir: str = "LR") -> str:
    """Render the model as a Graphviz digraph.

    Up states are circles, down states double circles (reward shown in
    the label when fractional); arcs carry their rate expressions.
    Paste the output into ``dot -Tpng`` to regenerate a Fig. 2/3/4-style
    diagram.
    """
    if rankdir not in ("LR", "TB", "RL", "BT"):
        raise ModelError(f"invalid rankdir {rankdir!r}")
    lines = [
        f'digraph "{_dot_escape(model.name)}" {{',
        f"  rankdir={rankdir};",
        '  node [fontname="Helvetica"];',
        '  edge [fontname="Helvetica", fontsize=10];',
    ]
    for state in model.states:
        shape = "circle" if state.is_up else "doublecircle"
        label = state.name
        if 0.0 < state.reward < 1.0:
            label += f"\\nreward={state.reward:g}"
        lines.append(
            f'  "{_dot_escape(state.name)}" '
            f'[shape={shape}, label="{_dot_escape(label)}"];'
        )
    for transition in model.transitions:
        lines.append(
            f'  "{_dot_escape(transition.source)}" -> '
            f'"{_dot_escape(transition.target)}" '
            f'[label="{_dot_escape(transition.rate.source)}"];'
        )
    lines.append("}")
    return "\n".join(lines)
