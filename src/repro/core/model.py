"""Markov reward model builder.

A :class:`MarkovModel` is the in-memory equivalent of a RAScad diagram:

* **states** with a name, a *reward rate* (1 for working states, 0 for
  failure states in pure availability models — but any non-negative float
  is allowed for performability analysis) and an optional description;
* **transitions** labelled with a rate, which may be a number or a
  symbolic expression over model parameters (``"2*La_hadb*(1-FIR)"``).

The builder is deliberately strict: duplicate states, self-loops, unknown
endpoints and (at bind time) non-positive rates are all errors, because in
availability modeling a silently-dropped transition produces results that
look plausible and are wrong.

A model is *bound* against a :class:`~repro.core.parameters.ParameterSet`
to produce concrete numeric rates; the numerical machinery lives in
:mod:`repro.ctmc`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.expressions import Expression, RateLike, compile_expression
from repro.exceptions import ModelError


@dataclass(frozen=True)
class State:
    """A model state.

    Attributes:
        name: Unique state name (e.g. ``"RestartShort"``).
        reward: Reward rate earned per unit time spent in the state.  In
            availability models this is 1.0 for up states and 0.0 for
            down states.
        description: Optional human-readable meaning.
    """

    name: str
    reward: float = 1.0
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ModelError("state name must be non-empty")
        if not math.isfinite(self.reward) or self.reward < 0:
            raise ModelError(
                f"state {self.name!r} has invalid reward {self.reward!r}; "
                "reward rates must be finite and non-negative"
            )

    @property
    def is_up(self) -> bool:
        """True if the state earns a strictly positive reward."""
        return self.reward > 0.0


@dataclass(frozen=True)
class Transition:
    """A directed transition between two states with a symbolic rate."""

    source: str
    target: str
    rate: Expression
    description: str = ""

    def rate_value(self, values: Mapping[str, float]) -> float:
        """Evaluate the transition rate under concrete parameter values."""
        return self.rate(values)


class MarkovModel:
    """A continuous-time Markov reward model under construction.

    Example — a two-state repairable component::

        model = MarkovModel("component")
        model.add_state("Up", reward=1.0)
        model.add_state("Down", reward=0.0)
        model.add_transition("Up", "Down", "La")
        model.add_transition("Down", "Up", "Mu")

    The model can then be bound and solved::

        from repro.ctmc import solve_steady_state
        pi = solve_steady_state(model, {"La": 0.01, "Mu": 1.0})
    """

    def __init__(self, name: str, description: str = "") -> None:
        if not name:
            raise ModelError("model name must be non-empty")
        self.name = name
        self.description = description
        self._states: Dict[str, State] = {}
        self._transitions: List[Transition] = []
        self._transition_keys: Set[Tuple[str, str]] = set()
        # Mutation counter: bumped on every add_state/add_transition so
        # that structural-validation results (and compiled forms, see
        # repro.core.compiled) can be memoized and safely invalidated.
        self._version: int = 0
        self._validated_version: Optional[int] = None

    # Construction -------------------------------------------------------

    def add_state(
        self, name: str, reward: float = 1.0, description: str = ""
    ) -> State:
        """Add a state; returns the created :class:`State`."""
        if name in self._states:
            raise ModelError(f"duplicate state {name!r} in model {self.name!r}")
        state = State(name=name, reward=float(reward), description=description)
        self._states[name] = state
        self._version += 1
        return state

    def add_transition(
        self,
        source: str,
        target: str,
        rate: RateLike,
        description: str = "",
    ) -> Transition:
        """Add a transition; the rate may be numeric or symbolic.

        Parallel transitions between the same pair of states are rejected:
        merge them into a single expression instead, so that every arc in
        the model corresponds to exactly one arc in the published diagram.
        """
        for endpoint in (source, target):
            if endpoint not in self._states:
                raise ModelError(
                    f"transition references unknown state {endpoint!r} "
                    f"in model {self.name!r} (add_state first)"
                )
        if source == target:
            raise ModelError(
                f"self-loop on {source!r} is meaningless in a CTMC "
                f"(model {self.name!r})"
            )
        key = (source, target)
        if key in self._transition_keys:
            raise ModelError(
                f"duplicate transition {source!r} -> {target!r} in model "
                f"{self.name!r}; merge the rates into one expression"
            )
        transition = Transition(
            source=source,
            target=target,
            rate=compile_expression(rate),
            description=description,
        )
        self._transitions.append(transition)
        self._transition_keys.add(key)
        self._version += 1
        return transition

    # Introspection -------------------------------------------------------

    @property
    def state_names(self) -> Tuple[str, ...]:
        """State names in insertion order (this fixes the matrix ordering)."""
        return tuple(self._states)

    @property
    def states(self) -> Tuple[State, ...]:
        return tuple(self._states.values())

    @property
    def transitions(self) -> Tuple[Transition, ...]:
        return tuple(self._transitions)

    def state(self, name: str) -> State:
        try:
            return self._states[name]
        except KeyError:
            raise ModelError(
                f"unknown state {name!r} in model {self.name!r}"
            ) from None

    def state_index(self, name: str) -> int:
        """Position of a state in the canonical ordering."""
        try:
            return self.state_names.index(name)
        except ValueError:
            raise ModelError(
                f"unknown state {name!r} in model {self.name!r}"
            ) from None

    def up_states(self) -> Tuple[str, ...]:
        """Names of states with strictly positive reward."""
        return tuple(s.name for s in self._states.values() if s.is_up)

    def down_states(self) -> Tuple[str, ...]:
        """Names of states with zero reward."""
        return tuple(s.name for s in self._states.values() if not s.is_up)

    def reward_vector(self) -> List[float]:
        """Reward rates in canonical state order."""
        return [s.reward for s in self._states.values()]

    def required_parameters(self) -> Set[str]:
        """All parameter names referenced by any transition rate."""
        names: Set[str] = set()
        for transition in self._transitions:
            names |= set(transition.rate.variables)
        return names

    def outgoing(self, name: str) -> Tuple[Transition, ...]:
        """Transitions leaving a state."""
        self.state(name)
        return tuple(t for t in self._transitions if t.source == name)

    def incoming(self, name: str) -> Tuple[Transition, ...]:
        """Transitions entering a state."""
        self.state(name)
        return tuple(t for t in self._transitions if t.target == name)

    @property
    def version(self) -> int:
        """Monotone mutation counter (bumped by add_state/add_transition).

        Callers that cache derived artifacts (validation verdicts,
        compiled programs) key them on this value.
        """
        return self._version

    def __len__(self) -> int:
        return len(self._states)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MarkovModel({self.name!r}, states={len(self._states)}, "
            f"transitions={len(self._transitions)})"
        )

    # Validation ----------------------------------------------------------

    def validate(self, values: Optional[Mapping[str, float]] = None) -> None:
        """Check structural sanity; with values, also check numeric rates.

        Structural checks: at least one state; at least one up state (an
        availability model with no working state has availability zero by
        construction, which is almost certainly a bug); every state
        reachable in the undirected sense (no forgotten islands).

        With ``values``, every transition rate must evaluate to a finite,
        strictly positive number — a zero rate means the arc should not
        exist for this parameterization, which the caller must decide
        explicitly (see :func:`repro.ctmc.generator.build_generator`'s
        ``drop_zero_rates`` flag).

        The structural checks are memoized: once a given construction
        state of the model has validated cleanly, repeat calls (e.g. from
        :func:`repro.ctmc.generator.build_generator` inside a sweep loop)
        return immediately until the model is mutated again.  The numeric
        checks always run when ``values`` is supplied.
        """
        if self._validated_version != self._version:
            if not self._states:
                raise ModelError(f"model {self.name!r} has no states")
            if not any(s.is_up for s in self._states.values()):
                raise ModelError(
                    f"model {self.name!r} has no up (reward > 0) states"
                )
            self._check_weak_connectivity()
            self._validated_version = self._version
        if values is not None:
            missing = self.required_parameters() - set(values)
            if missing:
                raise ModelError(
                    f"model {self.name!r} is missing parameter(s) "
                    f"{sorted(missing)}"
                )
            for transition in self._transitions:
                rate = transition.rate_value(values)
                if not math.isfinite(rate) or rate < 0.0:
                    raise ModelError(
                        f"transition {transition.source!r} -> "
                        f"{transition.target!r} in model {self.name!r} has "
                        f"invalid rate {rate!r} "
                        f"(expression {transition.rate.source!r})"
                    )

    def _check_weak_connectivity(self) -> None:
        if len(self._states) <= 1:
            return
        adjacency: Dict[str, Set[str]] = {name: set() for name in self._states}
        for t in self._transitions:
            adjacency[t.source].add(t.target)
            adjacency[t.target].add(t.source)
        seen: Set[str] = set()
        stack = [next(iter(self._states))]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(adjacency[node] - seen)
        isolated = set(self._states) - seen
        if isolated:
            raise ModelError(
                f"model {self.name!r} has unreachable island state(s) "
                f"{sorted(isolated)}"
            )

    # Convenience ----------------------------------------------------------

    def copy(self, name: Optional[str] = None) -> "MarkovModel":
        """Deep-enough copy (states and transitions are immutable)."""
        out = MarkovModel(name or self.name, self.description)
        for state in self._states.values():
            out.add_state(state.name, state.reward, state.description)
        for t in self._transitions:
            out.add_transition(t.source, t.target, t.rate, t.description)
        return out

    def describe(self) -> str:
        """Human-readable dump of states and transitions."""
        lines = [f"Markov model {self.name!r}"]
        if self.description:
            lines.append(f"  {self.description}")
        lines.append("  states:")
        for state in self._states.values():
            marker = "up" if state.is_up else "DOWN"
            suffix = f" — {state.description}" if state.description else ""
            lines.append(
                f"    {state.name} (reward={state.reward:g}, {marker}){suffix}"
            )
        lines.append("  transitions:")
        for t in self._transitions:
            lines.append(f"    {t.source} -> {t.target} @ {t.rate.source}")
        return "\n".join(lines)


def birth_death_model(
    name: str,
    levels: int,
    birth_rates: Sequence[RateLike],
    death_rates: Sequence[RateLike],
    rewards: Optional[Sequence[float]] = None,
) -> MarkovModel:
    """Build a birth–death chain with ``levels`` states ``L0 .. L{n-1}``.

    Provided mainly for tests and teaching: birth–death chains have
    closed-form steady-state solutions that we verify the numerical
    solvers against.

    Args:
        name: Model name.
        levels: Number of states (``>= 2``).
        birth_rates: ``levels - 1`` rates for ``Lk -> Lk+1``.
        death_rates: ``levels - 1`` rates for ``Lk+1 -> Lk``.
        rewards: Optional per-level rewards; defaults to all 1.0 except the
            last level, which gets 0.0 (a common availability reading).
    """
    if levels < 2:
        raise ModelError("a birth-death chain needs at least two levels")
    if len(birth_rates) != levels - 1 or len(death_rates) != levels - 1:
        raise ModelError(
            f"need exactly {levels - 1} birth and death rates for "
            f"{levels} levels"
        )
    if rewards is None:
        rewards = [1.0] * (levels - 1) + [0.0]
    if len(rewards) != levels:
        raise ModelError(f"need exactly {levels} rewards")
    model = MarkovModel(name, f"birth-death chain with {levels} levels")
    for k in range(levels):
        model.add_state(f"L{k}", reward=rewards[k])
    for k in range(levels - 1):
        model.add_transition(f"L{k}", f"L{k + 1}", birth_rates[k])
        model.add_transition(f"L{k + 1}", f"L{k}", death_rates[k])
    return model
