"""Safe arithmetic expressions for symbolic transition rates.

RAScad model diagrams label transitions with expressions such as
``2*La_hadb*(1-FIR)`` or ``FSS/Trecovery``.  This module compiles such
strings into callable :class:`Expression` objects using Python's ``ast``
module restricted to a small arithmetic subset — no attribute access, no
subscripts, no calls except a whitelist of math functions.  This keeps
model files declarative and auditable without the dangers of ``eval``.
"""

from __future__ import annotations

import ast
import math
from typing import Callable, Dict, Iterable, Mapping, Set, Union

from repro.exceptions import ExpressionError

#: Exponentiation dispatches to whichever ``pow`` implementation the
#: operand type carries — libm ``pow`` for Python floats, but NumPy's
#: squaring/SIMD fast paths for arrays — and those implementations can
#: disagree by one ulp on the same inputs (e.g. ``x ** 2`` vs
#: ``np.square``).  Every other operator in the allowed subset is a
#: correctly-rounded IEEE-754 primitive and therefore bit-identical
#: across backends.  To keep the scalar and vectorized engines in bit
#: parity, ``a ** b`` (and the whitelisted ``pow``) are rewritten to
#: this shared helper, which fixes one operation sequence for both:
#: binary exponentiation out of correctly-rounded multiplies for
#: integral exponents, elementwise ``math.pow`` otherwise.
_POW_NAME = "__rate_pow__"


def _rate_pow(base, exponent):
    """Backend-independent ``base ** exponent`` (floats or arrays)."""
    if isinstance(exponent, (int, float)):
        as_float = float(exponent)
        if as_float.is_integer() and abs(as_float) <= 2**15:
            n = int(as_float)
            if n == 0:
                # ``x ** 0`` keeps the operand's shape: scalars get 1.0,
                # arrays a ones-array (non-finite bases excepted).
                return base * 0.0 + 1.0
            result = None
            square = base * 1.0
            k = abs(n)
            while k:
                if k & 1:
                    result = square if result is None else result * square
                k >>= 1
                if k:
                    square = square * square
            return 1.0 / result if n < 0 else result
    return _pow_elementwise(base, exponent)


def _pow_elementwise(base, exponent):
    """``math.pow`` applied elementwise — identical rounding either way."""
    import numpy as np

    if isinstance(base, np.ndarray) or isinstance(exponent, np.ndarray):
        bases, exponents = np.broadcast_arrays(
            np.asarray(base, dtype=float), np.asarray(exponent, dtype=float)
        )
        out = np.empty(bases.shape)
        flat = out.ravel()
        for i, (x, y) in enumerate(zip(bases.ravel(), exponents.ravel())):
            flat[i] = math.pow(x, y)
        return out
    return math.pow(float(base), float(exponent))


class _PowRewriter(ast.NodeTransformer):
    """Rewrite ``a ** b`` into ``__rate_pow__(a, b)`` (see above)."""

    def visit_BinOp(self, node: ast.BinOp) -> ast.AST:
        self.generic_visit(node)
        if not isinstance(node.op, ast.Pow):
            return node
        call = ast.Call(
            func=ast.Name(id=_POW_NAME, ctx=ast.Load()),
            args=[node.left, node.right],
            keywords=[],
        )
        return ast.copy_location(call, node)


def rewrite_power_nodes(tree: ast.AST) -> ast.AST:
    """Apply the Pow rewrite to a parsed (already validated) tree."""
    tree = _PowRewriter().visit(tree)
    ast.fix_missing_locations(tree)
    return tree


#: Functions that may be called inside a rate expression.
ALLOWED_FUNCTIONS: Dict[str, Callable[..., float]] = {
    "exp": math.exp,
    "log": math.log,
    "log10": math.log10,
    "sqrt": math.sqrt,
    "min": min,
    "max": max,
    "abs": abs,
    "pow": _rate_pow,
    "floor": math.floor,
    "ceil": math.ceil,
}

#: Named constants available inside expressions.
ALLOWED_CONSTANTS: Dict[str, float] = {
    "pi": math.pi,
    "e": math.e,
    "inf": math.inf,
}

_ALLOWED_BINOPS = (ast.Add, ast.Sub, ast.Mult, ast.Div, ast.Pow, ast.Mod, ast.FloorDiv)
_ALLOWED_UNARYOPS = (ast.UAdd, ast.USub)

#: Shared evaluation globals: constants + whitelisted functions.  Built
#: once at import time so :meth:`Expression.__call__` only has to build
#: the (small) per-call parameter overlay, not the whole namespace.
_BASE_NAMESPACE: Dict[str, object] = {"__builtins__": {}}
_BASE_NAMESPACE.update(ALLOWED_CONSTANTS)
_BASE_NAMESPACE.update(ALLOWED_FUNCTIONS)
_BASE_NAMESPACE[_POW_NAME] = _rate_pow

RateLike = Union[str, float, int, "Expression"]


def _vectorized_min(*args):
    import functools

    import numpy as np

    return functools.reduce(np.minimum, args)


def _vectorized_max(*args):
    import functools

    import numpy as np

    return functools.reduce(np.maximum, args)


def vector_namespace() -> Dict[str, object]:
    """Evaluation namespace mapping the whitelist onto NumPy ufuncs.

    Used by :mod:`repro.core.compiled` to evaluate many parameter samples
    at once: every function accepts arrays (or plain floats) and
    broadcasts.  Arithmetic on plain Python floats is untouched, so
    expressions over non-varied parameters produce bit-identical scalars.
    """
    import numpy as np

    namespace: Dict[str, object] = {"__builtins__": {}}
    namespace.update(ALLOWED_CONSTANTS)
    namespace.update(
        {
            "exp": np.exp,
            "log": np.log,
            "log10": np.log10,
            "sqrt": np.sqrt,
            "min": _vectorized_min,
            "max": _vectorized_max,
            "abs": np.abs,
            "pow": _rate_pow,
            "floor": np.floor,
            "ceil": np.ceil,
        }
    )
    namespace[_POW_NAME] = _rate_pow
    return namespace


class Expression:
    """A compiled arithmetic expression over named parameters.

    Instances are immutable, hashable by their source text, and callable
    with a mapping of parameter values:

    >>> expr = compile_expression("2*La*(1-FIR)")
    >>> expr({"La": 0.5, "FIR": 0.1})
    0.9
    >>> sorted(expr.variables)
    ['FIR', 'La']
    """

    __slots__ = ("source", "variables", "_code")

    def __init__(self, source: str, variables: Set[str], code) -> None:
        self.source = source
        self.variables = frozenset(variables)
        self._code = code

    def __call__(self, values: Mapping[str, float]) -> float:
        missing = [name for name in self.variables if name not in values]
        if missing:
            raise ExpressionError(
                f"expression {self.source!r} needs parameter(s) "
                f"{sorted(missing)} which were not supplied"
            )
        # The constants+functions base lives in the shared (immutable)
        # globals; only the parameter overlay is built per call.  Locals
        # shadow globals during evaluation, preserving the old behavior
        # where parameter values took precedence over constants.
        overlay = {name: float(values[name]) for name in self.variables}
        try:
            result = eval(self._code, _BASE_NAMESPACE, overlay)  # noqa: S307
        except ZeroDivisionError as exc:
            raise ExpressionError(
                f"expression {self.source!r} divided by zero with values "
                f"{ {k: values[k] for k in sorted(self.variables)} }"
            ) from exc
        return float(result)

    def evaluate(self, values: Mapping[str, float]) -> float:
        """Alias for calling the expression, for readability at call sites."""
        return self(values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Expression({self.source!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Expression) and other.source == self.source

    def __hash__(self) -> int:
        return hash(("Expression", self.source))


class _Validator(ast.NodeVisitor):
    """Walk the parsed AST and reject anything outside the safe subset."""

    def __init__(self, source: str) -> None:
        self.source = source
        self.names: Set[str] = set()

    def generic_visit(self, node: ast.AST) -> None:
        raise ExpressionError(
            f"disallowed syntax {type(node).__name__!r} in rate "
            f"expression {self.source!r}"
        )

    def visit_Expression(self, node: ast.Expression) -> None:
        self.visit(node.body)

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if not isinstance(node.op, _ALLOWED_BINOPS):
            raise ExpressionError(
                f"disallowed operator {type(node.op).__name__!r} in "
                f"{self.source!r}"
            )
        self.visit(node.left)
        self.visit(node.right)

    def visit_UnaryOp(self, node: ast.UnaryOp) -> None:
        if not isinstance(node.op, _ALLOWED_UNARYOPS):
            raise ExpressionError(
                f"disallowed unary operator {type(node.op).__name__!r} in "
                f"{self.source!r}"
            )
        self.visit(node.operand)

    def visit_Constant(self, node: ast.Constant) -> None:
        if not isinstance(node.value, (int, float)):
            raise ExpressionError(
                f"only numeric literals are allowed, got {node.value!r} in "
                f"{self.source!r}"
            )

    def visit_Name(self, node: ast.Name) -> None:
        if not isinstance(node.ctx, ast.Load):
            raise ExpressionError(f"assignment is not allowed in {self.source!r}")
        if node.id not in ALLOWED_FUNCTIONS and node.id not in ALLOWED_CONSTANTS:
            self.names.add(node.id)

    def visit_Call(self, node: ast.Call) -> None:
        if not isinstance(node.func, ast.Name) or node.func.id not in ALLOWED_FUNCTIONS:
            raise ExpressionError(
                f"only calls to {sorted(ALLOWED_FUNCTIONS)} are allowed in "
                f"{self.source!r}"
            )
        if node.keywords:
            raise ExpressionError(
                f"keyword arguments are not allowed in {self.source!r}"
            )
        for arg in node.args:
            self.visit(arg)


def compile_expression(source: RateLike) -> Expression:
    """Compile a rate expression into an :class:`Expression`.

    Accepts a string expression, a bare number (wrapped into a constant
    expression), or an already-compiled :class:`Expression` (returned
    unchanged).

    Raises :class:`~repro.exceptions.ExpressionError` for anything outside
    the safe arithmetic subset.
    """
    if isinstance(source, Expression):
        return source
    if isinstance(source, (int, float)):
        text = repr(float(source))
        code = compile(ast.parse(text, mode="eval"), "<rate>", "eval")
        return Expression(text, set(), code)
    if not isinstance(source, str):
        raise ExpressionError(
            f"rate must be a string, number or Expression, got {type(source).__name__}"
        )
    stripped = source.strip()
    if not stripped:
        raise ExpressionError("empty rate expression")
    try:
        tree = ast.parse(stripped, mode="eval")
    except SyntaxError as exc:
        raise ExpressionError(f"cannot parse rate expression {stripped!r}: {exc}") from exc
    validator = _Validator(stripped)
    validator.visit(tree)
    code = compile(rewrite_power_nodes(tree), "<rate>", "eval")
    return Expression(stripped, validator.names, code)


def variables_of(sources: Iterable[RateLike]) -> Set[str]:
    """Union of the parameter names referenced by several rate expressions."""
    names: Set[str] = set()
    for source in sources:
        names |= set(compile_expression(source).variables)
    return names
