"""Named model parameters with units, documentation, and provenance.

A :class:`ParameterSet` plays the role of the parameter box attached to a
RAScad diagram (see the paper's Figs. 3 and 4): every symbol used in a
rate expression must resolve to a value here.  Parameters carry metadata —
a description, a unit label, and a *provenance* tag recording whether the
value was measured in the lab, estimated from field data, or set
conservatively — because the paper's methodology hinges on being able to
audit where every number came from.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, Iterator, Mapping, Optional, Tuple

from repro.exceptions import ParameterError

#: Recognized provenance tags, in the spirit of the paper's Section 5.
PROVENANCE_TAGS = (
    "measured",      # directly measured in the (simulated) lab
    "field",         # estimated from field data
    "conservative",  # deliberately pessimistic engineering choice
    "assumed",       # modeling assumption
    "derived",       # computed from other parameters
)


@dataclass(frozen=True)
class Parameter:
    """A single named model parameter.

    Attributes:
        name: Symbol used in rate expressions (e.g. ``"La_hadb"``).
        value: Numeric value, in the library's canonical units
            (rates per hour, times in hours) unless ``unit`` says otherwise.
        description: Human-readable meaning.
        unit: Unit label, purely documentary (e.g. ``"1/hour"``).
        provenance: One of :data:`PROVENANCE_TAGS`.
        bounds: Optional ``(low, high)`` plausibility range used as the
            default range in uncertainty analysis.
    """

    name: str
    value: float
    description: str = ""
    unit: str = ""
    provenance: str = "assumed"
    bounds: Optional[Tuple[float, float]] = None

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise ParameterError(f"parameter name {self.name!r} is not an identifier")
        if not math.isfinite(self.value):
            raise ParameterError(f"parameter {self.name!r} has non-finite value {self.value}")
        if self.provenance not in PROVENANCE_TAGS:
            raise ParameterError(
                f"parameter {self.name!r} has unknown provenance "
                f"{self.provenance!r}; expected one of {PROVENANCE_TAGS}"
            )
        if self.bounds is not None:
            low, high = self.bounds
            if not (low <= high):
                raise ParameterError(
                    f"parameter {self.name!r} has inverted bounds {self.bounds}"
                )

    def with_value(self, value: float) -> "Parameter":
        """Return a copy of this parameter holding a different value."""
        return replace(self, value=float(value))


class ParameterSet(Mapping[str, float]):
    """An ordered, immutable-by-convention collection of parameters.

    Behaves as a read-only ``Mapping[str, float]`` from names to values, so
    it can be passed directly to :class:`~repro.core.expressions.Expression`
    objects.  Mutation goes through :meth:`updated`, which returns a new
    set — analyses never modify the parameters they were given, which is
    essential for the uncertainty analysis that evaluates the same model
    under a thousand different parameterizations.
    """

    def __init__(self, parameters: Iterable[Parameter] = ()) -> None:
        self._parameters: Dict[str, Parameter] = {}
        for parameter in parameters:
            self._add(parameter)

    def _add(self, parameter: Parameter) -> None:
        if not isinstance(parameter, Parameter):
            raise ParameterError(
                f"expected a Parameter, got {type(parameter).__name__}"
            )
        if parameter.name in self._parameters:
            raise ParameterError(f"duplicate parameter {parameter.name!r}")
        self._parameters[parameter.name] = parameter

    # Mapping interface -------------------------------------------------

    def __getitem__(self, name: str) -> float:
        try:
            return self._parameters[name].value
        except KeyError:
            raise KeyError(name) from None

    def __iter__(self) -> Iterator[str]:
        return iter(self._parameters)

    def __len__(self) -> int:
        return len(self._parameters)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        body = ", ".join(f"{p.name}={p.value:g}" for p in self._parameters.values())
        return f"ParameterSet({body})"

    # Rich access --------------------------------------------------------

    def parameter(self, name: str) -> Parameter:
        """Return the full :class:`Parameter` object (not just the value)."""
        try:
            return self._parameters[name]
        except KeyError:
            raise ParameterError(
                f"unknown parameter {name!r}; known: {sorted(self._parameters)}"
            ) from None

    def parameters(self) -> Tuple[Parameter, ...]:
        """All parameters, in insertion order."""
        return tuple(self._parameters.values())

    # Functional updates ------------------------------------------------

    def updated(self, **overrides: float) -> "ParameterSet":
        """Return a new set with the named values replaced.

        Unknown names raise :class:`~repro.exceptions.ParameterError` so a
        typo in a sweep specification fails loudly instead of silently
        sweeping nothing.
        """
        unknown = set(overrides) - set(self._parameters)
        if unknown:
            raise ParameterError(
                f"cannot override unknown parameter(s) {sorted(unknown)}; "
                f"known: {sorted(self._parameters)}"
            )
        out = ParameterSet()
        for name, parameter in self._parameters.items():
            if name in overrides:
                parameter = parameter.with_value(overrides[name])
            out._add(parameter)
        return out

    def extended(self, *parameters: Parameter) -> "ParameterSet":
        """Return a new set with additional parameters appended."""
        out = ParameterSet(self._parameters.values())
        for parameter in parameters:
            out._add(parameter)
        return out

    def subset(self, names: Iterable[str]) -> "ParameterSet":
        """Return a new set containing only the named parameters."""
        return ParameterSet(self.parameter(name) for name in names)

    def to_dict(self) -> Dict[str, float]:
        """Plain ``{name: value}`` dictionary copy."""
        return {name: p.value for name, p in self._parameters.items()}

    # Documentation -----------------------------------------------------

    def describe(self) -> str:
        """Render a human-readable table of the parameters."""
        if not self._parameters:
            return "(empty parameter set)"
        rows = [("name", "value", "unit", "provenance", "description")]
        for p in self._parameters.values():
            rows.append((p.name, f"{p.value:g}", p.unit, p.provenance, p.description))
        widths = [max(len(row[i]) for row in rows) for i in range(5)]
        lines = []
        for index, row in enumerate(rows):
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip())
            if index == 0:
                lines.append("  ".join("-" * widths[i] for i in range(5)))
        return "\n".join(lines)
