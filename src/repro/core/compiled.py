"""Compile-once / evaluate-many form of a :class:`MarkovModel`.

The scalar pipeline re-does a lot of interpreter work on every solve:
``build_generator`` re-validates the model, evaluates each symbolic rate
with a per-transition ``eval`` and re-assembles the matrix; the solver
then re-classifies the state space.  For repeated-solve workloads (the
paper's 1,000-snapshot uncertainty runs, parametric sweeps, configuration
comparisons) that interpreter overhead dominates the actual linear
algebra.

:class:`CompiledModel` performs the per-model work exactly once:

* structural validation (memoized via :meth:`MarkovModel.validate`),
* freezing the state ordering, reward vector and transition topology,
* compiling *all* rate expressions into one deduplicated
  :class:`~repro.kernels.program.RateProgram` evaluated in a NumPy
  namespace: each *distinct* expression source is evaluated exactly once
  per batch and scattered into every transition column that shares it,
  mapping parameter columns (scalars or ``(n_samples,)`` arrays) to an
  ``(n_samples, n_transitions)`` rate matrix in one ``eval``.

The vectorized program is bit-compatible with the scalar path for the
arithmetic subset (`+ - * / %` and friends operate on IEEE doubles in
both cases); transcendental functions may differ from ``math.*`` by an
ulp, which the batch solvers' tests account for.

Batched generator assembly and batched solvers live in
:mod:`repro.ctmc.batch`; the hierarchical batch driver lives in
:mod:`repro.hierarchy.composer`.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple, Union

import numpy as np

from repro import obs
from repro.core.expressions import vector_namespace
from repro.core.model import MarkovModel
from repro.exceptions import ExpressionError, ModelError
from repro.kernels.program import RateProgram

#: A parameter column: one scalar shared by all samples, or one value
#: per sample.
ColumnLike = Union[float, int, np.ndarray]


class CompiledModel:
    """A validated, frozen, vectorized form of a :class:`MarkovModel`.

    Construction validates the model structurally (once — repeat solves
    never re-validate) and compiles every transition-rate expression into
    one shared program.  Instances are immutable snapshots: mutating the
    source model afterwards does not affect the compiled form (and
    :func:`compile_model` will transparently re-compile).

    Example::

        compiled = compile_model(model)
        rates = compiled.rate_matrix({"La": la_samples, "Mu": 2.0}, 1000)
        generators = compiled.generator_batch(rates)   # (1000, n, n)
    """

    def __init__(self, model: MarkovModel) -> None:
        model.validate()
        self.model_name = model.name
        self.source_version = model.version
        self.state_names: Tuple[str, ...] = model.state_names
        self.index: Dict[str, int] = {
            name: i for i, name in enumerate(self.state_names)
        }
        self.rewards = np.asarray(model.reward_vector(), dtype=float)
        self.up_mask = self.rewards > 0.0
        self.up_idx = np.flatnonzero(self.up_mask)
        self.down_idx = np.flatnonzero(~self.up_mask)
        self.transitions = model.transitions
        self.transition_sources = np.array(
            [self.index[t.source] for t in self.transitions], dtype=np.intp
        )
        self.transition_targets = np.array(
            [self.index[t.target] for t in self.transitions], dtype=np.intp
        )
        names = set()
        for t in self.transitions:
            names |= set(t.rate.variables)
        self.required_parameters = frozenset(names)
        self._program = RateProgram(
            tuple(t.rate.source for t in self.transitions)
        )
        self._namespace = vector_namespace()
        # Zero-pattern -> structural classification, maintained by
        # repro.ctmc.batch so reachability analysis runs once per
        # pattern, not once per sample.
        self.structure_cache: Dict[bytes, object] = {}
        # Named solver artifacts (banded structure, symbolic CSR
        # patterns, ...) cached by repro.ctmc.batch / repro.ctmc.sparse.
        self.solver_cache: Dict[str, object] = {}

    # Introspection -------------------------------------------------------

    @property
    def n_states(self) -> int:
        return len(self.state_names)

    @property
    def n_transitions(self) -> int:
        return len(self.transitions)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompiledModel({self.model_name!r}, states={self.n_states}, "
            f"transitions={self.n_transitions})"
        )

    # Evaluation ----------------------------------------------------------

    def coerce_columns(
        self,
        values: Mapping[str, ColumnLike],
        n_samples: int,
    ) -> Dict[str, ColumnLike]:
        """Check and normalize a parameter-column mapping.

        Scalars stay Python floats (so expressions over non-varied
        parameters evaluate with exactly the scalar path's float
        arithmetic); arrays must be one value per sample.
        """
        missing = self.required_parameters - set(values.keys())
        if missing:
            raise ModelError(
                f"model {self.model_name!r} is missing parameter(s) "
                f"{sorted(missing)}"
            )
        columns: Dict[str, ColumnLike] = {}
        for name in self.required_parameters:
            value = values[name]
            if isinstance(value, np.ndarray):
                array = np.asarray(value, dtype=float)
                if array.ndim == 0:
                    columns[name] = float(array)
                elif array.shape == (n_samples,):
                    columns[name] = array
                else:
                    raise ModelError(
                        f"parameter column {name!r} has shape "
                        f"{array.shape}; expected ({n_samples},)"
                    )
            else:
                columns[name] = float(value)
        return columns

    def rate_matrix(
        self,
        values: Mapping[str, ColumnLike],
        n_samples: int,
    ) -> np.ndarray:
        """Evaluate every transition rate for every sample.

        Args:
            values: Parameter columns — scalars are broadcast across
                samples, arrays supply one value per sample.
            n_samples: Number of samples (rows of the result).

        Returns:
            ``(n_samples, n_transitions)`` array of rates, validated to
            be finite and non-negative (mirroring ``build_generator``).
        """
        if n_samples <= 0:
            raise ModelError(f"sample count must be positive, got {n_samples}")
        columns = self.coerce_columns(values, n_samples)
        out = np.empty((n_samples, self.n_transitions), dtype=float)
        if not self.transitions:
            return out
        try:
            with np.errstate(
                divide="ignore", invalid="ignore", over="ignore"
            ):
                self._program.evaluate(
                    columns, n_samples, self._namespace, out
                )
        except ZeroDivisionError:
            # A scalar-only sub-expression divided by zero; re-raise the
            # authentic per-expression error.
            self._raise_expression_error(columns)
        finite = np.isfinite(out)
        if not finite.all() or (out < 0.0).any():
            self._raise_invalid_rate(out, columns)
        return out

    def generator_batch(
        self, rates: np.ndarray, allow_dense: bool = False
    ) -> np.ndarray:
        """Assemble one generator matrix per sample.

        Zero rates simply leave the corresponding entry at zero, which is
        exactly the scalar path's ``drop_zero_rates=True`` behavior.

        Models at or above :data:`repro.ctmc.generator.SPARSE_THRESHOLD`
        states refuse to materialize the dense stack (a 1,000-sample
        batch of a 10,000-state chain would need ~800 GB) unless
        ``allow_dense=True``; the batch solvers route such models through
        the banded/sparse engines in :mod:`repro.ctmc.sparse` instead.

        Returns:
            ``(n_samples, n_states, n_states)`` dense array; each slice
            has zero row sums.
        """
        from repro.ctmc.generator import SPARSE_THRESHOLD

        rates = np.asarray(rates, dtype=float)
        n_samples = rates.shape[0]
        n = self.n_states
        if n >= SPARSE_THRESHOLD and not allow_dense:
            gib = n_samples * n * n * 8 / 2**30
            raise ModelError(
                f"model {self.model_name!r} has {n} states; materializing "
                f"the dense ({n_samples}, {n}, {n}) generator stack would "
                f"need ~{gib:.1f} GiB. Use repro.ctmc.batch_steady_state / "
                "batch_availability (they route models this size through "
                "the banded/sparse engines), or pass allow_dense=True to "
                "force the dense stack."
            )
        mats = np.zeros((n_samples, n, n), dtype=float)
        if self.n_transitions:
            mats[:, self.transition_sources, self.transition_targets] = rates
            diag = np.arange(n)
            mats[:, diag, diag] = -mats.sum(axis=2)
        return mats

    # Error reporting ------------------------------------------------------

    def _sample_values(
        self, columns: Mapping[str, ColumnLike], sample: int
    ) -> Dict[str, float]:
        return {
            name: float(value[sample])
            if isinstance(value, np.ndarray)
            else float(value)
            for name, value in columns.items()
        }

    def _raise_expression_error(
        self, columns: Mapping[str, ColumnLike]
    ) -> None:
        """Find which expression fails and raise its authentic error.

        A ``ZeroDivisionError`` escaping the vectorized program can only
        come from a scalar/scalar division, which re-evaluating any one
        sample the scalar way reproduces.
        """
        values = self._sample_values(columns, 0)
        for transition in self.transitions:
            transition.rate(values)  # raises the authentic ExpressionError
        raise ExpressionError(  # pragma: no cover - defensive
            f"rate evaluation failed for model {self.model_name!r}"
        )

    def _raise_invalid_rate(
        self, rates: np.ndarray, columns: Mapping[str, ColumnLike]
    ) -> None:
        bad = ~np.isfinite(rates) | (rates < 0.0)
        sample, j = map(int, np.argwhere(bad)[0])
        transition = self.transitions[j]
        values = self._sample_values(columns, sample)
        # Re-evaluating the scalar way surfaces divide-by-zero as the
        # same ExpressionError the scalar path raises.
        rate = transition.rate(values)
        raise ModelError(
            f"transition {transition.source!r} -> {transition.target!r} "
            f"evaluates to invalid rate {rate!r} "
            f"(expression {transition.rate.source!r}) for sample {sample}"
        )


def compile_model(model: Union[MarkovModel, CompiledModel]) -> CompiledModel:
    """Compile a model, reusing a cached compilation when still valid.

    The compiled form is cached on the model instance and invalidated by
    mutation (``add_state`` / ``add_transition`` bump the model's
    version counter).  Passing an already-compiled model returns it
    unchanged.
    """
    if isinstance(model, CompiledModel):
        return model
    cached: Optional[CompiledModel] = getattr(model, "_compiled_cache", None)
    if cached is not None and cached.source_version == model.version:
        obs.counter("repro_compile_cache_total", outcome="hit").inc()
        return cached
    obs.counter("repro_compile_cache_total", outcome="miss").inc()
    with obs.span("core.compile", model=model.name) as sp:
        compiled = CompiledModel(model)
        sp.set(
            n_states=compiled.n_states,
            n_transitions=compiled.n_transitions,
            version=compiled.source_version,
        )
    model._compiled_cache = compiled
    return compiled
