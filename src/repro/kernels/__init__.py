"""Compiled kernels for the solve hot path.

:mod:`repro.core.compiled` turns a model into frozen arrays plus a
vectorized rate program; this package turns the remaining per-solve work
into *kernels* — code specialized per model shape, selected once per
process from a ladder of backends:

* ``numba`` — JIT-compiled elimination loops, used when the optional
  ``numba`` package is importable (it is **not** a dependency; the
  container images for CI exercise both presence and absence);
* ``cext`` — a small C kernel compiled on first use with the system C
  compiler (``cc``/``gcc``/``clang``) and loaded through :mod:`ctypes`;
  no build step, no new dependency, cached under
  ``$REPRO_KERNEL_CACHE`` (default ``~/.cache/repro/kernels``);
* ``numpy`` — the pure-NumPy fallback, always available.  For the
  banded steady-state kernel this is a single block-diagonal LAPACK
  ``dgbsv`` solve over the whole batch (see
  :mod:`repro.kernels.banded`), not a Python loop.

Selection happens at import time from the ``REPRO_KERNEL`` environment
variable (``auto``, ``numba``, ``cext`` or ``numpy``; default ``auto``)
and can be changed at runtime with :func:`set_backend` — the CLI's
global ``--kernel`` flag does exactly that.  A backend that turns out to
be unusable at call time (numba compile failure, missing C compiler)
demotes itself to ``numpy`` for the rest of the process instead of
failing the solve.

Every backend is **value-compatible**: the rate program is bit-identical
to the interpreted path by construction (same expressions evaluated on
the same NumPy namespace, deduplicated), and the banded solvers agree
with the reference GTH elimination to ~1e-12, enforced by
``tests/kernels/``.
"""

from __future__ import annotations

import importlib.util
import os
from typing import Tuple

from repro.exceptions import KernelError

#: Backend names, in auto-selection order (first available wins).
BACKEND_LADDER: Tuple[str, ...] = ("numba", "cext", "numpy")

_backend: str = "numpy"


def _numba_available() -> bool:
    try:
        return importlib.util.find_spec("numba") is not None
    except (ImportError, ValueError):  # pragma: no cover - exotic paths
        return False


def _cext_available() -> bool:
    # Cheap probe only: a C compiler on PATH (or an already-built and
    # cached library).  The actual build happens lazily on first use and
    # demotes to numpy if it fails.
    from repro.kernels import cext

    return cext.probe()


def available_backends() -> Tuple[str, ...]:
    """Backends usable in this process, in ladder order."""
    out = []
    for name in BACKEND_LADDER:
        if name == "numpy":
            out.append(name)
        elif name == "numba" and _numba_available():
            out.append(name)
        elif name == "cext" and _cext_available():
            out.append(name)
    return tuple(out)


def backend_name() -> str:
    """The currently selected kernel backend."""
    return _backend


def set_backend(name: str) -> str:
    """Select a kernel backend; returns the previously selected one.

    ``"auto"`` re-runs the ladder.  Requesting an unavailable backend
    raises :class:`~repro.exceptions.KernelError` (so a CLI typo fails
    loudly instead of silently running slow).
    """
    global _backend
    previous = _backend
    if name == "auto":
        _backend = available_backends()[0] if available_backends() else "numpy"
        return previous
    if name not in BACKEND_LADDER:
        raise KernelError(
            f"unknown kernel backend {name!r}; expected one of "
            f"{('auto',) + BACKEND_LADDER}"
        )
    if name != "numpy" and name not in available_backends():
        raise KernelError(
            f"kernel backend {name!r} is not available in this "
            f"environment (available: {available_backends()})"
        )
    _backend = name
    return previous


def demote_to_numpy(reason: str) -> None:
    """Fall back to the numpy backend for the rest of the process.

    Called by kernel implementations when their backend fails at run
    time (numba compile error, C build failure) — solving must keep
    working, just slower.
    """
    global _backend
    if _backend != "numpy":
        from repro import obs

        obs.event("kernels.demoted", backend=_backend, reason=reason)
        _backend = "numpy"


def _select_initial() -> str:
    requested = os.environ.get("REPRO_KERNEL", "auto").strip().lower()
    if requested in ("", "auto"):
        avail = available_backends()
        return avail[0] if avail else "numpy"
    if requested not in BACKEND_LADDER:
        raise KernelError(
            f"REPRO_KERNEL={requested!r} is not a known backend; expected "
            f"one of {('auto',) + BACKEND_LADDER}"
        )
    if requested != "numpy" and requested not in available_backends():
        # An explicitly requested but unavailable backend demotes with a
        # visible event rather than crashing import of the whole library.
        return "numpy"
    return requested


_backend = _select_initial()

from repro.kernels.program import RateProgram  # noqa: E402  (public API)

__all__ = [
    "BACKEND_LADDER",
    "RateProgram",
    "available_backends",
    "backend_name",
    "demote_to_numpy",
    "set_backend",
]
