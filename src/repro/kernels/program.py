"""Deduplicated, vectorized rate-expression programs.

The generalized models repeat rate expressions heavily: the N=256 AS
model has 2,295 transitions but only ~265 distinct rate expressions
(every ``Repair`` arc shares one source string, and so on).  The
original compiled path evaluated all 2,295 sub-expressions per batch;
a :class:`RateProgram` evaluates each *distinct* source exactly once
and scatters the shared value into every owning column.

Bit-parity with the interpreted per-transition path is structural, not
numerical luck: two transitions with byte-identical source strings
compile to the same AST and therefore produce the same IEEE-754 result
for the same inputs, so writing one evaluation into both columns is
exactly what evaluating twice would have produced.  The property tests
in ``tests/kernels/test_program.py`` enforce this across the paper's
configurations.
"""

from __future__ import annotations

import ast
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from repro.core.expressions import rewrite_power_nodes

__all__ = ["RateProgram"]


def _compile_tuple(sources: Tuple[str, ...]):
    """Compile expression sources into one tuple-valued code object.

    Pow nodes get the same ``__rate_pow__`` rewrite as the scalar
    path (:func:`repro.core.expressions.rewrite_power_nodes`), so both
    engines run the identical operation sequence for ``a ** b``.
    """
    elements = []
    for source in sources:
        tree = rewrite_power_nodes(ast.parse(source, mode="eval"))
        elements.append(tree.body)
    program = ast.Expression(ast.Tuple(elts=elements, ctx=ast.Load()))
    ast.fix_missing_locations(program)
    return compile(program, "<compiled-rates>", "eval")


class RateProgram:
    """One model's rate expressions, deduplicated and vectorized.

    Attributes:
        sources: The per-transition expression sources, in transition
            order (length ``n_outputs``).
        unique_sources: Distinct sources in first-seen order.
        column_of: ``(n_outputs,)`` map from output column to its index
            in ``unique_sources``.
    """

    __slots__ = (
        "sources",
        "unique_sources",
        "column_of",
        "n_outputs",
        "n_unique",
        "_code",
        "_identity",
    )

    def __init__(self, sources: Tuple[str, ...]) -> None:
        self.sources = tuple(sources)
        self.n_outputs = len(self.sources)
        seen: Dict[str, int] = {}
        column_of = np.empty(self.n_outputs, dtype=np.intp)
        for j, source in enumerate(self.sources):
            column_of[j] = seen.setdefault(source, len(seen))
        self.unique_sources: Tuple[str, ...] = tuple(seen)
        self.column_of = column_of
        self.n_unique = len(self.unique_sources)
        self._code = _compile_tuple(self.unique_sources)
        # No duplicates at all: the gather degenerates to a straight copy.
        self._identity = self.n_unique == self.n_outputs

    def evaluate(
        self,
        columns: Mapping[str, object],
        n_samples: int,
        namespace: Mapping[str, object],
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Evaluate every transition rate for every sample.

        Args:
            columns: Parameter columns — Python floats broadcast, and
                ``(n_samples,)`` arrays supply one value per sample.
            n_samples: Number of samples (rows of the result).
            namespace: Global namespace for the program (the whitelisted
                NumPy functions from
                :func:`repro.core.expressions.vector_namespace`).
            out: Optional ``(n_samples, n_outputs)`` destination.

        Returns:
            ``(n_samples, n_outputs)`` array of rates (not validated —
            the caller owns finiteness/sign checks and error reporting).

        Raises:
            ZeroDivisionError: From a scalar-only division by zero, as
                the interpreted path would; the caller maps this to the
                authentic per-expression error.
        """
        if out is None:
            out = np.empty((n_samples, self.n_outputs), dtype=float)
        if not self.n_outputs:
            return out
        results = eval(  # noqa: S307 - validated arithmetic subset
            self._code, namespace, dict(columns)
        )
        if self._identity:
            for j, value in enumerate(results):
                out[:, j] = value
            return out
        # One strided write per distinct expression, then a single
        # gather into transition order.  (The earlier per-expression
        # fancy scatter — ``out[:, cols] = value[:, None]`` — was the
        # hot spot for wide models: hundreds of broadcasting fancy
        # writes per batch.)  Same bits: each output column receives
        # an untouched copy of its owning expression's value.
        unique = np.empty((n_samples, self.n_unique))
        for u, value in enumerate(results):
            unique[:, u] = value
        np.take(unique, self.column_of, axis=1, out=out)
        return out
