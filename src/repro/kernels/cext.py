"""Build-on-first-use C kernel for the banded GTH elimination.

No packaging machinery: the C source below is compiled once per machine
with whatever C compiler is on ``PATH`` (``cc``, ``gcc`` or ``clang``)
into a shared object under ``$REPRO_KERNEL_CACHE`` (default
``~/.cache/repro/kernels``), keyed by a hash of the source, and loaded
through :mod:`ctypes`.  Everything is defensive: no compiler, a failed
build, or a failed load simply report the backend unavailable and the
caller demotes to the numpy kernel.

The kernel itself is the same subtraction-free banded-plus-spike GTH
elimination as :func:`repro.ctmc.sparse.gth_banded_batch`, one C loop
per sample instead of a Python loop over states — O(n·b²) work with no
interpreter overhead, and the same storage layout (band slot
``j*w + u + i - j`` holds ``a[i, j]``; the spike column holds
``a[i, 0]``).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import pathlib
import shutil
import subprocess
import tempfile
import threading
from typing import Optional

_C_SOURCE = r"""
#include <stddef.h>
#include <string.h>

/* Banded-plus-spike GTH elimination, one sample per outer iteration.
 *
 * band : k_samples * n * w   doubles, slot j*w + u + (i - j) = a[i][j]
 * spike: k_samples * n       doubles, spike[i] = a[i][0]
 * pis  : k_samples * n       doubles (output, normalized)
 *
 * Returns 0 on success, 1 + sample index when elimination hits a state
 * with no flow back into the remaining block (reducible chain), and
 * -(1 + sample index) when the result fails to normalize.
 */
long repro_gth_banded(double *band, double *spike, double *pis,
                      long k_samples, long n, long w, long u, long l)
{
    long s, k, i, j;
    for (s = 0; s < k_samples; s++) {
        double *B = band + (size_t)s * n * w;
        double *S = spike + (size_t)s * n;
        double *P = pis + (size_t)s * n;
        for (k = n - 1; k >= 1; k--) {
            long lo_row = k - l > 1 ? k - l : 1;
            long lo_col = k - u > 0 ? k - u : 0;
            double total = S[k];
            for (j = lo_row; j < k; j++)
                total += B[j * w + u + k - j];
            if (!(total > 0.0))
                return 1 + s;
            for (i = lo_col; i < k; i++) {
                double factor = B[k * w + u + i - k] / total;
                B[k * w + u + i - k] = factor;
                if (factor != 0.0) {
                    for (j = lo_row; j < k; j++)
                        B[j * w + u + i - j] += factor * B[j * w + u + k - j];
                    S[i] += factor * S[k];
                }
            }
        }
        P[0] = 1.0;
        {
            double sum = 1.0;
            for (k = 1; k < n; k++) {
                long lo_col = k - u > 0 ? k - u : 0;
                double acc = 0.0;
                for (i = lo_col; i < k; i++)
                    acc += P[i] * B[k * w + u + i - k];
                P[k] = acc;
                sum += acc;
            }
            if (!(sum > 0.0) || (sum - sum) != 0.0)
                return -(1 + s);
            for (k = 0; k < n; k++)
                P[k] /= sum;
        }
    }
    return 0;
}

/* Band/spike assembly: for every sample row, zero the output row and
 * accumulate rates[cols[i]] (times signs[i] when given) into
 * out[slots[i]].  Entries arrive pre-sorted by slot then source column
 * (CSC order), so duplicate slots sum in the same order as the numpy
 * segment-sum path and the results are bit-identical.
 */
void repro_scatter_rows(const double *rates, const long *cols,
                        const long *slots, const double *signs,
                        double *out, long k_samples, long n_rates,
                        long nnz, long n_out)
{
    long s, i;
    for (s = 0; s < k_samples; s++) {
        const double *R = rates + (size_t)s * n_rates;
        double *O = out + (size_t)s * n_out;
        memset(O, 0, (size_t)n_out * sizeof(double));
        if (signs) {
            for (i = 0; i < nnz; i++)
                O[slots[i]] += signs[i] * R[cols[i]];
        } else {
            for (i = 0; i < nnz; i++)
                O[slots[i]] += R[cols[i]];
        }
    }
}
"""

_lock = threading.Lock()
_lib: Optional[ctypes.CDLL] = None
_failed = False


def cache_dir() -> pathlib.Path:
    override = os.environ.get("REPRO_KERNEL_CACHE")
    if override:
        return pathlib.Path(override)
    return pathlib.Path.home() / ".cache" / "repro" / "kernels"


def _library_path() -> pathlib.Path:
    digest = hashlib.sha256(_C_SOURCE.encode("utf-8")).hexdigest()[:16]
    return cache_dir() / f"repro_gth_{digest}.so"


def _compiler() -> Optional[str]:
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


def probe() -> bool:
    """Cheap availability check: cached build present, or a compiler."""
    if _failed:
        return False
    if _lib is not None:
        return True
    try:
        if _library_path().exists():
            return True
    except OSError:  # pragma: no cover - unreadable home
        return False
    return _compiler() is not None


def _build(target: pathlib.Path) -> None:
    compiler = _compiler()
    if compiler is None:
        raise OSError("no C compiler (cc/gcc/clang) on PATH")
    target.parent.mkdir(parents=True, exist_ok=True)
    with tempfile.TemporaryDirectory(dir=str(target.parent)) as tmp:
        source = pathlib.Path(tmp) / "repro_gth.c"
        source.write_text(_C_SOURCE, encoding="utf-8")
        built = pathlib.Path(tmp) / target.name
        subprocess.run(
            [
                compiler, "-O3", "-fPIC", "-shared",
                "-o", str(built), str(source),
            ],
            check=True,
            capture_output=True,
            timeout=120,
        )
        # Atomic publish: concurrent builders race benignly.
        os.replace(built, target)


def load() -> Optional[ctypes.CDLL]:
    """The compiled kernel library, building it on first use.

    Returns ``None`` (and remembers the failure) when the extension
    cannot be built or loaded in this environment.
    """
    global _lib, _failed
    if _lib is not None:
        return _lib
    if _failed:
        return None
    with _lock:
        if _lib is not None or _failed:
            return _lib
        target = _library_path()
        try:
            if not target.exists():
                _build(target)
            lib = ctypes.CDLL(str(target))
            fn = lib.repro_gth_banded
            fn.restype = ctypes.c_long
            fn.argtypes = [
                ctypes.POINTER(ctypes.c_double),
                ctypes.POINTER(ctypes.c_double),
                ctypes.POINTER(ctypes.c_double),
                ctypes.c_long,
                ctypes.c_long,
                ctypes.c_long,
                ctypes.c_long,
                ctypes.c_long,
            ]
            scatter = lib.repro_scatter_rows
            scatter.restype = None
            scatter.argtypes = [
                ctypes.POINTER(ctypes.c_double),
                ctypes.POINTER(ctypes.c_long),
                ctypes.POINTER(ctypes.c_long),
                ctypes.POINTER(ctypes.c_double),
                ctypes.POINTER(ctypes.c_double),
                ctypes.c_long,
                ctypes.c_long,
                ctypes.c_long,
                ctypes.c_long,
            ]
        except (OSError, subprocess.SubprocessError, AttributeError):
            _failed = True
            return None
        _lib = lib
        return _lib


def gth_banded(band, spike, pis, k_samples, n, w, u, l) -> int:
    """Run the C elimination in place; see the C source for the contract.

    All three arrays must be C-contiguous float64.  Raises
    :class:`RuntimeError` if the library is unavailable (callers check
    :func:`load` first, so this is defensive).
    """
    lib = load()
    if lib is None:
        raise RuntimeError("cext kernel unavailable")
    as_ptr = lambda a: a.ctypes.data_as(  # noqa: E731 - local shorthand
        ctypes.POINTER(ctypes.c_double)
    )
    return int(
        lib.repro_gth_banded(
            as_ptr(band), as_ptr(spike), as_ptr(pis),
            int(k_samples), int(n), int(w), int(u), int(l),
        )
    )


def scatter_rows(rates, cols, slots, signs, out) -> None:
    """Per-row scatter-accumulate assembly; see the C source contract.

    ``rates`` and ``out`` must be C-contiguous float64; ``cols`` and
    ``slots`` C-contiguous int64 (``long``); ``signs`` float64 or
    ``None`` for all-+1 maps.  ``out`` is fully overwritten (zeroed,
    then accumulated), so callers pass an uninitialized buffer.
    """
    lib = load()
    if lib is None:
        raise RuntimeError("cext kernel unavailable")
    dbl = lambda a: a.ctypes.data_as(  # noqa: E731 - local shorthand
        ctypes.POINTER(ctypes.c_double)
    )
    lng = lambda a: a.ctypes.data_as(  # noqa: E731 - local shorthand
        ctypes.POINTER(ctypes.c_long)
    )
    lib.repro_scatter_rows(
        dbl(rates), lng(cols), lng(slots),
        dbl(signs) if signs is not None else None,
        dbl(out), int(rates.shape[0]), int(rates.shape[1]),
        int(cols.shape[0]), int(out.shape[1]),
    )
