"""Banded-plus-spike steady-state kernels.

The interpreted reference (:func:`repro.ctmc.sparse.gth_banded_batch`)
is a Python loop over states — O(n) interpreter iterations per batch.
This module compiles the same solve three ways, selected by the active
backend (:func:`repro.kernels.backend_name`):

* **numpy** — reformulate ``pi Q = 0, sum(pi) = 1`` as one banded linear
  system and solve the *whole batch* with a single LAPACK ``dgbsv``
  call.  Setting ``pi_0 = 1`` and dropping column 0 of ``Q`` leaves the
  equations ``sum_i pi_i Q[i, j] = 0`` for ``j = 1..n-1`` over the
  unknowns ``pi_1..pi_{n-1}``: a banded system with ``kl = upper`` and
  ``ku = lower`` bandwidths (the spike column 0 drops out entirely).
  Stacking all k samples block-diagonally keeps the same bandwidths, and
  partial pivoting cannot cross block boundaries (every cross-block
  candidate entry is structurally zero, and a zero multiplier row update
  is an exact IEEE no-op), so **per-sample results are bit-independent
  of how the batch is chunked** — the property the deterministic worker
  pool (:mod:`repro.parallel`) relies on.
* **cext** — the C GTH elimination from :mod:`repro.kernels.cext`,
  assembled through the same precomputed scatter maps.
* **numba** — an ``@njit`` transcription of the same elimination,
  compiled lazily on first use.

All assembly goes through precomputed gather/segment-sum maps
(:class:`_ScatterMap`) instead of ``np.add.at`` or sparse matmuls — the
single biggest win for wide models, where the fancy-indexed scatter and
later the CSC multiply (plus its contiguity copy) dominated the
profile.  The maps sum contributions in CSC order (slot-major, then
transition index), so results are bit-identical to the sparse-matrix
assembly they replaced.

Failures degrade, never corrupt: samples the LAPACK solve cannot handle
are re-solved individually (bit-identical to their batched solve — see
above) and then, if still invalid, by the subtraction-free GTH
reference; backend-level failures demote the process to numpy.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy.linalg import lapack as _lapack

from repro import obs
from repro.ctmc.sparse import BandedStructure, gth_banded_batch
from repro.exceptions import SolverError

__all__ = ["BandedKernelPlan", "banded_kernel_plan", "banded_steady_state"]

#: Validation tolerance for a kernel-produced vector (matches the
#: structured-engine check in :mod:`repro.ctmc.batch`).
_NEG_TOL = -1e-8


class _ScatterMap:
    """``rates @ sparse_map`` as a gather plus segment sum.

    Equivalent to multiplying the ``(k, n_transitions)`` rate matrix by
    a ±1-valued sparse scatter matrix, but without the sparse-matmul
    dispatch, the intermediate, or the C-contiguity copy the solvers
    needed afterwards.  Entries are pre-sorted by output slot (ties
    broken by transition index — CSC summation order, so swapping the
    backing store changed no bits), and slots with a single contributor
    — the overwhelmingly common case — take a pure fancy-assignment
    fast path.
    """

    __slots__ = (
        "gather_cols", "signs", "starts", "slots", "all_slots", "n_out",
    )

    def __init__(
        self,
        rows: np.ndarray,
        slots: np.ndarray,
        data: np.ndarray,
        n_out: int,
    ) -> None:
        rows = np.asarray(rows, dtype=np.int64)
        slots = np.asarray(slots, dtype=np.int64)
        data = np.ascontiguousarray(data, dtype=float)
        order = np.lexsort((rows, slots))
        self.gather_cols = np.ascontiguousarray(rows[order])
        signs = np.ascontiguousarray(data[order])
        self.signs = None if bool(np.all(signs == 1.0)) else signs
        sorted_slots = np.ascontiguousarray(slots[order])
        if sorted_slots.size:
            starts = np.flatnonzero(np.r_[True, np.diff(sorted_slots) > 0])
        else:
            starts = np.empty(0, dtype=np.intp)
        self.starts = starts
        self.slots = sorted_slots[starts]
        self.all_slots = sorted_slots
        self.n_out = int(n_out)

    def apply(self, rates: np.ndarray) -> np.ndarray:
        """C-contiguous ``(k, n_out)`` assembly of the mapped slots."""
        out = np.zeros((rates.shape[0], self.n_out))
        if not self.gather_cols.size:
            return out
        gathered = rates[:, self.gather_cols]
        if self.signs is not None:
            gathered *= self.signs
        if self.starts.size == self.gather_cols.size:
            out[:, self.slots] = gathered
        else:
            out[:, self.slots] = np.add.reduceat(
                gathered, self.starts, axis=1
            )
        return out

    def apply_cext(self, rates: np.ndarray, cext) -> np.ndarray:
        """Same assembly through the C scatter loop (bit-identical)."""
        out = np.empty((rates.shape[0], self.n_out))
        cext.scatter_rows(
            rates, self.gather_cols, self.all_slots, self.signs, out
        )
        return out


class BandedKernelPlan:
    """Precomputed scatter maps for one model's banded solves.

    Built once per compiled model (cached in ``solver_cache``); holds
    :class:`_ScatterMap` gathers taking the ``(k, n_transitions)`` rate
    matrix straight to the LAPACK band storage / GTH band-plus-spike
    storage.
    """

    __slots__ = (
        "structure", "n", "nm", "kl", "ku", "wtot",
        "ab_map", "rhs_map", "band_map", "spike_map",
    )

    def __init__(
        self,
        structure: BandedStructure,
        sources: np.ndarray,
        targets: np.ndarray,
    ) -> None:
        self.structure = structure
        n = structure.n
        self.n = n
        self.nm = n - 1
        # pi Q = 0 transposed: kl/ku swap relative to Q's bandwidths.
        self.kl = structure.upper
        self.ku = structure.lower
        self.wtot = 2 * self.kl + self.ku + 1
        t = np.arange(sources.size, dtype=np.intp)
        s = np.asarray(sources, dtype=np.intp)
        g = np.asarray(targets, dtype=np.intp)

        # LAPACK band storage for M[r, c] = Q[c+1, r+1] (flat C-order
        # (nm, wtot); its transpose is the F-order (wtot, nm) dgbsv
        # input).  M[r, c] lives at c*wtot + kl + ku + r - c.
        off = (s >= 1) & (g >= 1)            # Q[s, g] -> M[g-1, s-1]
        diag = s >= 1                        # exit rates -> M[s-1, s-1]
        slot_off = (s[off] - 1) * self.wtot + self.kl + self.ku + g[off] - s[off]
        slot_diag = (s[diag] - 1) * self.wtot + self.kl + self.ku
        rows = np.concatenate([t[off], t[diag]])
        cols = np.concatenate([slot_off, slot_diag])
        data = np.concatenate(
            [np.ones(slot_off.size), -np.ones(slot_diag.size)]
        )
        self.ab_map = _ScatterMap(rows, cols, data, self.nm * self.wtot)

        # Known terms: rhs[r] = -Q[0, r+1].
        init = s == 0
        self.rhs_map = _ScatterMap(
            t[init], g[init] - 1, -np.ones(int(init.sum())), self.nm
        )

        # GTH band-plus-spike storage for the cext / numba eliminators
        # (same layout as gth_banded_batch).
        in_band = structure.band_slots >= 0
        self.band_map = _ScatterMap(
            t[in_band],
            structure.band_slots[in_band],
            np.ones(int(in_band.sum())),
            n * structure.width,
        )
        self.spike_map = _ScatterMap(
            t[~in_band],
            structure.spike_rows[~in_band],
            np.ones(int((~in_band).sum())),
            n,
        )


def banded_kernel_plan(compiled) -> BandedKernelPlan:
    """The model's (cached) banded kernel plan."""
    cache = compiled.solver_cache
    plan = cache.get("banded_kernel_plan")
    if plan is None:
        structure = cache.get("banded")
        assert structure is not None, "banded structure must be detected first"
        plan = BandedKernelPlan(
            structure,
            compiled.transition_sources,
            compiled.transition_targets,
        )
        cache["banded_kernel_plan"] = plan
    return plan


# numpy backend --------------------------------------------------------------


def _dgbsv_block(plan: BandedKernelPlan, ab_flat: np.ndarray,
                 rhs_flat: np.ndarray) -> Optional[np.ndarray]:
    """One block-diagonal ``dgbsv`` solve; ``None`` on a zero pivot.

    ``ab_flat`` is the C-order ``(blocks*nm, wtot)`` band storage (its
    transpose is the F-order LAPACK input) and is overwritten.
    """
    _, _, x, info = _lapack.dgbsv(
        plan.kl, plan.ku, ab_flat.T, rhs_flat,
        overwrite_ab=1, overwrite_b=1,
    )
    if info != 0:
        return None
    return np.asarray(x, dtype=float)


def _solve_numpy(plan: BandedKernelPlan, rates: np.ndarray) -> np.ndarray:
    k = rates.shape[0]
    nm, wtot, n = plan.nm, plan.wtot, plan.n
    ab = plan.ab_map.apply(rates)    # (k, nm*wtot), C-contiguous
    rhs = plan.rhs_map.apply(rates)  # (k, nm)
    pis = np.empty((k, n))
    pis[:, 0] = 1.0
    # dgbsv overwrites both inputs; ab/rhs are scratch from here on.
    x = _dgbsv_block(plan, ab.reshape(k * nm, wtot), rhs.reshape(k * nm))
    if x is not None:
        pis[:, 1:] = x.reshape(k, nm)
    else:
        # A zero pivot somewhere in the batch: re-assemble and re-solve
        # each sample alone.  A sample's solo solve is bit-identical to
        # its batched solve (pivoting cannot cross blocks), so which
        # samples share a call never changes any result.
        obs.counter("kernels_banded_pivot_fallbacks_total").inc()
        for i in range(k):
            row = rates[i: i + 1]
            ab_i = plan.ab_map.apply(row).reshape(nm, wtot)
            rhs_i = plan.rhs_map.apply(row).reshape(nm)
            x_i = _dgbsv_block(plan, ab_i, rhs_i)
            if x_i is not None:
                pis[i, 1:] = x_i
            else:
                pis[i, 1:] = np.nan  # caught by validation below
    sums = pis.sum(axis=1)
    ok = (
        np.isfinite(pis).all(axis=1)
        & (pis.min(axis=1) >= _NEG_TOL * np.abs(sums))
        & (sums > 0.0)
    )
    bad = np.flatnonzero(~ok)
    if bad.size:
        # Per-sample GTH re-solve: subtraction-free, so it either
        # produces a valid vector or raises the reducible-chain error
        # the interpreted engine would have raised.  Per-sample, so the
        # fallback decision is also chunking-independent.
        obs.counter("kernels_banded_gth_fallbacks_total").inc(int(bad.size))
        for i in bad:
            pis[i] = gth_banded_batch(plan.structure, rates[i])[0]
        sums = pis.sum(axis=1)
    return pis / sums[:, None]


# cext backend ---------------------------------------------------------------


def _solve_cext(plan: BandedKernelPlan, rates: np.ndarray) -> Optional[np.ndarray]:
    from repro.kernels import cext

    if cext.load() is None:
        return None
    st = plan.structure
    k = rates.shape[0]
    rates = np.ascontiguousarray(rates)
    band = plan.band_map.apply_cext(rates, cext)
    spike = plan.spike_map.apply_cext(rates, cext)
    pis = np.empty((k, st.n))
    status = cext.gth_banded(
        band, spike, pis, k, st.n, st.width, st.upper, st.lower
    )
    if status > 0:
        raise SolverError(
            "GTH elimination failed: no transition from eliminated "
            "state back into the remaining block (reducible chain?) "
            f"(sample {status - 1})"
        )
    if status < 0:
        raise SolverError(
            "banded GTH elimination produced a non-normalizable vector "
            f"(sample {-status - 1})"
        )
    return pis


# numba backend --------------------------------------------------------------

_numba_fn = None
_numba_failed = False


def _numba_kernel():
    """Build (once) the ``@njit`` GTH eliminator; ``None`` on failure."""
    global _numba_fn, _numba_failed
    if _numba_fn is not None:
        return _numba_fn
    if _numba_failed:
        return None
    try:
        import numba

        @numba.njit(cache=False, fastmath=False)
        def gth(band, spike, pis, n, w, u, l):  # pragma: no cover - needs numba
            k_samples = band.shape[0]
            for s in range(k_samples):
                B = band[s]
                S = spike[s]
                P = pis[s]
                for k in range(n - 1, 0, -1):
                    lo_row = max(1, k - l)
                    lo_col = max(0, k - u)
                    total = S[k]
                    for j in range(lo_row, k):
                        total += B[j * w + u + k - j]
                    if not total > 0.0:
                        return 1 + s
                    for i in range(lo_col, k):
                        factor = B[k * w + u + i - k] / total
                        B[k * w + u + i - k] = factor
                        if factor != 0.0:
                            for j in range(lo_row, k):
                                B[j * w + u + i - j] += (
                                    factor * B[j * w + u + k - j]
                                )
                            S[i] += factor * S[k]
                P[0] = 1.0
                acc_sum = 1.0
                for k in range(1, n):
                    lo_col = max(0, k - u)
                    acc = 0.0
                    for i in range(lo_col, k):
                        acc += P[i] * B[k * w + u + i - k]
                    P[k] = acc
                    acc_sum += acc
                if not acc_sum > 0.0 or (acc_sum - acc_sum) != 0.0:
                    return -(1 + s)
                for k in range(n):
                    P[k] /= acc_sum
            return 0

        _numba_fn = gth
        return _numba_fn
    except Exception:  # noqa: BLE001 - any numba failure demotes
        _numba_failed = True
        return None


def _solve_numba(plan: BandedKernelPlan, rates: np.ndarray) -> Optional[np.ndarray]:
    gth = _numba_kernel()
    if gth is None:
        return None
    st = plan.structure
    k = rates.shape[0]
    band = plan.band_map.apply(rates)
    spike = plan.spike_map.apply(rates)
    pis = np.empty((k, st.n))
    try:
        status = gth(band, spike, pis, st.n, st.width, st.upper, st.lower)
    except Exception:  # noqa: BLE001 - pragma: no cover - jit runtime failure
        return None
    if status > 0:
        raise SolverError(
            "GTH elimination failed: no transition from eliminated "
            "state back into the remaining block (reducible chain?) "
            f"(sample {status - 1})"
        )
    if status < 0:
        raise SolverError(
            "banded GTH elimination produced a non-normalizable vector "
            f"(sample {-status - 1})"
        )
    return pis


# Dispatch -------------------------------------------------------------------


def banded_steady_state(compiled, rates: np.ndarray) -> np.ndarray:
    """Stationary vectors through the active kernel backend.

    Args:
        compiled: A :class:`~repro.core.compiled.CompiledModel` whose
            banded structure has already been detected (and cached).
        rates: ``(k, n_transitions)`` non-negative rate matrix.

    Returns:
        ``(k, n)`` normalized stationary vectors.

    Raises:
        SolverError: On a reducible / non-normalizable sample, matching
            the interpreted engine's behavior.
    """
    from repro import kernels

    plan = banded_kernel_plan(compiled)
    backend = kernels.backend_name()
    if backend == "numba":
        pis = _solve_numba(plan, rates)
        if pis is not None:
            return pis
        kernels.demote_to_numpy("numba banded kernel unavailable")
    elif backend == "cext":
        pis = _solve_cext(plan, rates)
        if pis is not None:
            return pis
        kernels.demote_to_numpy("cext banded kernel unavailable")
    return _solve_numpy(plan, rates)
