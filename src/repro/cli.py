"""Command-line interface: ``repro-avail``.

Subcommands mirror the paper's analyses:

* ``solve`` — availability of one configuration.
* ``table2`` / ``table3`` — reproduce the paper's result tables.
* ``sweep`` — Figs. 5/6 parametric sweep of Tstart_long_as.
* ``uncertainty`` — Figs. 7/8 random-sampling analysis.
* ``campaign`` — run a simulated fault-injection campaign.
* ``chaos`` — run a live fault-injection campaign against the server.
* ``longevity`` — run a simulated stability test.
* ``serve`` — run the batching availability-evaluation server
  (``--shards N`` fronts N shard processes with a consistent-hash
  router).
* ``failover`` — seeded cluster shard-kill drill (zero failed requests).
* ``metastable map|campaign|validate`` — map the retry-storm regimes
  of the service's shed/retry loop and validate the predicted trigger
  boundary against a live load-spike campaign.
* ``obs report`` — render a recorded trace as a span-tree report.

Global observability flags (before the subcommand):

* ``--trace FILE`` — record the run as JSONL structured events/spans;
* ``--metrics FILE`` — write the run's metrics in Prometheus text format.

``solve``, ``sweep`` and ``uncertainty`` additionally accept ``--json``
to emit one machine-readable JSON document instead of tables.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, NoReturn, Optional

import numpy as np

from repro._version import __version__
from repro.analysis.report import render_table
from repro.models.jsas import (
    CONFIG_1,
    PAPER_PARAMETERS,
    JsasConfiguration,
    compare_configurations,
    optimal_configuration,
)
from repro.obs.console import Reporter
from repro.sensitivity import parametric_sweep
from repro.units import nines_to_availability


def _add_config_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--instances", "--n-instances", type=int, default=2,
        dest="instances", help="AS instances (default 2)",
    )
    parser.add_argument(
        "--pairs", type=int, default=2, help="HADB node pairs (default 2)"
    )


def _add_engine_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--engine", choices=("scalar", "compiled"), default="compiled",
        help="solver engine: 'compiled' (vectorized, default) or "
        "'scalar' (interpreted reference path)",
    )


def _add_json_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--json", action="store_true",
        help="emit one machine-readable JSON document instead of text",
    )


def _reporter(args: argparse.Namespace) -> Reporter:
    return Reporter(json_mode=getattr(args, "json", False))


def _configuration(args: argparse.Namespace) -> JsasConfiguration:
    return JsasConfiguration(n_instances=args.instances, n_pairs=args.pairs)


def _cmd_solve(args: argparse.Namespace) -> int:
    reporter = _reporter(args)
    if getattr(args, "fitted", None):
        from repro.selfmodel import ClusterSelfModel

        model = ClusterSelfModel.from_artifact(args.fitted)
        result = model.solve()
        reporter.line(f"{model.name} (rates fitted from {args.fitted})")
        reporter.line(result.summary())
        reporter.finish(
            command="solve",
            fitted=str(args.fitted),
            model=model.name,
            availability=result.availability,
            yearly_downtime_minutes=result.yearly_downtime_minutes,
            mtbf_hours=result.mtbf_hours,
        )
        return 0
    config = _configuration(args)
    if args.engine == "compiled":
        result = config.solve_compiled(PAPER_PARAMETERS)
    else:
        result = config.solve(PAPER_PARAMETERS)
    reporter.line(result.summary())
    reporter.finish(
        command="solve",
        configuration={
            "n_instances": config.n_instances,
            "n_pairs": config.n_pairs,
        },
        engine=args.engine,
        availability=result.availability,
        yearly_downtime_minutes=result.yearly_downtime_minutes,
        mtbf_hours=result.mtbf_hours,
        submodels={
            name: {
                "downtime_minutes": report.downtime_minutes,
                "downtime_fraction": report.downtime_fraction,
                "failure_rate": report.interface.failure_rate,
                "recovery_rate": report.interface.recovery_rate,
            }
            for name, report in result.submodels.items()
        },
    )
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    reporter = _reporter(args)
    rows = []
    for label, (n_as, n_pairs) in (
        ("Config 1", (2, 2)),
        ("Config 2", (4, 4)),
    ):
        result = JsasConfiguration(n_as, n_pairs).solve(PAPER_PARAMETERS)
        as_report = result.submodels["appserver"]
        hadb_report = result.submodels["hadb"]
        rows.append(
            [
                label,
                f"{result.availability:.5%}",
                f"{result.yearly_downtime_minutes:.2f} min",
                f"{as_report.downtime_minutes:.2f} min "
                f"({as_report.downtime_fraction:.0%})",
                f"{hadb_report.downtime_minutes:.2f} min "
                f"({hadb_report.downtime_fraction:.0%})",
            ]
        )
    reporter.line(
        render_table(
            ["Configuration", "Availability", "Yearly Downtime",
             "YD due to AS", "YD due to HADB"],
            rows,
            title="Table 2. System Results",
        )
    )
    return 0


def _cmd_table3(args: argparse.Namespace) -> int:
    reporter = _reporter(args)
    rows = compare_configurations(engine=args.engine)
    reporter.line(
        render_table(
            ["# Instances", "# HADB Pairs", "Availability",
             "Yearly Downtime", "MTBF (hr)"],
            [row.as_row() for row in rows],
            title="Table 3. Comparison of Configurations",
        )
    )
    best = optimal_configuration(rows)
    reporter.line(
        f"\nOptimal: {best.n_instances} instances / {best.n_pairs} pairs "
        f"({best.availability:.5%})"
    )
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.models.jsas.configs import HierarchicalConfigMetric

    reporter = _reporter(args)
    if getattr(args, "fitted", None):
        return _cmd_sweep_fitted(args, reporter)
    config = _configuration(args)
    if args.engine == "compiled":
        # Batch-capable metric: the whole grid solves as one stacked
        # (or banded/sparse, for large --n-instances) linear-algebra call.
        metric = HierarchicalConfigMetric(config, metric="availability")
    else:
        def metric(values: dict) -> float:
            return config.solve(values).availability

    start = args.start if args.start is not None else 0.5
    stop = args.stop if args.stop is not None else 3.0
    grid = list(np.linspace(start, stop, args.points))
    sweep = parametric_sweep(
        metric,
        "Tstart_long_as",
        grid,
        PAPER_PARAMETERS.to_dict(),
        metric_name="availability",
    )
    reporter.line(
        render_table(
            ["Tstart_long (hours)", "Availability"],
            [(f"{x:.2f}", f"{y:.7%}") for x, y in sweep.as_rows()],
            title=(
                f"Availability vs AS HW/OS recovery time "
                f"({config.n_instances} instances, {config.n_pairs} pairs)"
            ),
        )
    )
    reporter.record(
        command="sweep",
        parameter="Tstart_long_as",
        engine=args.engine,
        configuration={
            "n_instances": config.n_instances,
            "n_pairs": config.n_pairs,
        },
        points=[
            {"Tstart_long_as": x, "availability": y}
            for x, y in sweep.as_rows()
        ],
    )
    five_nines = nines_to_availability(5)
    try:
        crossing = sweep.crossing(five_nines)
        reporter.line(
            f"\nFive-9s crossover at Tstart_long = {crossing:.2f} h"
        )
        reporter.record(five_nines_crossing_hours=crossing)
    except Exception:
        reporter.line("\nFive-9s level is retained across the whole sweep")
        reporter.record(five_nines_crossing_hours=None)
    reporter.finish()
    return 0


def _cmd_sweep_fitted(
    args: argparse.Namespace, reporter: "Reporter"
) -> int:
    """Parametric what-if sweep over the fitted cluster model."""
    from repro.selfmodel import ClusterSelfModel

    model = ClusterSelfModel.from_artifact(args.fitted)
    parameter = args.parameter or "Mu_restore"
    if parameter not in model.base_values:
        reporter.line(
            f"unknown fitted parameter {parameter!r}; available: "
            f"{sorted(model.base_values)}"
        )
        return 2
    point = model.base_values[parameter]
    # Without explicit bounds, sweep a decade around the fitted point.
    start = args.start if args.start is not None else point * 0.25
    stop = args.stop if args.stop is not None else point * 4.0
    metric = model.metric(metric="availability")
    grid = list(np.linspace(start, stop, args.points))
    sweep = parametric_sweep(
        metric,
        parameter,
        grid,
        dict(model.base_values),
        metric_name="availability",
    )
    reporter.line(
        render_table(
            [f"{parameter} (1/hour)", "Availability"],
            [(f"{x:.4g}", f"{y:.7%}") for x, y in sweep.as_rows()],
            title=(
                f"{model.name}: availability vs {parameter} "
                f"(fitted point {point:.4g}/h)"
            ),
        )
    )
    reporter.finish(
        command="sweep",
        fitted=str(args.fitted),
        model=model.name,
        parameter=parameter,
        points=[
            {parameter: x, "availability": y} for x, y in sweep.as_rows()
        ],
    )
    return 0


def _cmd_uncertainty(args: argparse.Namespace) -> int:
    from repro.models.jsas.configs import build_uncertainty_analysis

    reporter = _reporter(args)
    if getattr(args, "fitted", None):
        from repro.selfmodel import ClusterSelfModel

        model = ClusterSelfModel.from_artifact(args.fitted)
        analysis = model.uncertainty_analysis(
            metric="yearly_downtime_minutes"
        )
        result = analysis.run(
            n_samples=args.samples,
            seed=args.seed,
            batch=args.engine == "compiled",
            n_jobs=args.jobs,
        )
        reporter.line(
            f"{model.name}: fitted-rate intervals propagated "
            f"({len(analysis.distributions)} varied parameter(s))"
        )
        reporter.line(result.summary())
        reporter.finish(
            command="uncertainty",
            fitted=str(args.fitted),
            model=model.name,
            n_samples=args.samples,
            seed=args.seed,
            metric=result.metric_name,
            mean=result.mean,
            median=result.percentile(50),
        )
        return 0
    config = _configuration(args)
    analysis = build_uncertainty_analysis(config)
    result = analysis.run(
        n_samples=args.samples,
        seed=args.seed,
        batch=args.engine == "compiled",
        n_jobs=args.jobs,
    )
    reporter.line(result.summary())
    reporter.line(
        f"fraction of sampled systems under 5.25 min/yr "
        f"(>= five 9s): {result.fraction_below(5.25):.1%}"
    )
    reporter.finish(
        command="uncertainty",
        configuration={
            "n_instances": config.n_instances,
            "n_pairs": config.n_pairs,
        },
        engine=args.engine,
        n_samples=args.samples,
        seed=args.seed,
        metric=result.metric_name,
        mean=result.mean,
        std=result.std,
        median=result.percentile(50),
        minimum=min(result.values),
        maximum=max(result.values),
        fraction_below_five_nines=result.fraction_below(5.25),
    )
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.testbed import run_fault_injection_campaign

    reporter = _reporter(args)
    result = run_fault_injection_campaign(args.injections, seed=args.seed)
    reporter.line(result.summary())
    coverage = result.coverage()
    reporter.line(
        f"Eq.1 coverage bound at 95%: FIR <= {coverage.fir_upper:.4%} "
        f"({result.n_successful}/{result.n_injections} successful)"
    )
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.chaos.campaign import run_campaign

    reporter = _reporter(args)
    report = run_campaign(
        injections=args.injections,
        seed=args.seed,
        url=args.url,
        confidence=args.confidence,
        report_path=args.report,
        stall_seconds=args.stall_ms / 1000.0,
    )
    reporter.line(
        f"chaos campaign: {report.recovered}/{report.injections} "
        f"injections recovered (seed {report.seed}, "
        f"server {report.url})"
    )
    for point, estimate in sorted(report.by_point.items()):
        reporter.line(
            f"  {point:<18} {estimate.n_successes}/{estimate.n_trials} "
            f"recovered; coverage >= {estimate.lower:.4%}"
        )
    overall = report.overall
    reporter.line(
        f"Eq.1 coverage bound at {overall.confidence:.1%}: "
        f"C >= {overall.lower:.4%} (FIR <= {overall.fir_upper:.4%})"
    )
    if args.report:
        reporter.line(f"report written to {args.report}")
    reporter.record(command="chaos", **report.deterministic_dict())
    reporter.finish()
    return 0 if report.recovered == report.injections else 1


def _grid_floats(text: str) -> tuple:
    """Argparse type: comma-separated floats (``"0.3,0.6,0.9"``)."""
    try:
        return tuple(float(v) for v in text.split(",") if v.strip())
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated numbers, got {text!r}"
        ) from None


def _grid_ints(text: str) -> tuple:
    """Argparse type: comma-separated integers (``"1,2,4"``)."""
    try:
        return tuple(int(v) for v in text.split(",") if v.strip())
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated integers, got {text!r}"
        ) from None


def _cells_arg(text: str) -> tuple:
    """Argparse type: campaign cells (``"0.3:1,0.9:6"``)."""
    from repro.exceptions import ModelError
    from repro.metastable.campaign import parse_cells

    try:
        return tuple(parse_cells(text))
    except ModelError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _metastable_map_artifact(args: argparse.Namespace):
    from repro.metastable.regimes import map_regimes

    return map_regimes(
        loads=args.loads,
        budgets=args.budgets,
        queue_depth=args.queue_depth,
        orbit_size=args.orbit_size,
        delta=args.delta,
        theta=args.theta,
        horizon=args.horizon,
        threshold=args.threshold,
        n_jobs=args.jobs,
    )


def _cmd_metastable_map(args: argparse.Namespace) -> int:
    from repro.metastable.regimes import render_regime_map, write_regime_map

    reporter = _reporter(args)
    artifact = _metastable_map_artifact(args)
    for line in render_regime_map(artifact):
        reporter.line(line)
    if args.out:
        write_regime_map(artifact, args.out)
        reporter.line(f"regime map written to {args.out}")
    reporter.record(command="metastable-map", **artifact["deterministic"])
    reporter.finish()
    return 0


def _cmd_metastable_campaign(args: argparse.Namespace) -> int:
    from repro.metastable.campaign import run_trigger_campaign, write_campaign

    reporter = _reporter(args)
    artifact = run_trigger_campaign(
        cells=args.cells or (),
        seed=args.seed,
        stall_seconds=args.stall_ms / 1000.0,
        queue_limit=args.queue_limit,
        client_threads=args.threads,
        deadline_seconds=args.deadline,
        backoff_cap_seconds=args.backoff_cap_ms / 1000.0,
        observe_probes=args.probes,
    )
    for cell in artifact["observed"]["cells"]:
        reporter.line(
            f"load={cell['cell']['load']:g} "
            f"budget={cell['cell']['budget']} -> {cell['outcome']} "
            f"({cell['probes_ok']}/"
            f"{cell['probes_ok'] + cell['probes_failed']} probes ok)"
        )
    if args.out:
        write_campaign(artifact, args.out)
        reporter.line(f"campaign artifact written to {args.out}")
    reporter.record(
        command="metastable-campaign", **artifact["deterministic"]
    )
    reporter.finish()
    return 0


def _cmd_metastable_validate(args: argparse.Namespace) -> int:
    from repro.metastable.campaign import load_campaign, run_trigger_campaign
    from repro.metastable.regimes import load_regime_map
    from repro.metastable.validate import render_validation, validate_boundary

    reporter = _reporter(args)
    if args.map:
        regime_map = load_regime_map(args.map)
    else:
        regime_map = _metastable_map_artifact(args)
    if args.campaign:
        campaign = load_campaign(args.campaign)
    else:
        campaign = run_trigger_campaign(
            cells=args.cells or (), seed=args.seed
        )
    report = validate_boundary(regime_map, campaign)
    for line in render_validation(report):
        reporter.line(line)
    reporter.record(command="metastable-validate", **report)
    reporter.finish()
    return 0 if report["verdict"] == "agree" else 1


def _cmd_metastable(args: argparse.Namespace) -> int:
    """Dispatch ``metastable map | campaign | validate``."""
    handlers = {
        "map": _cmd_metastable_map,
        "campaign": _cmd_metastable_campaign,
        "validate": _cmd_metastable_validate,
    }
    return handlers[args.metastable_command](args)


def _cmd_risk(args: argparse.Namespace) -> int:
    from repro.analysis.risk import annual_downtime_risk

    reporter = _reporter(args)
    result = _configuration(args).solve(PAPER_PARAMETERS)
    risk = annual_downtime_risk(result, n_years=args.years, seed=args.seed)
    reporter.line(risk.summary(sla_minutes=args.sla))
    reporter.line(
        f"expected outages/year: {risk.outage_rate_per_year:.3f}; "
        f"p99 annual downtime: {risk.percentile(99):.1f} min"
    )
    return 0


def _cmd_assess(args: argparse.Namespace) -> int:
    from repro.models.jsas.assessment import generate_assessment

    reporter = _reporter(args)
    assessment = generate_assessment(
        primary=_configuration(args),
        n_uncertainty_samples=args.samples,
        n_risk_years=args.years,
        seed=args.seed,
    )
    reporter.line(assessment.to_text())
    return 0


def _cmd_mission(args: argparse.Namespace) -> int:
    from repro.analysis.mission import mission_availability
    from repro.models.jsas import build_hadb_pair_model

    reporter = _reporter(args)
    result = mission_availability(
        build_hadb_pair_model(),
        mission_hours=args.hours,
        n_missions=args.missions,
        values=PAPER_PARAMETERS.to_dict(),
        seed=args.seed,
    )
    reporter.line(result.summary(target=nines_to_availability(args.nines)))
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    from repro.models.jsas.planner import plan_configuration

    reporter = _reporter(args)
    target = nines_to_availability(args.nines)
    recommendation = plan_configuration(
        target,
        PAPER_PARAMETERS,
        max_instances=args.max_instances,
        engine=args.engine,
    )
    if recommendation.feasible:
        config = recommendation.configuration
        reporter.line(
            f"smallest shape for {args.nines:g} nines "
            f"({target:.6%}): {config.n_instances} instances / "
            f"{config.n_pairs} pairs "
            f"(availability {recommendation.availability:.5%}, "
            f"{recommendation.candidates_evaluated} candidates solved)"
        )
        return 0
    best = recommendation.best_infeasible
    reporter.line(
        f"no shape up to {args.max_instances} instances reaches "
        f"{args.nines:g} nines; best was {best.n_instances}/"
        f"{best.n_pairs} at {recommendation.availability:.5%}"
    )
    return 1


def _cmd_export_dot(args: argparse.Namespace) -> int:
    from repro.core.serialize import model_to_dot
    from repro.models.jsas import (
        build_appserver_model,
        build_hadb_pair_model,
        build_system_model,
    )

    reporter = _reporter(args)
    builders = {
        "system": lambda: build_system_model(),
        "hadb": lambda: build_hadb_pair_model(),
        "appserver": lambda: build_appserver_model(args.instances),
    }
    reporter.line(model_to_dot(builders[args.model]()))
    return 0


def _cmd_longevity(args: argparse.Namespace) -> int:
    from repro.testbed import run_longevity_test

    reporter = _reporter(args)
    result = run_longevity_test(duration_days=args.days, seed=args.seed)
    reporter.line(result.summary())
    estimate = result.as_failure_rate_estimate()
    reporter.line(
        f"Eq.2 AS failure-rate bound at 95%: "
        f"{estimate.upper * 24:.4f}/day "
        f"(exposure {result.as_exposure_hours:.0f} instance-hours)"
    )
    return 0


def _cmd_obs_report(args: argparse.Namespace) -> int:
    reporter = _reporter(args)
    if args.cluster:
        from repro.obs import render_cluster_report

        reporter.line(
            render_cluster_report(args.trace_file, trace_id=args.trace_id)
        )
        return 0
    from repro.obs import load_trace, render_trace_report

    records = load_trace(args.trace_file)
    reporter.line(
        render_trace_report(records, title=f"Trace: {args.trace_file}")
    )
    return 0


def _cmd_monitor(args: argparse.Namespace) -> int:
    from repro.obs.monitor import (
        build_measurement_report,
        render_measurement_report,
        run_probe_campaign,
        write_measurement_report,
    )

    reporter = _reporter(args)
    probes = run_probe_campaign(
        args.url,
        count=args.probes,
        interval_seconds=args.interval_ms / 1000.0,
        deadline_seconds=args.deadline,
        seed=args.seed,
    )
    report = build_measurement_report(
        probes, seed=args.seed, min_failures=args.min_failures
    )
    reporter.line(render_measurement_report(report))
    if args.report:
        write_measurement_report(report, args.report)
        reporter.line(f"measurement report written to {args.report}")
    reporter.record(command="monitor", **report["deterministic"])
    reporter.finish()
    return 0 if report["probe_failures"] == 0 else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import AvailabilityServer, ServiceConfig

    reporter = _reporter(args)
    if args.chaos_stall_rate and not args.chaos:
        reporter.line(
            "error: --chaos-stall-rate requires --chaos "
            "(a production config has no injection surface)"
        )
        return 2
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        cache_size=args.cache_size,
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        queue_limit=args.queue_limit,
        cache_file=args.cache_file,
        chaos=args.chaos,
        chaos_seed=args.chaos_seed,
        chaos_stall_seconds=args.chaos_stall_ms / 1000.0,
        chaos_rates=(
            {"scheduler.stall": args.chaos_stall_rate}
            if args.chaos_stall_rate
            else None
        ),
        worker_processes=args.worker_processes,
        kernel=args.kernel,
    )
    solver_side = (
        f"{config.worker_processes} solver processes"
        if config.worker_processes
        else "in-process solves"
    )
    if args.shards > 1:
        import dataclasses

        from repro.service import ClusterConfig, ClusterServer

        cluster_config = ClusterConfig(
            host=args.host,
            port=args.port,
            n_shards=args.shards,
            # Chaos moves to the router (shard.death); shard-level chaos
            # is a single-server concern.
            shard=dataclasses.replace(config, chaos=False),
            chaos=args.chaos,
            chaos_seed=args.chaos_seed,
        )
        router = ClusterServer(cluster_config)
        host, port = router.address
        reporter.line(
            f"serving availability evaluations on http://{host}:{port} "
            f"({args.shards} consistent-hash shards, each "
            f"{config.workers} workers, {solver_side}, "
            f"cache {config.cache_size}; Ctrl-C to stop)"
        )
        router.serve_forever()
        return 0
    server = AvailabilityServer(config)
    host, port = server.address
    reporter.line(
        f"serving availability evaluations on http://{host}:{port} "
        f"({config.workers} workers, {solver_side}, "
        f"cache {config.cache_size}, "
        f"max batch {config.max_batch}; Ctrl-C to stop)"
    )
    server.serve_forever()
    return 0


def _cmd_failover(args: argparse.Namespace) -> int:
    from repro.chaos.failover import run_failover_drill

    reporter = _reporter(args)
    if args.selfmodel:
        return _cmd_failover_selfmodel(args, reporter)
    report = run_failover_drill(
        n_shards=args.shards,
        requests=args.requests,
        kills=args.kills,
        seed=args.seed,
        report_path=args.report,
        probes=args.probes,
        trace_dir=args.trace_dir,
        measurement_path=args.measurement,
    )
    reporter.line(
        f"failover drill: {report.succeeded}/{report.requests} requests "
        f"succeeded across {report.kills} shard kill(s) "
        f"(seed {report.seed}, {report.n_shards} shards)"
    )
    for kill in report.kill_events:
        reporter.line(
            f"  killed {kill['shard']} before request "
            f"#{kill['request_index']}; respawned and re-admitted"
        )
    reporter.line(
        f"ring re-admitted {report.ring_size_after}/{report.n_shards} "
        f"shards; client retries used: {report.client_retries}"
    )
    if report.measurement is not None:
        m = report.measurement
        reporter.line(
            f"availability measurement: {m['deterministic']['n_probes']} "
            f"probes, {m['probe_failures']} failed "
            f"(probe availability {m['probe_availability']:.4f}); "
            f"{m['deterministic']['shard_episode_count']} shard outage "
            f"episode(s)"
        )
    if args.report:
        reporter.line(f"report written to {args.report}")
    if args.measurement:
        reporter.line(f"measurement report written to {args.measurement}")
    if args.trace_dir:
        reporter.line(
            f"per-process traces in {args.trace_dir} "
            f"(render: repro obs report --cluster {args.trace_dir})"
        )
    reporter.record(command="failover", **report.deterministic_dict())
    reporter.finish()
    return 0 if report.failed == 0 else 1


def _cmd_failover_selfmodel(
    args: argparse.Namespace, reporter: "Reporter"
) -> int:
    """One-shot paper loop: drill -> measure -> fit -> predict -> compare."""
    from repro.selfmodel import render_prediction_report, run_selfmodel_drill

    outcome = run_selfmodel_drill(
        n_shards=args.shards,
        requests=args.requests,
        kills=max(args.kills, 1),
        seed=args.seed,
        probes=args.probes or 8,
        quorum=args.quorum,
        report_path=args.report,
        measurement_path=args.measurement,
        prediction_path=args.prediction,
        trace_dir=args.trace_dir,
    )
    drill = outcome["drill"]
    prediction = outcome["prediction"]
    reporter.line(
        f"failover drill: {drill.succeeded}/{drill.requests} requests "
        f"succeeded across {drill.kills} shard kill(s) "
        f"(seed {drill.seed}, {drill.n_shards} shards)"
    )
    reporter.line(render_prediction_report(prediction))
    for path, label in (
        (args.report, "drill report"),
        (args.measurement, "measurement report"),
        (args.prediction, "prediction report"),
    ):
        if path:
            reporter.line(f"{label} written to {path}")
    reporter.record(
        command="failover-selfmodel", **prediction["deterministic"]
    )
    reporter.finish()
    agreed = prediction["validation"]["verdict"] == "agree"
    return 0 if drill.failed == 0 and agreed else 1


def _cmd_selfmodel(args: argparse.Namespace) -> int:
    """Fit / predict / validate against an existing measurement report."""
    from repro.obs.monitor import load_measurement_report
    from repro.selfmodel import (
        ClusterTopology,
        fit_parameters,
        load_prediction_report,
        predict_availability,
        render_prediction_report,
        validate_prediction,
        write_prediction_report,
    )

    reporter = _reporter(args)
    measurement = load_measurement_report(args.measurement)
    if args.selfmodel_command == "fit":
        fitted = fit_parameters(measurement, confidence=args.confidence)
        reporter.line(fitted.summary())
        if args.out:
            fitted.write(args.out)
            reporter.line(f"fit artifact written to {args.out}")
        reporter.finish(command="selfmodel-fit", **fitted.to_dict())
        return 0

    n_shards = args.shards or int(measurement.get("n_shards") or 0)
    topology = ClusterTopology(
        n_shards=n_shards, quorum=args.quorum, source="measurement"
    )
    if args.selfmodel_command == "predict":
        fitted = fit_parameters(measurement, confidence=args.confidence)
        prediction = predict_availability(
            topology, fitted, measurement=measurement
        )
        prediction["validation"] = validate_prediction(
            prediction, measurement, confidence=args.confidence
        )
        reporter.line(render_prediction_report(prediction))
        if args.out:
            write_prediction_report(prediction, args.out)
            reporter.line(f"prediction report written to {args.out}")
        reporter.record(
            command="selfmodel-predict", **prediction["deterministic"]
        )
        reporter.finish()
        return 0

    # validate: against a stored prediction, or fit+predict on the fly.
    if args.prediction:
        prediction = load_prediction_report(args.prediction)
    else:
        fitted = fit_parameters(measurement, confidence=args.confidence)
        prediction = predict_availability(
            topology, fitted, measurement=measurement
        )
    validation = validate_prediction(
        prediction, measurement, confidence=args.confidence
    )
    measured = validation["measured"]
    reporter.line(
        f"predicted availability interval: "
        f"[{validation['predicted_interval'][0]:.6f}, "
        f"{validation['predicted_interval'][1]:.6f}]"
    )
    reporter.line(
        f"measured probe availability: "
        f"{measured['probe_availability']:.6f} "
        f"[{measured['interval'][0]:.6f}, {measured['interval'][1]:.6f}] "
        f"({measured['n_probes']} probes)"
    )
    if validation["model"]["mttr_seconds"] is not None:
        reporter.line(
            f"MTTR: model {validation['model']['mttr_seconds']:.3f} s vs "
            f"measured {measured['mttr_seconds'] or float('nan'):.3f} s"
        )
    for note in validation["notes"]:
        reporter.line(f"note: {note}")
    reporter.line(f"verdict: {validation['verdict'].upper()}")
    reporter.finish(command="selfmodel-validate", **validation)
    return 0 if validation["verdict"] == "agree" else 1


class _ReporterParser(argparse.ArgumentParser):
    """Argparse parser whose errors go through the obs Reporter.

    Unknown subcommands and bad flags used to bypass the library's
    no-bare-output policy by printing straight to stderr; this routes
    them through :class:`~repro.obs.console.Reporter` like every other
    piece of CLI output (same stream, same discipline), then exits with
    the conventional argparse status 2.
    """

    def error(self, message: str) -> NoReturn:
        from repro.obs.console import Reporter

        reporter = Reporter(stream=sys.stderr)
        reporter.line(self.format_usage().rstrip())
        reporter.line(f"{self.prog}: error: {message}")
        raise SystemExit(2)


def build_parser() -> argparse.ArgumentParser:
    parser = _ReporterParser(
        prog="repro-avail",
        description=(
            "Availability modeling for an application server "
            "(reproduction of Tang et al., DSN 2004)"
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    parser.add_argument(
        "--trace", metavar="FILE", default=None,
        help="record the run as a JSONL trace of spans and events",
    )
    parser.add_argument(
        "--metrics", metavar="FILE", default=None,
        help="write the run's metrics in Prometheus text format",
    )
    parser.add_argument(
        "--kernel", choices=("auto", "numpy", "cext", "numba"),
        default=None,
        help="solve-kernel backend for this run (default: the "
        "REPRO_KERNEL selection, itself defaulting to 'auto')",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("solve", help="solve one configuration")
    _add_config_arguments(p)
    _add_engine_argument(p)
    _add_json_argument(p)
    p.add_argument("--fitted", default=None, metavar="FILE",
                   help="solve the fitted cluster selfmodel from this "
                        "artifact (prediction/fit/measurement/drill "
                        "JSON) instead of a paper configuration")
    p.set_defaults(func=_cmd_solve)

    p = sub.add_parser("table2", help="reproduce Table 2")
    p.set_defaults(func=_cmd_table2)

    p = sub.add_parser("table3", help="reproduce Table 3")
    _add_engine_argument(p)
    p.set_defaults(func=_cmd_table3)

    p = sub.add_parser("sweep", help="Figs. 5/6 Tstart_long sweep")
    _add_config_arguments(p)
    _add_engine_argument(p)
    _add_json_argument(p)
    p.add_argument("--start", type=float, default=None,
                   help="sweep start (default 0.5; with --fitted, "
                        "0.25x the fitted point)")
    p.add_argument("--stop", type=float, default=None,
                   help="sweep stop (default 3.0; with --fitted, "
                        "4x the fitted point)")
    p.add_argument("--points", type=int, default=11)
    p.add_argument("--fitted", default=None, metavar="FILE",
                   help="sweep a parameter of the fitted cluster "
                        "selfmodel loaded from this artifact")
    p.add_argument("--parameter", default=None,
                   help="with --fitted: fitted parameter to sweep "
                        "(default Mu_restore)")
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser("uncertainty", help="Figs. 7/8 uncertainty analysis")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for the batch evaluation; "
                        "results are bit-identical for any value "
                        "(default 1)")
    _add_config_arguments(p)
    _add_engine_argument(p)
    _add_json_argument(p)
    p.add_argument("--samples", type=int, default=1000)
    p.add_argument("--seed", type=int, default=None)
    p.add_argument("--fitted", default=None, metavar="FILE",
                   help="propagate the fitted cluster selfmodel's rate "
                        "intervals instead of the paper's ranges")
    p.set_defaults(func=_cmd_uncertainty)

    p = sub.add_parser("campaign", help="simulated fault-injection campaign")
    p.add_argument("--injections", type=int, default=500)
    p.add_argument("--seed", type=int, default=None)
    p.set_defaults(func=_cmd_campaign)

    p = sub.add_parser("longevity", help="simulated stability test")
    p.add_argument("--days", type=float, default=7.0)
    p.add_argument("--seed", type=int, default=None)
    p.set_defaults(func=_cmd_longevity)

    p = sub.add_parser("risk", help="annual downtime distribution / SLA risk")
    _add_config_arguments(p)
    p.add_argument("--years", type=int, default=20_000)
    p.add_argument("--sla", type=float, default=5.25,
                   help="SLA budget in minutes/year (default: five 9s)")
    p.add_argument("--seed", type=int, default=None)
    p.set_defaults(func=_cmd_risk)

    p = sub.add_parser(
        "assess", help="full availability assessment report"
    )
    _add_config_arguments(p)
    p.add_argument("--samples", type=int, default=500)
    p.add_argument("--years", type=int, default=20_000)
    p.add_argument("--seed", type=int, default=2004)
    p.set_defaults(func=_cmd_assess)

    p = sub.add_parser(
        "mission", help="interval availability over finite missions "
        "(HADB pair model)"
    )
    p.add_argument("--hours", type=float, default=2190.0)
    p.add_argument("--missions", type=int, default=300)
    p.add_argument("--nines", type=float, default=5.0)
    p.add_argument("--seed", type=int, default=None)
    p.set_defaults(func=_cmd_mission)

    p = sub.add_parser("plan", help="smallest shape for a nines target")
    p.add_argument("--nines", type=float, default=5.0)
    p.add_argument("--max-instances", type=int, default=12)
    _add_engine_argument(p)
    p.set_defaults(func=_cmd_plan)

    p = sub.add_parser(
        "serve", help="run the batching availability-evaluation server"
    )
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=8080,
                   help="TCP port; 0 picks a free port (default 8080)")
    p.add_argument("--workers", type=int, default=2,
                   help="batch-dispatch worker threads (default 2)")
    p.add_argument("--cache-size", type=int, default=1024,
                   help="LRU solve-cache entries (default 1024)")
    p.add_argument("--max-batch", type=int, default=32,
                   help="largest coalesced batch (default 32)")
    p.add_argument("--max-wait-ms", type=float, default=5.0,
                   help="coalescing window in milliseconds (default 5)")
    p.add_argument("--queue-limit", type=int, default=256,
                   help="pending-request bound before 429 shedding "
                        "(default 256)")
    p.add_argument("--cache-file", default=None,
                   help="JSONL spill/warm-start file for the solve cache")
    p.add_argument("--chaos", action="store_true",
                   help="enable the fault-injection harness and the "
                        "/chaos/arm and /chaos/status endpoints "
                        "(testing only)")
    p.add_argument("--chaos-seed", type=int, default=None,
                   help="seed for the chaos injector's RNG streams")
    p.add_argument("--chaos-stall-ms", type=float, default=50.0,
                   help="default stall injected at delay-style points "
                        "(default 50 ms)")
    p.add_argument("--chaos-stall-rate", type=float, default=0.0,
                   help="background scheduler.stall firing probability "
                        "in [0, 1]; 1.0 stalls every dispatch — the "
                        "deterministic service-rate knob metastable "
                        "campaigns use (requires --chaos; default 0)")
    p.add_argument("--worker-processes", type=int, default=0,
                   help="pre-forked solver worker processes; 0 solves "
                        "in-process on the dispatch threads (default 0)")
    p.add_argument("--shards", type=int, default=1,
                   help="consistent-hash shard processes behind a "
                        "router; 1 runs a single server (default 1)")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "failover", help="seeded cluster shard-kill drill: every request "
        "must survive failover"
    )
    p.add_argument("--shards", type=int, default=4,
                   help="shard processes in the drill cluster (default 4)")
    p.add_argument("--requests", type=int, default=32,
                   help="client requests in the drill (default 32)")
    p.add_argument("--kills", type=int, default=1,
                   help="seeded shard kills injected (default 1)")
    p.add_argument("--seed", type=int, default=2004,
                   help="drill seed; same seed, same drill (default 2004)")
    p.add_argument("--report", default=None, metavar="FILE",
                   help="write the full drill report as JSON")
    p.add_argument("--probes", type=int, default=0,
                   help="availability probes interleaved with the "
                        "workload; 0 disables measurement (default 0)")
    p.add_argument("--trace-dir", default=None, metavar="DIR",
                   help="collect per-process distributed traces here "
                        "(render with: obs report --cluster DIR)")
    p.add_argument("--measurement", default=None, metavar="FILE",
                   help="write the availability measurement report as "
                        "JSON (requires --probes > 0)")
    p.add_argument("--selfmodel", action="store_true",
                   help="close the paper's loop in one shot: drill, "
                        "measure, fit the cluster model's rates, "
                        "predict availability, and compare against the "
                        "measured probes (forces kills/probes >= 1)")
    p.add_argument("--quorum", type=int, default=1,
                   help="with --selfmodel: minimum serving shards for "
                        "the model's up states (default 1)")
    p.add_argument("--prediction", default=None, metavar="FILE",
                   help="with --selfmodel: write the prediction report "
                        "as JSON")
    _add_json_argument(p)
    p.set_defaults(func=_cmd_failover)

    p = sub.add_parser(
        "monitor", help="probe a running server/cluster and report "
        "measured availability"
    )
    p.add_argument("url", help="base URL of the server or cluster router")
    p.add_argument("--probes", type=int, default=8,
                   help="synthetic solve probes to send (default 8)")
    p.add_argument("--interval-ms", type=float, default=100.0,
                   help="pause between probes (default 100 ms)")
    p.add_argument("--deadline", type=float, default=5.0,
                   help="per-probe deadline in seconds (default 5)")
    p.add_argument("--seed", type=int, default=2004,
                   help="campaign seed: names the probe trace ids "
                        "(default 2004)")
    p.add_argument("--min-failures", type=int, default=2,
                   help="consecutive failed probes that open an outage "
                        "episode (default 2)")
    p.add_argument("--report", default=None, metavar="FILE",
                   help="write the measurement report as JSON")
    _add_json_argument(p)
    p.set_defaults(func=_cmd_monitor)

    p = sub.add_parser(
        "chaos", help="live fault-injection campaign against the server "
        "(paper Section 4 methodology)"
    )
    p.add_argument("--injections", type=int, default=200,
                   help="number of fault injections (default 200)")
    p.add_argument("--seed", type=int, default=2004,
                   help="campaign seed; same seed, same campaign "
                        "(default 2004)")
    p.add_argument("--url", default=None,
                   help="base URL of a server running with --chaos; "
                        "omitted: self-host one for the campaign")
    p.add_argument("--confidence", type=float, default=0.95,
                   help="confidence level for the Eq.1 coverage bound "
                        "(default 0.95)")
    p.add_argument("--report", default=None, metavar="FILE",
                   help="write the full campaign report as JSON")
    p.add_argument("--stall-ms", type=float, default=20.0,
                   help="scheduler.stall injection delay (default 20 ms)")
    _add_json_argument(p)
    p.set_defaults(func=_cmd_chaos)

    p = sub.add_parser(
        "metastable", help="retry-storm regime mapping and live "
        "trigger validation (metastable-failure suite)"
    )
    metastable_sub = p.add_subparsers(
        dest="metastable_command", required=True
    )

    def _add_map_arguments(mp: argparse.ArgumentParser) -> None:
        mp.add_argument("--loads", type=_grid_floats,
                        default="0.3,0.45,0.6,0.75,0.9",
                        help="offered-load grid, comma-separated "
                             "(default 0.3,0.45,0.6,0.75,0.9)")
        mp.add_argument("--budgets", type=_grid_ints, default="1,2,3,4,6",
                        help="retry-budget grid, comma-separated "
                             "(default 1,2,3,4,6)")
        mp.add_argument("--queue-depth", type=int, default=6,
                        help="model queue bound K (default 6)")
        mp.add_argument("--orbit-size", type=int, default=8,
                        help="model retry-orbit bound N (default 8)")
        mp.add_argument("--delta", type=float, default=4.0,
                        help="orbit retry rate relative to mu "
                             "(default 4.0 = (2 / backoff_cap) / mu "
                             "at the default campaign knobs)")
        mp.add_argument("--theta", type=float, default=0.8,
                        help="saturated-queue timeout rate relative to "
                             "mu (default 0.8 = (1 / deadline) / mu)")
        mp.add_argument("--horizon", type=float, default=10.0,
                        help="transient observation horizon in units "
                             "of 1/mu (default 10)")
        mp.add_argument("--threshold", type=float, default=0.3,
                        help="orbit-congestion fraction separating "
                             "storm from calm (default 0.3)")
        mp.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the per-cell "
                             "transient solves (default 1)")

    def _add_campaign_arguments(cp: argparse.ArgumentParser) -> None:
        cp.add_argument("--cells", type=_cells_arg, default=None,
                        metavar="LOAD:BUDGET,...",
                        help="grid cells to trigger live "
                             "(default 0.3:1,0.9:6)")
        cp.add_argument("--seed", type=int, default=2004,
                        help="campaign seed; derives every chaos, "
                             "workload and probe stream (default 2004)")

    p = metastable_sub.add_parser(
        "map", help="sweep the (load x retry-budget) grid and classify "
        "stable / vulnerable / metastable"
    )
    _add_map_arguments(p)
    p.add_argument("--out", default=None, metavar="FILE",
                   help="write the regime-map artifact as JSON")
    _add_json_argument(p)
    p.set_defaults(func=_cmd_metastable, metastable_command="map")

    p = metastable_sub.add_parser(
        "campaign", help="live load-spike trigger campaign against the "
        "real server (burst -> sustain -> release; probes decide "
        "recovered vs pinned)"
    )
    _add_campaign_arguments(p)
    p.add_argument("--stall-ms", type=float, default=80.0,
                   help="chaos scheduler.stall per dispatch — the "
                        "service-rate knob, mu = 1000/stall-ms "
                        "(default 80)")
    p.add_argument("--queue-limit", type=int, default=6,
                   help="server queue bound before 429 shedding "
                        "(default 6)")
    p.add_argument("--threads", type=int, default=24,
                   help="closed-loop workload client threads "
                        "(default 24)")
    p.add_argument("--deadline", type=float, default=0.1,
                   help="per-attempt client deadline in seconds "
                        "(default 0.1)")
    p.add_argument("--backoff-cap-ms", type=float, default=40.0,
                   help="client retry backoff cap (default 40 ms)")
    p.add_argument("--probes", type=int, default=8,
                   help="post-release monitor probes deciding the "
                        "outcome (default 8)")
    p.add_argument("--out", default=None, metavar="FILE",
                   help="write the campaign artifact as JSON")
    _add_json_argument(p)
    p.set_defaults(func=_cmd_metastable, metastable_command="campaign")

    p = metastable_sub.add_parser(
        "validate", help="predicted-vs-observed verdict: join a regime "
        "map to a live campaign (exit 0 iff they agree)"
    )
    _add_map_arguments(p)
    _add_campaign_arguments(p)
    p.add_argument("--map", default=None, metavar="FILE",
                   help="regime-map artifact to validate against "
                        "(default: compute one with the grid flags)")
    p.add_argument("--campaign", default=None, metavar="FILE",
                   help="campaign artifact to validate (default: run "
                        "a live campaign with --cells/--seed)")
    _add_json_argument(p)
    p.set_defaults(func=_cmd_metastable, metastable_command="validate")

    p = sub.add_parser(
        "export-dot", help="print a model as a Graphviz digraph"
    )
    p.add_argument(
        "model", choices=["system", "hadb", "appserver"],
        help="which paper model to export",
    )
    p.add_argument("--instances", type=int, default=2)
    p.set_defaults(func=_cmd_export_dot)

    p = sub.add_parser(
        "selfmodel", help="measurement -> model -> prediction loop over "
        "our own cluster (paper methodology, dogfooded)"
    )
    selfmodel_sub = p.add_subparsers(dest="selfmodel_command", required=True)
    for name, help_text in (
        ("fit", "fit the cluster model's rates from a measurement report"),
        ("predict", "fit, solve, and report predicted availability "
                    "(point + CI-propagated interval)"),
        ("validate", "agreement verdict: predicted interval vs measured "
                     "probe availability"),
    ):
        sp = selfmodel_sub.add_parser(name, help=help_text)
        sp.add_argument("--measurement", required=True, metavar="FILE",
                        help="measurement report JSON (failover "
                             "--measurement or monitor --report output)")
        sp.add_argument("--confidence", type=float, default=0.95,
                        help="confidence level for fitted intervals "
                             "(default 0.95)")
        sp.add_argument("--shards", type=int, default=None,
                        help="override the topology's shard count "
                             "(default: the report's n_shards)")
        sp.add_argument("--quorum", type=int, default=1,
                        help="minimum serving shards for 'up' (default 1)")
        if name != "validate":
            sp.add_argument("--out", default=None, metavar="FILE",
                            help="write the artifact (fit parameters / "
                                 "prediction report) as JSON")
        else:
            sp.add_argument("--prediction", default=None, metavar="FILE",
                            help="validate this stored prediction report "
                                 "instead of fitting on the fly")
        _add_json_argument(sp)
        sp.set_defaults(func=_cmd_selfmodel)

    p = sub.add_parser(
        "obs", help="observability utilities (trace reporting)"
    )
    obs_sub = p.add_subparsers(dest="obs_command", required=True)
    p = obs_sub.add_parser(
        "report", help="render a JSONL trace as a span-tree report"
    )
    p.add_argument("trace_file",
                   help="trace file written by --trace, or (with "
                        "--cluster) a directory of per-process traces")
    p.add_argument("--cluster", action="store_true",
                   help="merge a directory of per-process trace files "
                        "into cross-process span trees")
    p.add_argument("--trace-id", default=None,
                   help="with --cluster: render only this trace id")
    p.set_defaults(func=_cmd_obs_report)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    from repro import obs

    parser = build_parser()
    args = parser.parse_args(argv)
    if args.kernel is not None:
        from repro import kernels
        from repro.exceptions import KernelError

        try:
            kernels.set_backend(args.kernel)
        except KernelError as exc:
            parser.error(str(exc))
    recorder = None
    previous = None
    if args.trace or args.metrics:
        sinks = []
        if args.trace:
            sinks.append(obs.JsonlSink(args.trace))
        recorder = obs.Recorder(sinks=tuple(sinks), keep_records=False)
        previous = obs.set_recorder(recorder)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output was piped into a consumer that closed early (| head).
        # Not an error; exit quietly the way Unix tools do.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    finally:
        if recorder is not None:
            obs.set_recorder(previous)
            if args.metrics:
                obs.write_metrics(recorder.metrics, args.metrics)
            recorder.flush()
            recorder.close()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
