"""Stdlib client for the evaluation server.

A thin ``urllib`` wrapper so tests, the CLI and scripts can talk to a
running server without extra dependencies::

    from repro.service import ServiceClient

    client = ServiceClient("http://127.0.0.1:8080")
    response = client.solve(n_instances=4, n_pairs=4)
    print(response["availability"], response["serving"]["cache"])

Error mapping: 429 raises
:class:`~repro.service.errors.ServiceUnavailable` carrying the server's
``Retry-After`` hint; every other non-2xx status raises
:class:`~repro.service.errors.ServiceClientError` with the decoded error
document attached.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Any, Dict, Mapping, Optional, Sequence

from repro.service.errors import ServiceClientError, ServiceUnavailable


class ServiceClient:
    """HTTP client for one :class:`~repro.service.server.AvailabilityServer`.

    Args:
        base_url: Server root, e.g. ``http://127.0.0.1:8080``.
        timeout: Per-request socket timeout in seconds.
    """

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = float(timeout)

    # Transport -----------------------------------------------------------

    def _request(
        self,
        path: str,
        document: Optional[Mapping[str, Any]] = None,
    ) -> Any:
        url = f"{self.base_url}{path}"
        if document is None:
            request = urllib.request.Request(url, method="GET")
        else:
            request = urllib.request.Request(
                url,
                data=json.dumps(dict(document)).encode("utf-8"),
                headers={"Content-Type": "application/json"},
                method="POST",
            )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as reply:
                body = reply.read().decode("utf-8")
                content_type = reply.headers.get("Content-Type", "")
        except urllib.error.HTTPError as exc:
            raise self._error_from(exc) from None
        if content_type.startswith("application/json"):
            return json.loads(body)
        return body

    @staticmethod
    def _error_from(exc: urllib.error.HTTPError) -> ServiceClientError:
        try:
            payload = json.loads(exc.read().decode("utf-8"))
        except (ValueError, OSError):
            payload = None
        message = (
            payload.get("error")
            if isinstance(payload, dict) and "error" in payload
            else f"HTTP {exc.code}"
        )
        if exc.code == 429:
            try:
                retry_after = float(exc.headers.get("Retry-After") or 1.0)
            except ValueError:
                retry_after = 1.0
            return ServiceUnavailable(
                str(message),
                retry_after_seconds=retry_after,
                payload=payload if isinstance(payload, dict) else None,
            )
        return ServiceClientError(
            str(message),
            status=exc.code,
            payload=payload if isinstance(payload, dict) else None,
        )

    # Endpoints -----------------------------------------------------------

    def solve(
        self,
        parameters: Optional[Mapping[str, float]] = None,
        n_instances: int = 2,
        n_pairs: int = 2,
        method: str = "auto",
        abstraction: str = "mttf",
        **config_fields: Any,
    ) -> Dict[str, Any]:
        """``POST /v1/solve`` — availability of one parameter point."""
        document: Dict[str, Any] = {
            "n_instances": n_instances,
            "n_pairs": n_pairs,
            "method": method,
            "abstraction": abstraction,
            **config_fields,
        }
        if parameters:
            document["parameters"] = dict(parameters)
        return self._request("/v1/solve", document)

    def sweep(
        self,
        parameter: str = "Tstart_long_as",
        grid: Optional[Sequence[float]] = None,
        start: float = 0.5,
        stop: float = 3.0,
        points: int = 11,
        metric: str = "availability",
        parameters: Optional[Mapping[str, float]] = None,
        n_instances: int = 2,
        n_pairs: int = 2,
        **config_fields: Any,
    ) -> Dict[str, Any]:
        """``POST /v1/sweep`` — one metric over a parameter grid."""
        document: Dict[str, Any] = {
            "n_instances": n_instances,
            "n_pairs": n_pairs,
            "parameter": parameter,
            "metric": metric,
            **config_fields,
        }
        if grid is not None:
            document["grid"] = [float(x) for x in grid]
        else:
            document.update(start=start, stop=stop, points=points)
        if parameters:
            document["parameters"] = dict(parameters)
        return self._request("/v1/sweep", document)

    def uncertainty(
        self,
        samples: int = 1000,
        seed: Optional[int] = None,
        metric: str = "yearly_downtime_minutes",
        parameters: Optional[Mapping[str, float]] = None,
        n_instances: int = 2,
        n_pairs: int = 2,
        **config_fields: Any,
    ) -> Dict[str, Any]:
        """``POST /v1/uncertainty`` — the Figs. 7/8 sampling analysis."""
        document: Dict[str, Any] = {
            "n_instances": n_instances,
            "n_pairs": n_pairs,
            "samples": samples,
            "metric": metric,
            **config_fields,
        }
        if seed is not None:
            document["seed"] = seed
        if parameters:
            document["parameters"] = dict(parameters)
        return self._request("/v1/uncertainty", document)

    def healthz(self) -> Dict[str, Any]:
        """``GET /healthz`` — liveness and queue/cache occupancy."""
        return self._request("/healthz")

    def metrics(self) -> str:
        """``GET /metrics`` — Prometheus text exposition."""
        return self._request("/metrics")
