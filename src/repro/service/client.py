"""Stdlib client for the evaluation server.

A thin ``http.client`` wrapper so tests, the CLI and scripts can talk
to a running server (or cluster router) without extra dependencies::

    from repro.service import ServiceClient

    client = ServiceClient("http://127.0.0.1:8080")
    response = client.solve(n_instances=4, n_pairs=4)
    print(response["availability"], response["serving"]["cache"])

Transport: connections are **kept alive and pooled** per client.  The
server speaks HTTP/1.1 with ``Content-Length`` framing, so sequential
requests reuse one socket instead of paying a TCP handshake each time,
and concurrent callers draw from a small free-connection stack (the
pool grows to the concurrency actually used, never beyond
``pool_size`` idle sockets).  ``connections_opened`` counts the sockets
a client ever created — the socket-reuse regression test pins it to 1
for a sequential workload.

Robustness (the client half of the chaos-recovery contract):

* every transport-level failure is wrapped in the typed
  :class:`~repro.service.errors.ServiceConnectionError` /
  :class:`~repro.service.errors.ServiceTimeout` hierarchy instead of
  leaking the raw ``http.client``/``socket`` exception zoo;
* a failed *reused* connection is indistinguishable from a server that
  died mid-request, so it is discarded and the request retried per
  policy — safe because every POST is idempotent (content-addressed
  solves plus the ``Idempotency-Key`` header);
* connection errors are retried up to :class:`RetryPolicy.max_attempts`
  with exponential backoff and **full jitter**
  (``uniform(0, min(cap, base * 2**attempt))`` — the AWS-recommended
  variant that decorrelates synchronized retry storms);
* HTTP statuses are *not* retried by default (a 429 carries deliberate
  load-shedding semantics the caller should see); opt in per status via
  ``RetryPolicy(retry_statuses=(500, 503))``;
* every POST carries an ``Idempotency-Key`` header — the SHA-256 of the
  canonical request content — computed once per logical request, so the
  server can tell a retry from a new request even when the original
  response was lost on the wire.  The cluster router consistent-hashes
  this same digest, so retries re-route to the key's current home
  shard after a failover.

Error mapping: 429 raises
:class:`~repro.service.errors.ServiceUnavailable` carrying the server's
``Retry-After`` hint; every other non-2xx status raises
:class:`~repro.service.errors.ServiceClientError` with the decoded error
document attached.  Any status may carry a usable ``Retry-After``
hint (the cluster router sends one on 503); when a retried error has
one, it floors the jittered backoff, capped at ``backoff_cap``.
"""

from __future__ import annotations

import contextlib
import hashlib
import http.client
import json
import random
import socket
import threading
import time
import urllib.parse
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro import obs
from repro.core.serialize import canonical_json
from repro.obs import tracecontext
from repro.service.errors import (
    ServiceClientError,
    ServiceConnectionError,
    ServiceTimeout,
    ServiceUnavailable,
)


@dataclass(frozen=True)
class RetryPolicy:
    """Retry behavior for one :class:`ServiceClient`.

    Attributes:
        max_attempts: Total tries per logical request (1 = no retries).
        backoff_base: First-retry backoff ceiling in seconds; attempt
            *k* draws its sleep from ``uniform(0, min(backoff_cap,
            backoff_base * 2**k))`` (full jitter).
        backoff_cap: Upper bound on any single backoff sleep.
        retry_statuses: HTTP statuses that are retried like connection
            errors.  Empty by default: a status line means the server is
            alive and answered deliberately.  429 additionally honors
            the server's ``Retry-After`` hint (capped by
            ``backoff_cap``) when listed here.
    """

    max_attempts: int = 3
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    retry_statuses: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_base < 0:
            raise ValueError(f"negative backoff_base {self.backoff_base}")
        if self.backoff_cap < 0:
            raise ValueError(f"negative backoff_cap {self.backoff_cap}")

    def backoff_seconds(self, attempt: int, rng: random.Random) -> float:
        """Full-jitter sleep before retry number ``attempt`` (0-based)."""
        ceiling = min(self.backoff_cap, self.backoff_base * (2 ** attempt))
        return rng.uniform(0.0, ceiling)


#: One retry policy instance shared by clients that don't pass their own.
DEFAULT_RETRY_POLICY = RetryPolicy()


def idempotency_key(path: str, document: Mapping[str, Any]) -> str:
    """Content-addressed key identifying one logical POST request.

    The canonical-JSON digest of ``(path, body)`` — identical across
    retries of the same request, different for any semantic change, and
    stable across processes (same canonical encoding the solve cache
    fingerprints use).  The cluster router uses this digest as its
    consistent-hash routing key, so it doubles as the request's shard
    address.
    """
    return hashlib.sha256(
        canonical_json({"path": path, "body": dict(document)}).encode("ascii")
    ).hexdigest()


class _NoDelayHTTPConnection(http.client.HTTPConnection):
    """``HTTPConnection`` that disables Nagle as soon as it dials.

    Nagle batching interacts with the peer's delayed ACK and can stall
    a keep-alive request/response round trip by ~40 ms — fatal when the
    exchange itself is sub-millisecond (cache hits).  Connecting stays
    lazy (first ``request``) so dial errors still surface inside the
    caller's transport-error handling.
    """

    def connect(self) -> None:
        super().connect()
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)


class HttpConnectionPool:
    """Keep-alive connection pool for one ``http://host:port`` origin.

    A bounded LIFO stack of idle :class:`http.client.HTTPConnection`
    objects.  :meth:`acquire` pops an idle connection (or dials a new
    one — counted in :attr:`opened`), the caller runs exactly one
    request/response exchange on it, then either :meth:`release`\\ s it
    for reuse or :meth:`discard`\\ s it after any transport error, since
    a connection that failed mid-exchange has undefined framing state.

    LIFO keeps the hottest socket busiest, so a sequential caller uses
    exactly one connection and a burst of *k* concurrent callers
    settles on *k*.  The cluster router holds one pool per shard.
    """

    def __init__(
        self, host: str, port: int, timeout: float, max_idle: int = 8
    ) -> None:
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)
        self.max_idle = int(max_idle)
        self.opened = 0
        self._idle: List[http.client.HTTPConnection] = []
        self._lock = threading.Lock()
        self._closed = False

    def acquire(self) -> http.client.HTTPConnection:
        with self._lock:
            if self._idle:
                return self._idle.pop()
            self.opened += 1
        return _NoDelayHTTPConnection(
            self.host, self.port, timeout=self.timeout
        )

    def release(self, conn: http.client.HTTPConnection) -> None:
        with self._lock:
            if not self._closed and len(self._idle) < self.max_idle:
                self._idle.append(conn)
                return
        conn.close()

    def discard(self, conn: http.client.HTTPConnection) -> None:
        conn.close()

    def close(self) -> None:
        with self._lock:
            self._closed = True
            idle, self._idle = self._idle, []
        for conn in idle:
            conn.close()


class ServiceClient:
    """HTTP client for one :class:`~repro.service.server.AvailabilityServer`
    (or one :class:`~repro.service.cluster.ClusterServer` router — the
    API is identical).

    Args:
        base_url: Server root, e.g. ``http://127.0.0.1:8080``.
        timeout: Per-request socket timeout in seconds.
        retry: Retry policy; defaults to :data:`DEFAULT_RETRY_POLICY`
            (3 attempts, connection errors only).
        rng: RNG for backoff jitter (inject a seeded
            ``random.Random`` for deterministic tests).

    Attributes:
        last_attempts: How many attempts the most recent request used
            (1 means it succeeded first try).
        connections_opened: Sockets this client has dialed so far; stays
            at 1 for a sequential workload thanks to keep-alive reuse.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        retry: Optional[RetryPolicy] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        if timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        self.timeout = float(timeout)
        self.retry = retry if retry is not None else DEFAULT_RETRY_POLICY
        self._rng = rng if rng is not None else random.Random()
        parts = urllib.parse.urlsplit(self.base_url)
        if parts.scheme != "http" or not parts.hostname:
            raise ValueError(
                f"base_url must be http://host[:port], got {base_url!r}"
            )
        self._pool = HttpConnectionPool(
            parts.hostname, parts.port or 80, self.timeout
        )
        # Seam for tests: patch to observe/skip backoff sleeps.
        self._sleep = time.sleep
        self.last_attempts = 0

    @property
    def connections_opened(self) -> int:
        return self._pool.opened

    def close(self) -> None:
        """Drop the pooled keep-alive connections."""
        self._pool.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # Transport -----------------------------------------------------------

    def _request(
        self,
        path: str,
        document: Optional[Mapping[str, Any]] = None,
    ) -> Any:
        """One logical request: retries per policy, typed errors out.

        With a live recorder, POSTs are wrapped in a ``client.request``
        span whose ref rides out in the ``Traceparent`` header — under
        an already-active trace scope (the probe loop opens its own,
        deterministic one) the span joins that trace; otherwise a fresh
        random trace is rooted here.
        """
        if document is None or not obs.enabled():
            return self._request_with_retry(path, document)
        root = (
            tracecontext.trace_scope(
                tracecontext.TraceContext(tracecontext.new_trace_id())
            )
            if tracecontext.active() is None
            else contextlib.nullcontext()
        )
        with root:
            with obs.span("client.request", endpoint=path) as current_span:
                result = self._request_with_retry(path, document)
                current_span.set(attempts=self.last_attempts)
                return result

    def _request_with_retry(
        self,
        path: str,
        document: Optional[Mapping[str, Any]] = None,
    ) -> Any:
        key = idempotency_key(path, document) if document is not None else None
        last_error: Optional[Exception] = None
        for attempt in range(self.retry.max_attempts):
            self.last_attempts = attempt + 1
            try:
                return self._request_once(path, document, key)
            except ServiceConnectionError as exc:
                # Transport never delivered a status — always retryable.
                last_error = exc
            except ServiceClientError as exc:
                if exc.status not in self.retry.retry_statuses:
                    raise
                last_error = exc
            if attempt + 1 >= self.retry.max_attempts:
                break
            delay = self.retry.backoff_seconds(attempt, self._rng)
            # Honor a server-provided Retry-After hint on any retried
            # error that carried one (429 shed, router 503, ...) as a
            # floor under the jittered backoff.  Without the floor, a
            # shed response paired with an unusable hint retried after
            # pure jitter — uniform(0, base * 2**attempt), near zero on
            # the first retry — which is exactly the storm amplifier
            # the metastable orbit model predicts.
            hint = getattr(last_error, "retry_after_seconds", None)
            if hint is not None:
                delay = max(delay, min(hint, self.retry.backoff_cap))
            if delay > 0:
                self._sleep(delay)
        assert last_error is not None
        raise last_error

    def _request_once(
        self,
        path: str,
        document: Optional[Mapping[str, Any]],
        key: Optional[str],
    ) -> Any:
        url = f"{self.base_url}{path}"
        if document is None:
            method, body, headers = "GET", None, {}
        else:
            method = "POST"
            body = json.dumps(dict(document)).encode("utf-8")
            headers = {"Content-Type": "application/json"}
            if key is not None:
                headers["Idempotency-Key"] = key
            context = tracecontext.current()
            if context is not None and context.span_ref is not None:
                headers[tracecontext.TRACEPARENT_HEADER] = (
                    tracecontext.format_traceparent(context)
                )
        conn = self._pool.acquire()
        try:
            conn.request(method, path, body=body, headers=headers)
            reply = conn.getresponse()
            payload = reply.read()
        except (socket.timeout, TimeoutError) as exc:
            self._pool.discard(conn)
            raise ServiceTimeout(
                f"request to {url} timed out after {self.timeout}s",
                cause=exc,
            ) from exc
        except (
            ConnectionError, http.client.HTTPException, OSError
        ) as exc:
            # E.g. the server closed the socket mid-response (the
            # ``response.drop`` chaos point, a killed shard) ->
            # RemoteDisconnected / reset.  The connection's framing
            # state is undefined, so it never goes back to the pool.
            self._pool.discard(conn)
            raise ServiceConnectionError(
                f"connection to {url} failed: {exc}", cause=exc
            ) from exc
        if reply.will_close:
            self._pool.discard(conn)
        else:
            self._pool.release(conn)
        content_type = reply.headers.get("Content-Type", "")
        if reply.status >= 400:
            raise self._error_from(reply.status, reply.headers, payload)
        if content_type.startswith("application/json"):
            return json.loads(payload.decode("utf-8"))
        return payload.decode("utf-8")

    @staticmethod
    def _parse_retry_after(value: Optional[str]) -> Optional[float]:
        """A usable Retry-After hint in seconds, else None.

        Absent, malformed, and non-positive headers all count as "no
        hint": a ``Retry-After: 0`` must not license an immediate
        retry against a server that is actively shedding.
        """
        if value is None:
            return None
        try:
            seconds = float(value)
        except ValueError:
            return None
        return seconds if seconds > 0 else None

    @staticmethod
    def _error_from(
        status: int, headers: Mapping[str, str], body: bytes
    ) -> ServiceClientError:
        try:
            payload = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            payload = None
        message = (
            payload.get("error")
            if isinstance(payload, dict) and "error" in payload
            else f"HTTP {status}"
        )
        retry_after = ServiceClient._parse_retry_after(
            headers.get("Retry-After")
        )
        if status == 429:
            # A shed without a usable hint still backs off a full
            # second — the server is overloaded even when it failed to
            # say for how long.
            return ServiceUnavailable(
                str(message),
                retry_after_seconds=(
                    retry_after if retry_after is not None else 1.0
                ),
                payload=payload if isinstance(payload, dict) else None,
            )
        return ServiceClientError(
            str(message),
            status=status,
            payload=payload if isinstance(payload, dict) else None,
            retry_after_seconds=retry_after,
        )

    # Endpoints -----------------------------------------------------------

    def solve(
        self,
        parameters: Optional[Mapping[str, float]] = None,
        n_instances: int = 2,
        n_pairs: int = 2,
        method: str = "auto",
        abstraction: str = "mttf",
        **config_fields: Any,
    ) -> Dict[str, Any]:
        """``POST /v1/solve`` — availability of one parameter point."""
        document: Dict[str, Any] = {
            "n_instances": n_instances,
            "n_pairs": n_pairs,
            "method": method,
            "abstraction": abstraction,
            **config_fields,
        }
        if parameters:
            document["parameters"] = dict(parameters)
        return self._request("/v1/solve", document)

    def sweep(
        self,
        parameter: str = "Tstart_long_as",
        grid: Optional[Sequence[float]] = None,
        start: float = 0.5,
        stop: float = 3.0,
        points: int = 11,
        metric: str = "availability",
        parameters: Optional[Mapping[str, float]] = None,
        n_instances: int = 2,
        n_pairs: int = 2,
        **config_fields: Any,
    ) -> Dict[str, Any]:
        """``POST /v1/sweep`` — one metric over a parameter grid."""
        document: Dict[str, Any] = {
            "n_instances": n_instances,
            "n_pairs": n_pairs,
            "parameter": parameter,
            "metric": metric,
            **config_fields,
        }
        if grid is not None:
            document["grid"] = [float(x) for x in grid]
        else:
            document.update(start=start, stop=stop, points=points)
        if parameters:
            document["parameters"] = dict(parameters)
        return self._request("/v1/sweep", document)

    def uncertainty(
        self,
        samples: int = 1000,
        seed: Optional[int] = None,
        metric: str = "yearly_downtime_minutes",
        parameters: Optional[Mapping[str, float]] = None,
        n_instances: int = 2,
        n_pairs: int = 2,
        **config_fields: Any,
    ) -> Dict[str, Any]:
        """``POST /v1/uncertainty`` — the Figs. 7/8 sampling analysis."""
        document: Dict[str, Any] = {
            "n_instances": n_instances,
            "n_pairs": n_pairs,
            "samples": samples,
            "metric": metric,
            **config_fields,
        }
        if seed is not None:
            document["seed"] = seed
        if parameters:
            document["parameters"] = dict(parameters)
        return self._request("/v1/uncertainty", document)

    def healthz(self) -> Dict[str, Any]:
        """``GET /healthz`` — liveness and queue/cache occupancy.

        Against a cluster router this is the aggregated cluster health
        document (per-shard health under ``"shards"``).
        """
        return self._request("/healthz")

    def metrics(self) -> str:
        """``GET /metrics`` — Prometheus text exposition.

        Against a cluster router, shard metrics carry a ``shard`` label.
        """
        return self._request("/metrics")

    def cluster_status(self) -> Dict[str, Any]:
        """``GET /cluster/status`` — ring membership and shard lifecycle
        (cluster router only)."""
        return self._request("/cluster/status")

    # Chaos surface (server must run with ``ServiceConfig(chaos=True)``) --

    def chaos_arm(
        self,
        point: str,
        count: int = 1,
        delay_seconds: Optional[float] = None,
        tag: Optional[str] = None,
    ) -> Dict[str, Any]:
        """``POST /chaos/arm`` — arm one injection point (chaos only)."""
        document: Dict[str, Any] = {"point": point, "count": count}
        if delay_seconds is not None:
            document["delay_seconds"] = delay_seconds
        if tag is not None:
            document["tag"] = tag
        return self._request("/chaos/arm", document)

    def chaos_status(self) -> Dict[str, Any]:
        """``GET /chaos/status`` — armed/fired tallies (chaos only)."""
        return self._request("/chaos/status")
