"""Exception hierarchy for the evaluation service.

Every service-side failure derives from
:class:`~repro.exceptions.ReproError` via :class:`ServiceError`, so
embedding callers can keep a single ``except ReproError`` clause.  The
HTTP layer maps these onto status codes:

* :class:`BadRequest` -> 400 (malformed or invalid request document);
* :class:`Overloaded` -> 429 with a ``Retry-After`` header (the bounded
  work queue or heavy-endpoint slots are full — load is shed instead of
  queueing unboundedly);
* anything else -> 500.

The client raises the mirror-image :class:`ServiceClientError` /
:class:`ServiceUnavailable` when it receives those statuses back.
"""

from __future__ import annotations

from typing import Optional

from repro.exceptions import ReproError


class ServiceError(ReproError):
    """Base class for every error raised by :mod:`repro.service`."""


class BadRequest(ServiceError):
    """The request document is malformed or references unknown fields."""


class Overloaded(ServiceError):
    """The server's bounded work queue is full; retry after a delay."""

    def __init__(self, message: str, retry_after_seconds: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after_seconds = float(retry_after_seconds)


class SchedulerStopped(ServiceError):
    """A request was submitted to a scheduler that has been shut down."""


class ServiceConnectionError(ServiceError):
    """The transport failed before an HTTP status arrived.

    Wraps every raw ``urllib``/``socket``-level failure the client can
    see — connection refused, connection reset, the server closing the
    socket without a response — so retry logic and tests can match one
    typed error instead of the whole ``OSError`` zoo.  The original
    exception is attached as :attr:`cause` (and chained as
    ``__cause__``).
    """

    def __init__(
        self, message: str, cause: Optional[BaseException] = None
    ) -> None:
        super().__init__(message)
        self.cause = cause


class ServiceTimeout(ServiceConnectionError):
    """The request exceeded the client's configured timeout."""


class ServiceClientError(ServiceError):
    """The server answered with an error status.

    Attributes:
        status: HTTP status code.
        payload: Decoded error document (``{"error": ...}``) when the
            body was JSON, else ``None``.
    """

    def __init__(
        self,
        message: str,
        status: int,
        payload: Optional[dict] = None,
        retry_after_seconds: Optional[float] = None,
    ) -> None:
        super().__init__(message)
        self.status = int(status)
        self.payload = payload
        # A server-provided Retry-After hint, on any status that
        # carried one (the cluster router sends it on 503 too).  None
        # when the header was absent or unusable.
        self.retry_after_seconds = (
            float(retry_after_seconds)
            if retry_after_seconds is not None
            else None
        )


class ServiceUnavailable(ServiceClientError):
    """The server shed this request (429); honor ``retry_after_seconds``."""

    def __init__(
        self,
        message: str,
        retry_after_seconds: float = 1.0,
        payload: Optional[dict] = None,
    ) -> None:
        super().__init__(
            message,
            status=429,
            payload=payload,
            retry_after_seconds=retry_after_seconds,
        )
