"""The availability-evaluation server.

Two layers:

* :class:`AvailabilityService` — the HTTP-agnostic core.  It owns the
  solve cache, the micro-batcher, the heavy-endpoint admission slots
  and the metrics recorder, and maps request documents to response
  documents.  Tests drive it directly; the HTTP layer stays thin.
* :class:`AvailabilityServer` — a stdlib ``ThreadingHTTPServer`` JSON
  API on top: ``POST /v1/solve``, ``POST /v1/sweep``,
  ``POST /v1/uncertainty``, ``GET /healthz``, ``GET /metrics``
  (Prometheus text exposition re-using :mod:`repro.obs.sinks`).

Request lifecycle for ``/v1/solve``:

1. the request is fingerprinted
   (:mod:`repro.service.fingerprint`) — a content hash over the fully
   serialized hierarchy, method/abstraction, and normalized parameters;
2. the solve cache answers hits immediately and single-flights
   concurrent identical requests;
3. misses are submitted to the micro-batcher, which coalesces
   concurrent requests against the same compiled hierarchy into one
   ``solve_batch`` dispatch;
4. when the scheduler's bounded queue (or the heavy-endpoint slots for
   sweep/uncertainty) is full, the request is shed with **429** and a
   ``Retry-After`` header instead of queueing unboundedly.

Results are bit-identical to direct :meth:`HierarchicalModel.solve`
calls — enforced by ``tests/service/test_server.py`` against the fig7
Config 1 oracle.
"""

from __future__ import annotations

import json
import os
import pathlib
import sys
import threading
import time
from collections import OrderedDict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro import chaos, obs
from repro.chaos.injector import INJECTION_POINTS, ChaosInjector
from repro.exceptions import ReproError
from repro.hierarchy import HierarchicalResult
from repro.models.jsas import PAPER_PARAMETERS, JsasConfiguration
from repro.obs import tracecontext
from repro.obs.recorder import Recorder
from repro.obs.sinks import JsonlSink, render_prometheus
from repro.service.cache import SolveCache
from repro.service.config import ServiceConfig
from repro.service.errors import BadRequest, Overloaded, ServiceError
from repro.service.fingerprint import (
    HierarchyFingerprinter,
    parameter_fingerprint,
    solve_fingerprint,
)
from repro.service.scheduler import MicroBatcher

#: Version of the response payload layout.
RESPONSE_SCHEMA = 1


def _valid_cached_payload(payload: Any) -> bool:
    """Read-time integrity check for cached response payloads.

    Every payload the service stores is a dict stamped with
    ``RESPONSE_SCHEMA``; anything else (a corrupted entry injected by
    chaos, or garbage replayed from a damaged spill file) is dropped by
    the cache and recomputed instead of served.
    """
    return isinstance(payload, dict) and payload.get("schema") == RESPONSE_SCHEMA

_CONFIG_KEYS = ("n_instances", "n_pairs", "n_spares", "repair_policy")
_COMMON_KEYS = _CONFIG_KEYS + ("parameters", "method", "abstraction")
_ALLOWED_KEYS = {
    "/v1/solve": frozenset(_COMMON_KEYS),
    "/v1/sweep": frozenset(
        _COMMON_KEYS + ("parameter", "start", "stop", "points", "grid",
                        "metric")
    ),
    "/v1/uncertainty": frozenset(
        _COMMON_KEYS + ("samples", "seed", "metric", "sampler")
    ),
}


def _require_document(document: Any) -> Dict[str, Any]:
    if not isinstance(document, dict):
        raise BadRequest(
            f"request body must be a JSON object, got "
            f"{type(document).__name__}"
        )
    return document


def _check_keys(endpoint: str, document: Mapping[str, Any]) -> None:
    unknown = set(document) - _ALLOWED_KEYS[endpoint]
    if unknown:
        raise BadRequest(
            f"unknown field(s) {sorted(unknown)} for {endpoint}; "
            f"allowed: {sorted(_ALLOWED_KEYS[endpoint])}"
        )


def _as_int(document: Mapping[str, Any], key: str, default: int) -> int:
    value = document.get(key, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise BadRequest(f"field {key!r} must be an integer, got {value!r}")
    return value


def _as_float(document: Mapping[str, Any], key: str, default: float) -> float:
    value = document.get(key, default)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise BadRequest(f"field {key!r} must be a number, got {value!r}")
    return float(value)


class _SolveGroup:
    """One batchable target: a configuration shape + solve semantics."""

    def __init__(
        self,
        config: JsasConfiguration,
        method: str,
        abstraction: str,
        names: Tuple[str, ...],
    ) -> None:
        self.config = config
        self.method = method
        self.abstraction = abstraction
        self.names = names

    def key(self) -> Tuple:
        return (
            self.config.n_instances,
            self.config.n_pairs,
            self.config.n_spares,
            self.config.repair_policy,
            self.method,
            self.abstraction,
            self.names,
        )

    def solve_many(
        self, values_list: Sequence[Mapping[str, float]]
    ) -> Sequence[HierarchicalResult]:
        """Solve every request in one stacked ``solve_batch`` call."""
        k = len(values_list)
        columns = {
            name: np.array([values[name] for values in values_list])
            for name in self.names
        }
        solution = self.config.solve_batch(
            columns,
            n_samples=k,
            method=self.method,
            abstraction=self.abstraction,
        )
        return [solution.result_at(i) for i in range(k)]

    def solve_cores(
        self, values_list: Sequence[Mapping[str, float]]
    ) -> Sequence[Dict[str, Any]]:
        """Solve a batch and return JSON-able result cores.

        The core is the serving-independent part of the solve payload;
        it is what pre-forked workers ship back over the result queue
        (plain dicts of floats, so pickling preserves bits).
        """
        return [_result_core(result) for result in self.solve_many(values_list)]


class AvailabilityService:
    """HTTP-agnostic request handling: documents in, documents out.

    :meth:`handle` returns ``(status, payload, headers)``; the HTTP
    layer only serializes.  Construction installs a live metrics
    recorder globally when observability is off (restored by
    :meth:`close`), so ``/metrics`` always has a registry to expose.
    """

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config or ServiceConfig()
        self.started_at = time.time()
        label = self.config.process_label or "service"
        if (
            self.config.process_label is not None
            or self.config.trace_dir is not None
        ):
            obs.set_process_label(label)
        self._own_recorder: Optional[Recorder] = None
        self._previous_recorder = None
        if obs.enabled():
            self._recorder = obs.get_recorder()
        else:
            sinks: Tuple = ()
            if self.config.trace_dir is not None:
                # One per-process trace file; the pid in the name keeps
                # a respawned shard from overwriting its predecessor's
                # spans (repro.obs.collect merges all of them).
                directory = pathlib.Path(self.config.trace_dir)
                directory.mkdir(parents=True, exist_ok=True)
                sinks = (
                    JsonlSink(
                        directory / f"{label}.{os.getpid()}.jsonl",
                        header_fields={"process": label, "pid": os.getpid()},
                    ),
                )
            self._own_recorder = Recorder(sinks=sinks, keep_records=False)
            self._previous_recorder = obs.set_recorder(self._own_recorder)
            self._recorder = self._own_recorder
        #: Live injector when the config opts into chaos; ``None`` keeps
        #: every injection point a no-op and hides the /chaos endpoints.
        self.injector: Optional[ChaosInjector] = None
        self._previous_injector = None
        if self.config.chaos:
            self.injector = ChaosInjector(
                rates=(
                    dict(self.config.chaos_rates)
                    if self.config.chaos_rates is not None
                    else None
                ),
                seed=self.config.chaos_seed,
                stall_seconds=self.config.chaos_stall_seconds,
            )
            self._previous_injector = chaos.set_injector(self.injector)
        if self.config.kernel is not None:
            from repro import kernels

            kernels.set_backend(self.config.kernel)
        self.cache = SolveCache(
            max_entries=self.config.cache_size,
            spill_path=self.config.cache_file,
            validator=_valid_cached_payload,
        )
        if self.config.cache_file is not None:
            loaded = self.cache.warm_start()
            if loaded:
                obs.event("service.cache.warm_started", entries=loaded)
        #: Pre-forked solver pool; ``None`` solves in-process.  Created
        #: before the micro-batcher so no dispatch threads exist at fork
        #: time.
        self.pool = None
        if self.config.worker_processes > 0:
            from repro.service import prefork

            if prefork.fork_available():
                self.pool = prefork.SolverPool(
                    self.config.worker_processes,
                    kernel=self.config.kernel,
                    trace_dir=self.config.trace_dir,
                    label=label,
                )
            else:  # pragma: no cover - non-fork platform
                obs.event(
                    "service.prefork.unavailable",
                    requested=self.config.worker_processes,
                )
        self.batcher = MicroBatcher(
            max_batch=self.config.max_batch,
            max_wait_ms=self.config.max_wait_ms,
            queue_limit=self.config.queue_limit,
            workers=self.config.workers,
            retry_after_seconds=self.config.retry_after_seconds,
        )
        self._heavy_slots = threading.BoundedSemaphore(
            self.config.heavy_slots
        )
        self._fingerprinter = HierarchyFingerprinter()
        self._base_values = PAPER_PARAMETERS.to_dict()
        # Prime the instruments the handlers update, while still
        # single-threaded, so handler threads only ever look up
        # existing dict entries.
        for name in (
            "service_requests_total", "service_errors_total",
            "service_shed_total", "service_cache_hits_total",
            "service_cache_misses_total", "service_cache_shared_total",
            "service_cache_evictions_total", "service_batches_total",
            "service_coalesced_batches_total",
            "service_coalesced_requests_total",
            "service_cache_invalid_dropped_total",
            "service_faults_injected_total",
            "service_worker_deaths_total", "service_worker_respawns_total",
            "service_responses_dropped_total",
            "service_retries_observed_total",
            "service_prefork_batches_total",
            "service_prefork_worker_deaths_total",
            "service_prefork_worker_respawns_total",
        ):
            obs.counter(name)
        # Bounded memo of recently seen Idempotency-Key headers: a
        # repeated key is a client retry, surfaced in /metrics.
        self._idempotency_seen: "OrderedDict[str, None]" = OrderedDict()
        self._idempotency_lock = threading.Lock()
        obs.gauge("service_queue_depth")
        obs.gauge("service_cache_size")
        obs.histogram("service_batch_size")

    # Request plumbing ----------------------------------------------------

    def _configuration(
        self, document: Mapping[str, Any]
    ) -> JsasConfiguration:
        try:
            return JsasConfiguration(
                n_instances=_as_int(document, "n_instances", 2),
                n_pairs=_as_int(document, "n_pairs", 2),
                n_spares=_as_int(document, "n_spares", 2),
                repair_policy=document.get("repair_policy", "sequential"),
            )
        except ReproError as exc:
            raise BadRequest(str(exc)) from exc

    def _merged_values(
        self, config: JsasConfiguration, document: Mapping[str, Any]
    ) -> Dict[str, float]:
        overrides = document.get("parameters") or {}
        if not isinstance(overrides, dict):
            raise BadRequest(
                f"'parameters' must be an object, got "
                f"{type(overrides).__name__}"
            )
        values = dict(self._base_values)
        values.update(overrides)
        merged = config.merged_values(values)
        return parameter_fingerprint(merged)

    def _method(self, document: Mapping[str, Any]) -> Tuple[str, str]:
        method = document.get("method", "auto")
        abstraction = document.get("abstraction", "mttf")
        if not isinstance(method, str) or not isinstance(abstraction, str):
            raise BadRequest("'method' and 'abstraction' must be strings")
        return method, abstraction

    def _structure(
        self, config: JsasConfiguration
    ) -> str:
        key = (
            config.n_instances, config.n_pairs,
            config.n_spares, config.repair_policy,
        )
        return self._fingerprinter.structure(key, config.hierarchy())

    # Endpoints -----------------------------------------------------------

    def handle(
        self, endpoint: str, document: Any
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        """Dispatch one request; always returns a JSON-able payload."""
        started = time.perf_counter()
        handlers = {
            "/v1/solve": self._handle_solve,
            "/v1/sweep": self._handle_sweep,
            "/v1/uncertainty": self._handle_uncertainty,
            "/healthz": self._handle_healthz,
        }
        if self.injector is not None:
            # The chaos surface only exists when the config opted in; a
            # production server 404s these paths like any other unknown.
            handlers["/chaos/arm"] = self._handle_chaos_arm
            handlers["/chaos/status"] = self._handle_chaos_status
        handler = handlers.get(endpoint)
        if handler is None:
            return 404, {"error": f"unknown endpoint {endpoint!r}"}, {}
        obs.counter("service_requests_total", endpoint=endpoint).inc()
        try:
            with obs.span("service.request", endpoint=endpoint):
                payload = handler(document)
        except Overloaded as exc:
            retry_after = max(1, int(round(exc.retry_after_seconds)))
            return (
                429,
                {"error": str(exc), "retry_after_seconds": retry_after},
                {"Retry-After": str(retry_after)},
            )
        except BadRequest as exc:
            obs.counter("service_errors_total", endpoint=endpoint).inc()
            return 400, {"error": str(exc)}, {}
        except ReproError as exc:
            obs.counter("service_errors_total", endpoint=endpoint).inc()
            return 500, {"error": f"{type(exc).__name__}: {exc}"}, {}
        except Exception as exc:  # noqa: BLE001 - a server answers, not crashes
            obs.counter("service_errors_total", endpoint=endpoint).inc()
            obs.event(
                "service.internal_error",
                endpoint=endpoint,
                error=f"{type(exc).__name__}: {exc}",
            )
            return 500, {"error": f"internal error: {type(exc).__name__}"}, {}
        duration_ms = (time.perf_counter() - started) * 1000.0
        obs.histogram(
            "service_request_seconds", endpoint=endpoint
        ).observe(duration_ms / 1000.0)
        serving = payload.setdefault("serving", {})
        serving["duration_ms"] = duration_ms
        return 200, payload, {}

    def _handle_solve(self, document: Any) -> Dict[str, Any]:
        document = _require_document(document)
        _check_keys("/v1/solve", document)
        config = self._configuration(document)
        method, abstraction = self._method(document)
        values = self._merged_values(config, document)
        fingerprint = self._fingerprinter.request(
            self._structure(config), values,
            method=method, abstraction=abstraction, kind="solve",
        )
        group = _SolveGroup(
            config, method, abstraction, tuple(sorted(values))
        )
        batch_size = 0

        if self.pool is not None:
            pool = self.pool
            spec = group.key()

            def executor(batch: Sequence[Any]) -> Sequence[Any]:
                # Runs on a batcher dispatch thread, where the scheduler
                # has re-activated the batch's lead trace context — read
                # it here, per batch, never bake it into the closure
                # (executors are cached per group key).
                return pool.execute(
                    spec, batch, trace=tracecontext.current()
                )

        else:
            executor = group.solve_cores

        def compute() -> Dict[str, Any]:
            nonlocal batch_size
            ticket = self.batcher.submit(
                group.key(), values, executor=executor
            )
            core = ticket.result()
            batch_size = ticket.batch_size
            return _solve_envelope(
                fingerprint, config, method, abstraction, core
            )

        payload, source = self.cache.get_or_compute(fingerprint, compute)
        response = dict(payload)
        response["serving"] = {"cache": source, "batch_size": batch_size}
        return response

    def _handle_sweep(self, document: Any) -> Dict[str, Any]:
        from repro.models.jsas.configs import (
            CONFIG_METRICS,
            HierarchicalConfigMetric,
        )
        from repro.sensitivity import parametric_sweep

        document = _require_document(document)
        _check_keys("/v1/sweep", document)
        config = self._configuration(document)
        method, abstraction = self._method(document)
        values = self._merged_values(config, document)
        parameter = document.get("parameter", "Tstart_long_as")
        if not isinstance(parameter, str):
            raise BadRequest(f"'parameter' must be a string: {parameter!r}")
        metric = document.get("metric", "availability")
        if metric not in CONFIG_METRICS:
            raise BadRequest(
                f"unknown metric {metric!r}; expected one of "
                f"{CONFIG_METRICS}"
            )
        if "grid" in document:
            grid_field = document["grid"]
            if (
                not isinstance(grid_field, list)
                or not grid_field
                or not all(
                    isinstance(x, (int, float)) and not isinstance(x, bool)
                    for x in grid_field
                )
            ):
                raise BadRequest("'grid' must be a non-empty number array")
            grid = [float(x) for x in grid_field]
        else:
            points = _as_int(document, "points", 11)
            if points < 2:
                raise BadRequest(f"'points' must be >= 2, got {points}")
            grid = [
                float(x)
                for x in np.linspace(
                    _as_float(document, "start", 0.5),
                    _as_float(document, "stop", 3.0),
                    points,
                )
            ]
        fingerprint = solve_fingerprint(
            self._structure(config), values,
            method=method, abstraction=abstraction, kind="sweep",
            parameter=parameter, grid=grid, metric=metric,
        )

        def compute() -> Dict[str, Any]:
            with self._heavy_admission():
                sweep = parametric_sweep(
                    HierarchicalConfigMetric(
                        config, metric=metric,
                        abstraction=abstraction, method=method,
                    ),
                    parameter,
                    grid,
                    # The metric solves the full hierarchy itself; drop
                    # bound/derived names the top model computes.
                    {
                        name: value for name, value in values.items()
                        if name != "N_pair"
                    },
                    metric_name=metric,
                )
                return {
                    "schema": RESPONSE_SCHEMA,
                    "kind": "sweep",
                    "fingerprint": fingerprint,
                    "configuration": _config_payload(config),
                    "method": method,
                    "abstraction": abstraction,
                    "parameter": parameter,
                    "metric": metric,
                    "points": [
                        {parameter: x, metric: y}
                        for x, y in sweep.as_rows()
                    ],
                }

        payload, source = self.cache.get_or_compute(fingerprint, compute)
        response = dict(payload)
        response["serving"] = {"cache": source, "batch_size": len(grid)}
        return response

    def _handle_uncertainty(self, document: Any) -> Dict[str, Any]:
        from repro.models.jsas.configs import (
            CONFIG_METRICS,
            build_uncertainty_analysis,
        )

        document = _require_document(document)
        _check_keys("/v1/uncertainty", document)
        config = self._configuration(document)
        method, abstraction = self._method(document)
        values = self._merged_values(config, document)
        samples = _as_int(document, "samples", 1000)
        if samples < 2:
            raise BadRequest(f"'samples' must be >= 2, got {samples}")
        seed = document.get("seed")
        if seed is not None and (
            isinstance(seed, bool) or not isinstance(seed, int)
        ):
            raise BadRequest(f"'seed' must be an integer, got {seed!r}")
        metric = document.get("metric", "yearly_downtime_minutes")
        if metric not in CONFIG_METRICS:
            raise BadRequest(
                f"unknown metric {metric!r}; expected one of "
                f"{CONFIG_METRICS}"
            )

        def compute() -> Dict[str, Any]:
            with self._heavy_admission():
                analysis = build_uncertainty_analysis(
                    config,
                    values={
                        name: value for name, value in values.items()
                        if name != "N_pair"
                    },
                    metric=metric,
                    abstraction=abstraction,
                    method=method,
                )
                result = analysis.run(
                    n_samples=samples, seed=seed, batch=True
                )
                return {
                    "schema": RESPONSE_SCHEMA,
                    "kind": "uncertainty",
                    "fingerprint": fingerprint,
                    "configuration": _config_payload(config),
                    "method": method,
                    "abstraction": abstraction,
                    "metric": metric,
                    "samples": samples,
                    "seed": seed,
                    "mean": result.mean,
                    "std": result.std,
                    "median": result.percentile(50),
                    "minimum": float(min(result.values)),
                    "maximum": float(max(result.values)),
                    "fraction_below_five_nines": result.fraction_below(5.25),
                }

        if seed is None:
            # Unseeded runs are non-deterministic; caching one would
            # freeze a single draw forever.
            fingerprint = None
            with obs.span("service.uncertainty_uncached"):
                obs.counter("service_cache_misses_total").inc()
                payload = compute()
                source = "uncached"
        else:
            fingerprint = solve_fingerprint(
                self._structure(config), values,
                method=method, abstraction=abstraction, kind="uncertainty",
                samples=samples, seed=seed, metric=metric,
            )
            payload, source = self.cache.get_or_compute(fingerprint, compute)
        response = dict(payload)
        response["serving"] = {"cache": source, "batch_size": samples}
        return response

    def _handle_chaos_arm(self, document: Any) -> Dict[str, Any]:
        """Arm one injection point for a deterministic number of firings.

        Only reachable when the config opted into chaos (the endpoint is
        not registered otherwise).  Body::

            {"point": "solver.exception", "count": 1,
             "delay_seconds": 0.05, "tag": "trial-17"}

        ``count``, ``delay_seconds`` and ``tag`` are optional.
        """
        document = _require_document(document)
        unknown = set(document) - {"point", "count", "delay_seconds", "tag"}
        if unknown:
            raise BadRequest(
                f"unknown field(s) {sorted(unknown)} for /chaos/arm"
            )
        point = document.get("point")
        if point not in INJECTION_POINTS:
            raise BadRequest(
                f"unknown injection point {point!r}; expected one of "
                f"{list(INJECTION_POINTS)}"
            )
        count = _as_int(document, "count", 1)
        if count < 1:
            raise BadRequest(f"'count' must be >= 1, got {count}")
        delay = document.get("delay_seconds")
        if delay is not None:
            delay = _as_float(document, "delay_seconds", 0.0)
            if delay < 0:
                raise BadRequest(f"negative delay_seconds {delay}")
        tag = document.get("tag")
        if tag is not None and not isinstance(tag, str):
            raise BadRequest(f"'tag' must be a string, got {tag!r}")
        assert self.injector is not None  # endpoint only registered then
        self.injector.arm(point, count=count, delay_seconds=delay, tag=tag)
        return {"armed": point, "count": count, **self.injector.status()}

    def _handle_chaos_status(self, document: Any) -> Dict[str, Any]:
        """Armed/fired tallies for every injection point (chaos only)."""
        assert self.injector is not None
        return self.injector.status()

    def note_idempotency(self, key: str) -> bool:
        """Record an ``Idempotency-Key``; True when it was seen before.

        A repeated key means the client retried a request it may already
        have been served (e.g. the response was dropped on the wire), so
        the repeat is surfaced in ``service_retries_observed_total``.
        The memo is bounded — this is an observability aid, not an
        exactly-once ledger; true dedup comes from the content-addressed
        solve cache, which makes retried solves idempotent anyway.
        """
        with self._idempotency_lock:
            seen = key in self._idempotency_seen
            if seen:
                self._idempotency_seen.move_to_end(key)
            else:
                self._idempotency_seen[key] = None
                while len(self._idempotency_seen) > 4096:
                    self._idempotency_seen.popitem(last=False)
        if seen:
            obs.counter("service_retries_observed_total").inc()
        return seen

    def _handle_healthz(self, document: Any) -> Dict[str, Any]:
        from repro import kernels

        hits = self._recorder.metrics.counter(
            "service_cache_hits_total"
        ).value
        misses = self._recorder.metrics.counter(
            "service_cache_misses_total"
        ).value
        lookups = hits + misses
        return {
            "status": "ok",
            "uptime_seconds": time.time() - self.started_at,
            "queue_depth": self.batcher.queue_depth,
            "queue_limit": self.config.queue_limit,
            "cache_entries": len(self.cache),
            "cache_size": self.config.cache_size,
            "cache_hits": hits,
            "cache_misses": misses,
            "cache_hit_rate": (hits / lookups) if lookups else 0.0,
            "workers": self.config.workers,
            "max_batch": self.config.max_batch,
            "max_wait_ms": self.config.max_wait_ms,
            "worker_processes": self.config.worker_processes,
            "solver_workers_alive": (
                self.pool.alive_count() if self.pool is not None else 0
            ),
            "kernel_backend": kernels.backend_name(),
        }

    def metrics_text(self) -> str:
        """Prometheus text exposition of the live metrics registry."""
        return render_prometheus(self._recorder.metrics)

    def _heavy_admission(self):
        """Bounded admission for whole-batch endpoints (context manager)."""
        service = self

        class _Slot:
            def __enter__(self) -> None:
                if not service._heavy_slots.acquire(blocking=False):
                    obs.counter("service_shed_total").inc()
                    raise Overloaded(
                        f"all {service.config.heavy_slots} heavy-query "
                        "slots are busy",
                        retry_after_seconds=(
                            service.config.retry_after_seconds
                        ),
                    )

            def __exit__(self, exc_type, exc, tb) -> None:
                service._heavy_slots.release()

        return _Slot()

    def close(self) -> None:
        """Stop the scheduler, restore the global recorder and injector."""
        self.batcher.shutdown()
        if self.pool is not None:
            self.pool.close()
            self.pool = None
        if self.injector is not None:
            chaos.set_injector(self._previous_injector)
            self.injector = None
        if self._own_recorder is not None:
            obs.set_recorder(self._previous_recorder)
            self._own_recorder.close()
            self._own_recorder = None


def _config_payload(config: JsasConfiguration) -> Dict[str, Any]:
    return {
        "n_instances": config.n_instances,
        "n_pairs": config.n_pairs,
        "n_spares": config.n_spares,
        "repair_policy": config.repair_policy,
    }


def _result_core(result: HierarchicalResult) -> Dict[str, Any]:
    """The result-dependent half of a solve payload (JSON-able floats)."""
    system = result.system
    return {
        "availability": system.availability,
        "yearly_downtime_minutes": system.yearly_downtime_minutes,
        "mtbf_hours": system.mtbf_hours,
        "mttr_hours": system.mttr_hours,
        "failure_rate": system.failure_rate,
        "recovery_rate": system.recovery_rate,
        "state_probabilities": dict(system.state_probabilities),
        "downtime_by_state": dict(system.downtime_by_state),
        "bound_parameters": dict(result.bound_parameters),
        "submodels": {
            name: {
                "failure_rate": report.interface.failure_rate,
                "recovery_rate": report.interface.recovery_rate,
                "availability": report.interface.availability,
                "downtime_minutes": report.downtime_minutes,
                "downtime_fraction": report.downtime_fraction,
            }
            for name, report in result.submodels.items()
        },
    }


def _solve_envelope(
    fingerprint: str,
    config: JsasConfiguration,
    method: str,
    abstraction: str,
    core: Mapping[str, Any],
) -> Dict[str, Any]:
    """The cacheable (JSON-able, serving-independent) solve response."""
    return {
        "schema": RESPONSE_SCHEMA,
        "kind": "solve",
        "fingerprint": fingerprint,
        "configuration": _config_payload(config),
        "method": method,
        "abstraction": abstraction,
        **core,
    }


def _solve_payload(
    fingerprint: str,
    config: JsasConfiguration,
    method: str,
    abstraction: str,
    result: HierarchicalResult,
) -> Dict[str, Any]:
    """Full solve response straight from a :class:`HierarchicalResult`."""
    return _solve_envelope(
        fingerprint, config, method, abstraction, _result_core(result)
    )


class _Handler(BaseHTTPRequestHandler):
    """Thin JSON shim over :class:`AvailabilityService`."""

    server_version = "repro-avail-service/1"
    protocol_version = "HTTP/1.1"
    # Keep-alive clients pipeline request/response exchanges on one
    # socket; without TCP_NODELAY the kernel holds the response body
    # segment until the peer's delayed ACK (~40 ms) arrives, which
    # would dominate sub-millisecond cache-hit latencies.
    disable_nagle_algorithm = True

    @property
    def service(self) -> AvailabilityService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:
        # Route access logs through obs instead of bare stderr writes.
        obs.event("service.http", message=format % args)

    def _send_json(
        self,
        status: int,
        payload: Dict[str, Any],
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        try:
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            for name, value in (headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            # The client abandoned the socket — typically a deadline
            # timeout on a request that was still queued (the batcher
            # cannot cancel it, so the orphan was processed anyway).
            # Nobody is listening; drop the response without letting
            # socketserver splat a traceback per zombie request.
            obs.counter("service_responses_orphaned_total").inc()
            self.close_connection = True

    def do_GET(self) -> None:
        if self.path == "/metrics":
            body = self.service.metrics_text().encode("utf-8")
            self.send_response(200)
            self.send_header(
                "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
            )
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
            return
        if self.path in ("/healthz", "/chaos/status"):
            status, payload, headers = self.service.handle(self.path, None)
            self._send_json(status, payload, headers)
            return
        self._send_json(404, {"error": f"unknown endpoint {self.path!r}"})

    def do_POST(self) -> None:
        length = int(self.headers.get("Content-Length") or 0)
        if length > self.service.config.max_body_bytes:
            # Drain the oversized body in bounded chunks before
            # answering: responding mid-upload makes the client see a
            # reset instead of the 413, and leaving bytes unread would
            # poison connection reuse.
            remaining = length
            while remaining > 0:
                chunk = self.rfile.read(min(remaining, 65536))
                if not chunk:
                    break
                remaining -= len(chunk)
            self._send_json(
                413,
                {"error": f"request body exceeds "
                          f"{self.service.config.max_body_bytes} bytes"},
            )
            return
        raw = self.rfile.read(length) if length else b""
        try:
            document = json.loads(raw.decode("utf-8")) if raw else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._send_json(400, {"error": f"invalid JSON body: {exc}"})
            return
        idempotency_key = self.headers.get("Idempotency-Key")
        if idempotency_key:
            self.service.note_idempotency(idempotency_key)
        trace_context = tracecontext.parse_traceparent(
            self.headers.get(tracecontext.TRACEPARENT_HEADER)
        )
        with tracecontext.trace_scope(trace_context):
            status, payload, headers = self.service.handle(
                self.path, document
            )
        if (
            self.path.startswith("/v1/")
            and chaos.enabled()
            and chaos.fire(chaos.POINT_RESPONSE_DROP) is not None
        ):
            # The request WAS processed (any solve is already cached);
            # only the response vanishes.  Closing without writing makes
            # the client see a connection error — its retry must succeed
            # from the cache, which is the recovery the campaign scores.
            obs.counter("service_responses_dropped_total").inc()
            obs.event("chaos.response_drop", path=self.path, status=status)
            self.close_connection = True
            return
        self._send_json(status, payload, headers)


class _ThreadingServer(ThreadingHTTPServer):
    daemon_threads = True
    # The default listen backlog (5) drops connections under bursts of
    # short-lived clients; load shedding belongs to the work queue, not
    # the accept queue.
    request_queue_size = 128

    def handle_error(self, request: Any, client_address: Any) -> None:
        # A client that hit its deadline tears the socket down while the
        # handler thread is still parked in readline(); stdlib
        # socketserver would print a full traceback per abandoned
        # keep-alive connection.  Count it instead — under deliberate
        # overload (chaos campaigns) these arrive by the hundreds.
        exc = sys.exc_info()[1]
        if isinstance(exc, (BrokenPipeError, ConnectionResetError)):
            obs.counter("service_connections_reset_total").inc()
            return
        super().handle_error(request, client_address)


class AvailabilityServer:
    """Socket lifecycle around one :class:`AvailabilityService`.

    Usage (embedded / tests)::

        with AvailabilityServer(ServiceConfig(port=0)) as server:
            client = ServiceClient(server.url)
            client.solve()

    or blocking (the ``repro-avail serve`` subcommand)::

        AvailabilityServer(config).serve_forever()
    """

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config or ServiceConfig()
        self.service = AvailabilityService(self.config)
        try:
            self._httpd = _ThreadingServer(
                (self.config.host, self.config.port), _Handler
            )
        except OSError:
            self.service.close()
            raise
        self._httpd.service = self.service  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "AvailabilityServer":
        """Serve on a background thread (returns immediately)."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="repro-service-http",
                daemon=True,
            )
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted."""
        try:
            self._httpd.serve_forever()
        except KeyboardInterrupt:  # pragma: no cover - interactive
            pass
        finally:
            self.close()

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.service.close()

    def __enter__(self) -> "AvailabilityServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
