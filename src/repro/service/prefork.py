"""Pre-forked solver workers for the availability service.

The micro-batcher's dispatch threads are enough while solves are cheap,
but one Python process tops out at one core of linear algebra.  With
``ServiceConfig(worker_processes=N)`` the service forks ``N`` solver
processes at boot; every coalesced ``/v1/solve`` batch is dispatched
round-robin over a *per-worker duplex pipe*, solved there, and the
JSON-able *result cores* travel back over the same pipe.  Compiled
models and kernel selections live in each worker (inherited from the
parent by fork, then warmed per group on first use).

Two design rules make the pool robust to workers dying at arbitrary
instants (the recovery test SIGKILLs them mid-flight):

* **Lock-free transport.**  Each worker talks over its own
  :func:`multiprocessing.Pipe`, so every pipe direction has exactly one
  writer and one reader and no cross-process lock exists to poison.
  (``multiprocessing.Queue`` is unusable here — a worker killed at the
  wrong instant dies holding the queue's shared read or write
  semaphore and every sibling blocks forever.)
* **Single-owner I/O.**  One manager thread owns every pipe end:
  it dispatches jobs, collects results via
  :func:`multiprocessing.connection.wait`, detects EOF from dead
  workers, respawns them and resubmits their in-flight jobs.  Request
  threads never touch a pipe — :meth:`SolverPool.execute` enqueues the
  job, pokes the manager through a self-pipe, and waits on an event —
  so there is no close-during-wait or fd-reuse race between threads.

Properties the tests pin down:

* **Bit parity** — workers run exactly the in-process
  ``_SolveGroup.solve_cores`` code and pickled ``float`` round-trips
  preserve bits, so payloads are identical to ``worker_processes=0``.
* **Crash recovery** — solves are idempotent and content-addressed, so
  when a worker dies the pool respawns it and resubmits its pending
  jobs (bounded attempts), and the request completes instead of
  hanging.
* **Isolation** — a worker that OOMs or segfaults takes its process
  down, not the server.

Error transport is by exception *name*: workers send
``(type_name, message)`` and the parent re-raises the matching class
from :mod:`repro.exceptions` / :mod:`repro.service.errors`, so the
HTTP error mapping in ``AvailabilityService.handle`` behaves the same
with and without the pool.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import threading
from collections import deque
from multiprocessing import connection
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.service.errors import ServiceError

#: Give up on a job after this many worker deaths mid-solve.
MAX_ATTEMPTS = 3

_WAIT_SECONDS = 0.25


def fork_available() -> bool:
    try:
        return "fork" in multiprocessing.get_all_start_methods()
    except (ValueError, OSError):  # pragma: no cover - platform
        return False


def _group_from_spec(spec: Tuple) -> Any:
    """Rebuild a ``_SolveGroup`` from its ``key()`` tuple (worker side)."""
    # Imported lazily so worker processes pay the import once, after
    # fork, and the module graph stays acyclic (server imports prefork).
    from repro.models.jsas import JsasConfiguration
    from repro.service.server import _SolveGroup

    n_instances, n_pairs, n_spares, repair_policy = spec[:4]
    method, abstraction, names = spec[4:]
    config = JsasConfiguration(
        n_instances=n_instances,
        n_pairs=n_pairs,
        n_spares=n_spares,
        repair_policy=repair_policy,
    )
    return _SolveGroup(config, method, abstraction, tuple(names))


def _worker_main(
    conn: Any,
    kernel: Optional[str],
    trace_dir: Optional[str] = None,
    label: str = "service",
    index: int = 0,
    parent_pid: Optional[int] = None,
) -> None:
    from repro.obs import tracecontext
    from repro.obs.recorder import NULL_RECORDER, Recorder

    # The fork inherited the parent's recorder — including any open
    # sink fd, which two processes must never share.  Reset FIRST, then
    # (when tracing) install this worker's own per-process sink.
    obs.set_recorder(NULL_RECORDER)
    worker_label = f"{label}.worker{index}"
    if trace_dir is not None:
        import pathlib

        from repro.obs.sinks import JsonlSink

        obs.set_process_label(worker_label)
        directory = pathlib.Path(trace_dir)
        directory.mkdir(parents=True, exist_ok=True)
        sink = JsonlSink(
            directory / f"{worker_label}.{os.getpid()}.jsonl",
            header_fields={"process": worker_label, "pid": os.getpid()},
        )
        obs.set_recorder(Recorder(sinks=(sink,), keep_records=False))
    if kernel is not None:
        from repro import kernels

        try:
            kernels.set_backend(kernel)
        except Exception:  # noqa: BLE001 - parent already validated
            pass
    groups: Dict[Tuple, Any] = {}
    if parent_pid is None:  # pre-fork callers always pass it
        parent_pid = os.getppid()
    while True:
        try:
            # Pipe EOF alone cannot be trusted for orphan detection: a
            # sibling fork may hold an inherited copy of the parent-side
            # fd, and a SIGKILLed parent (chaos ``shard.death``) closes
            # nothing.  Poll with a timeout and exit once re-parented.
            # parent_pid comes from the parent *before* the fork — a
            # getppid() taken here would read 1 if the parent died
            # during the fork window, disabling the check forever.
            if not conn.poll(1.0):
                if os.getppid() != parent_pid:
                    return
                continue
            task = conn.recv()
        except (EOFError, OSError):  # parent went away
            return
        if task is None:
            return
        job_id, spec, values_list, trace = task
        try:
            group = groups.get(spec)
            if group is None:
                group = groups[spec] = _group_from_spec(spec)
            with tracecontext.trace_scope(trace):
                with obs.span(
                    "worker.solve",
                    index=index,
                    batch_size=len(values_list),
                ):
                    cores = group.solve_cores(values_list)
            conn.send((job_id, True, cores))
        except BaseException as exc:  # noqa: BLE001 - forwarded by name
            try:
                conn.send((job_id, False, (type(exc).__name__, str(exc))))
            except (BrokenPipeError, OSError):  # pragma: no cover
                return


def _rebuild_exception(type_name: str, message: str) -> BaseException:
    import builtins

    from repro import exceptions as repro_exceptions
    from repro.service import errors as service_errors

    for module in (service_errors, repro_exceptions, builtins):
        cls = getattr(module, type_name, None)
        if (
            isinstance(cls, type)
            and issubclass(cls, BaseException)
            and cls is not BaseException
        ):
            try:
                return cls(message)
            except TypeError:  # pragma: no cover - odd signatures
                break
    return ServiceError(f"{type_name}: {message}")


class _PendingJob:
    __slots__ = (
        "spec", "values_list", "event", "ok", "payload", "attempts",
        "worker_index", "trace",
    )

    def __init__(
        self,
        spec: Tuple,
        values_list: Sequence[Any],
        trace: Any = None,
    ) -> None:
        self.spec = spec
        self.values_list = values_list
        self.event = threading.Event()
        self.ok = False
        self.payload: Any = None
        self.attempts = 0
        self.worker_index = -1
        self.trace = trace


class _Worker:
    """One solver process plus the parent end of its duplex pipe."""

    __slots__ = ("process", "conn")

    def __init__(self, process: Any, conn: Any) -> None:
        self.process = process
        self.conn = conn


class SolverPool:
    """N forked solver processes, one lock-free duplex pipe each."""

    def __init__(
        self,
        n_workers: int,
        kernel: Optional[str] = None,
        trace_dir: Optional[str] = None,
        label: str = "service",
    ) -> None:
        if n_workers < 1:
            raise ServiceError(
                f"solver pool needs at least one worker, got {n_workers}"
            )
        if not fork_available():
            raise ServiceError(
                "pre-forked solver workers need the 'fork' start method"
            )
        self.n_workers = n_workers
        self.kernel = kernel
        self.trace_dir = trace_dir
        self.label = label
        self._context = multiprocessing.get_context("fork")
        self._lock = threading.Lock()
        self._pending: Dict[int, _PendingJob] = {}
        self._inbox: Deque[int] = deque()
        self._job_ids = itertools.count()
        self._round_robin = itertools.count()
        self._closed = False
        self._wake_r, self._wake_w = os.pipe()
        # Workers are spawned by the manager thread itself, so every
        # pipe end is born and dies on one thread.
        self._workers: List[_Worker] = []
        self._ready = threading.Event()
        self._manager = threading.Thread(
            target=self._manage, name="repro-solver-pool-manager",
            daemon=True,
        )
        self._manager.start()
        self._ready.wait(30.0)
        obs.event(
            "service.prefork.started",
            n_workers=n_workers,
            kernel=kernel or "inherit",
        )

    # Worker lifecycle (manager thread only) ------------------------------

    def _spawn(self, index: int) -> _Worker:
        parent_conn, child_conn = self._context.Pipe(duplex=True)
        process = self._context.Process(
            target=_worker_main,
            args=(
                child_conn, self.kernel, self.trace_dir, self.label,
                index, os.getpid(),
            ),
            daemon=True,
        )
        process.start()
        # The parent keeps only its end; the child's end must be closed
        # here so worker death surfaces as EOF on parent_conn.
        child_conn.close()
        return _Worker(process, parent_conn)

    def alive_count(self) -> int:
        return sum(1 for w in self._workers if w.process.is_alive())

    # Manager loop --------------------------------------------------------

    def _manage(self) -> None:
        self._workers.extend(
            self._spawn(index) for index in range(self.n_workers)
        )
        self._ready.set()
        while True:
            if self._closed:
                self._shutdown_workers()
                return
            try:
                ready = connection.wait(
                    [w.conn for w in self._workers] + [self._wake_r],
                    timeout=_WAIT_SECONDS,
                )
            except OSError:  # pragma: no cover - wake pipe closed
                continue
            for item in ready:
                if item == self._wake_r:
                    os.read(self._wake_r, 4096)
                    continue
                try:
                    entry = item.recv()
                except (EOFError, OSError):
                    continue  # dead worker; reaped below
                self._deliver(entry)
            self._reap_and_respawn()
            self._drain_inbox()

    def _deliver(self, entry: Tuple[int, bool, Any]) -> None:
        job_id, ok, payload = entry
        with self._lock:
            job = self._pending.get(job_id)
            if job is None or job.event.is_set():
                return  # duplicate completion after a resubmit
            job.ok = ok
            job.payload = payload
            job.event.set()

    def _reap_and_respawn(self) -> None:
        """Replace dead workers and requeue their unfinished jobs.

        Solves are pure functions of their request, so re-executing one
        on another worker is wasted work at worst, never a wrong
        answer; a duplicate completion (worker answered, then died
        before we noticed) is ignored by :meth:`_deliver`.
        """
        dead = [
            i for i, w in enumerate(self._workers)
            if not w.process.is_alive()
        ]
        if not dead:
            return
        for index in dead:
            obs.counter("service_prefork_worker_deaths_total").inc()
            try:
                self._workers[index].conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
            self._workers[index].process.join(0.1)
            self._workers[index] = self._spawn(index)
            obs.counter("service_prefork_worker_respawns_total").inc()
        dead_set = set(dead)
        with self._lock:
            for job_id, job in self._pending.items():
                if job.event.is_set() or job.worker_index not in dead_set:
                    continue
                if job.attempts >= MAX_ATTEMPTS:
                    job.ok = False
                    job.payload = (
                        "ServiceError",
                        f"solve failed after {MAX_ATTEMPTS} worker deaths",
                    )
                    job.event.set()
                else:
                    job.worker_index = -1
                    self._inbox.append(job_id)

    def _drain_inbox(self) -> None:
        while True:
            with self._lock:
                if not self._inbox:
                    return
                job_id = self._inbox.popleft()
                job = self._pending.get(job_id)
            if job is None or job.event.is_set():
                continue
            index = 0
            for _ in range(len(self._workers)):
                index = next(self._round_robin) % len(self._workers)
                if self._workers[index].process.is_alive():
                    break
            job.worker_index = index
            job.attempts += 1
            try:
                self._workers[index].conn.send(
                    (job_id, job.spec, job.values_list, job.trace)
                )
            except (BrokenPipeError, OSError):
                # Died between the liveness check and the send; the
                # next loop iteration reaps it and requeues this job.
                pass

    def _shutdown_workers(self) -> None:
        for worker in self._workers:
            try:
                worker.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for worker in self._workers:
            worker.process.join(5.0)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(2.0)
            try:
                worker.conn.close()
            except OSError:  # pragma: no cover - already closed
                pass

    # Public API (any thread) ---------------------------------------------

    def terminate(self) -> None:
        """SIGKILL every worker process immediately.

        Signal-handler safe: no locks, no joins, no pipe traffic —
        shard processes call this from their SIGTERM handler right
        before ``os._exit`` so a terminated shard never leaves solver
        processes behind.  :meth:`close` remains the graceful path.
        """
        for worker in list(self._workers):
            try:
                worker.process.kill()
            except Exception:  # noqa: BLE001 - already dead / never started
                pass

    def _wake(self) -> None:
        try:
            os.write(self._wake_w, b"x")
        except (BlockingIOError, OSError):  # pragma: no cover - full pipe
            pass

    def execute(
        self,
        spec: Tuple,
        values_list: Sequence[Any],
        trace: Any = None,
    ) -> Sequence[Dict[str, Any]]:
        """Solve one batch in a worker; blocks until done.

        Matches the micro-batcher's ``BatchExecutor`` protocol when
        curried with a group key: ``lambda batch: pool.execute(key,
        batch)``.  ``trace`` (a picklable
        :class:`~repro.obs.tracecontext.TraceContext` or ``None``) rides
        the pipe so the worker's ``worker.solve`` span joins the
        request's distributed trace.
        """
        if self._closed:
            raise ServiceError("solver pool is closed")
        job = _PendingJob(spec, list(values_list), trace=trace)
        with self._lock:
            job_id = next(self._job_ids)
            self._pending[job_id] = job
            self._inbox.append(job_id)
        obs.counter("service_prefork_batches_total").inc()
        self._wake()
        try:
            job.event.wait()
        finally:
            with self._lock:
                self._pending.pop(job_id, None)
        if not job.ok:
            type_name, message = job.payload
            raise _rebuild_exception(type_name, message)
        return job.payload

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._inbox.clear()
            for job in self._pending.values():
                if not job.event.is_set():
                    job.ok = False
                    job.payload = ("ServiceError", "solver pool closed")
                    job.event.set()
        self._wake()
        self._manager.join(15.0)
        try:
            os.close(self._wake_r)
            os.close(self._wake_w)
        except OSError:  # pragma: no cover - double close
            pass
        obs.event("service.prefork.stopped", n_workers=self.n_workers)
