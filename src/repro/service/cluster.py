"""Consistent-hash sharded service cluster: router, shards, failover.

One :class:`ClusterServer` process fronts *N* shard processes, each a
full :class:`~repro.service.server.AvailabilityServer` (micro-batcher,
content-addressed solve cache, optional pre-forked solver pool).  The
router consistent-hashes every request's ``Idempotency-Key`` — the
SHA-256 the client already computes over ``(path, body)`` — onto the
shard ring, so repeated and retried requests land on the *same* shard
and the solve caches are shard-local partitions instead of N duplicated
copies.  Aggregate cache capacity therefore scales with the shard
count, which is where the cluster's throughput win comes from on a
machine whose CPU is already saturated by one solver.

Failure handling:

* a **health monitor** thread polls shard liveness every
  ``health_interval_seconds``; a dead shard is evicted from the ring,
  respawned, and re-admitted once its replacement answers ``/healthz``;
* the **forward path** treats a connection error as evidence, not
  proof: if the shard process is alive the router flushes that shard's
  keep-alive pool (a stale socket) and retries it once; if it is dead
  the router evicts it, kicks off the respawn, and retries the next
  distinct node clockwise — exactly the shard that inherits the key
  after eviction, so the failover request warms the entry's new home;
* a **timeout** is not failover (slow is not dead): the router answers
  504 and leaves membership alone;
* an **empty ring** (every shard mid-respawn) answers 503 with
  ``Retry-After`` so the client's normal retry policy carries it over
  the gap.

Requests are idempotent end to end (content-addressed solves plus the
``Idempotency-Key`` header), which is what makes the router's retries
safe.

Observability: ``GET /healthz`` aggregates every shard's health
document under the router's own; ``GET /metrics`` concatenates the
shards' Prometheus expositions with an injected ``shard="shard-N"``
label (:func:`repro.obs.sinks.relabel_prometheus`) plus the router's
own counters labeled ``shard="router"``; ``GET /cluster/status``
reports ring membership and shard lifecycle (pid, port, generation,
respawn count).

Chaos: with ``ClusterConfig(chaos=True)`` the router installs its own
:class:`~repro.chaos.injector.ChaosInjector` and exposes
``/chaos/arm`` + ``/chaos/status`` for the *cluster-level* point
``shard.death`` — when armed, the router SIGKILLs the tagged shard
right before forwarding a request, which must then survive via
failover (the contract :mod:`repro.chaos.failover` drills).
"""

from __future__ import annotations

import dataclasses
import http.client
import json
import os
import signal
import socket
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Mapping, Optional, Tuple

from repro import chaos, obs
from repro.chaos.injector import (
    CLUSTER_INJECTION_POINTS,
    NULL_INJECTOR,
    POINT_SHARD_DEATH,
    ChaosInjector,
)
from repro.obs import tracecontext
from repro.obs.recorder import NULL_RECORDER, Recorder
from repro.obs.sinks import JsonlSink, relabel_prometheus, render_prometheus
from repro.service.client import HttpConnectionPool, idempotency_key
from repro.service.config import ServiceConfig
from repro.service.errors import BadRequest, ServiceError
from repro.service.ring import DEFAULT_REPLICAS, ConsistentHashRing


@dataclass(frozen=True)
class ClusterConfig:
    """Knobs for one :class:`ClusterServer` (router + N shards).

    Attributes:
        host: Router bind address.
        port: Router TCP port; ``0`` asks the OS (tests).
        n_shards: Shard processes to spawn and keep alive.
        shard: Template :class:`ServiceConfig` every shard is built
            from; each shard gets ``host="127.0.0.1"``, ``port=0`` (the
            OS picks) and ``chaos=False`` (chaos lives at the router —
            single-server campaigns drill the in-shard points).
        replicas: Virtual nodes per shard on the consistent-hash ring.
        health_interval_seconds: Liveness poll period of the monitor.
        shard_start_timeout_seconds: How long to wait for a (re)spawned
            shard's ready handshake before declaring the spawn failed.
        forward_timeout_seconds: Socket timeout per forwarded request.
        chaos: Install a router-side injector and expose the
            ``/chaos`` endpoints for cluster-level points.
        chaos_seed: Seed for that injector's rate-mode streams.
        trace_dir: Distributed-trace directory shared by the whole
            cluster: the router and every shard (and every shard's
            pre-forked workers) write their per-process span files
            here, and :mod:`repro.obs.collect` merges them back into
            cross-process trace trees.
    """

    host: str = "127.0.0.1"
    port: int = 8080
    n_shards: int = 2
    shard: ServiceConfig = field(default_factory=ServiceConfig)
    replicas: int = DEFAULT_REPLICAS
    health_interval_seconds: float = 0.25
    shard_start_timeout_seconds: float = 30.0
    forward_timeout_seconds: float = 30.0
    chaos: bool = False
    chaos_seed: Optional[int] = None
    trace_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.port < 0 or self.port > 65535:
            raise BadRequest(f"invalid port {self.port}")
        if self.n_shards < 1:
            raise BadRequest(f"n_shards must be >= 1, got {self.n_shards}")
        if self.replicas < 1:
            raise BadRequest(f"replicas must be >= 1, got {self.replicas}")
        if self.health_interval_seconds <= 0:
            raise BadRequest(
                f"health_interval_seconds must be positive, "
                f"got {self.health_interval_seconds}"
            )
        if self.shard_start_timeout_seconds <= 0:
            raise BadRequest(
                f"shard_start_timeout_seconds must be positive, "
                f"got {self.shard_start_timeout_seconds}"
            )
        if self.forward_timeout_seconds <= 0:
            raise BadRequest(
                f"forward_timeout_seconds must be positive, "
                f"got {self.forward_timeout_seconds}"
            )

    def shard_config(self, name: Optional[str] = None) -> ServiceConfig:
        """The per-shard :class:`ServiceConfig` derived from the template.

        ``name`` (e.g. ``"shard-2"``) becomes the shard's process label
        in cross-process traces; the cluster's ``trace_dir`` overrides
        the template's so all per-process files land in one directory.
        """
        return dataclasses.replace(
            self.shard,
            host="127.0.0.1",
            port=0,
            chaos=False,
            trace_dir=(
                self.trace_dir
                if self.trace_dir is not None
                else self.shard.trace_dir
            ),
            process_label=(
                name if name is not None else self.shard.process_label
            ),
        )


def _shard_main(conn: Any, config: ServiceConfig) -> None:
    """Entry point of one forked shard process.

    Fork hygiene first: the child inherits the router's globally
    installed recorder and injector; both are reset so the shard's
    :class:`AvailabilityService` builds its own registry and the
    router's chaos arms never leak into shards.  Then the shard boots a
    full server on an OS-assigned port, reports ``("ready", port)``
    through the pipe, and serves until killed.
    """
    obs.set_recorder(NULL_RECORDER)
    chaos.set_injector(NULL_INJECTOR)
    signal.signal(signal.SIGTERM, lambda *_: os._exit(0))
    # The router spawns shards daemonic (so a crashed router never
    # leaks them), but a daemonic process may not fork children — which
    # a shard with ``worker_processes > 0`` must (its solver pool).
    # Clearing the flag inside the child lifts that restriction without
    # changing how the *router* tracks or reaps this process.
    import multiprocessing

    multiprocessing.current_process()._config["daemon"] = False
    from repro.service.server import AvailabilityServer

    try:
        server = AvailabilityServer(config)
    except Exception as exc:  # noqa: BLE001 - reported to the router
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        finally:
            conn.close()
        return
    # Re-bind SIGTERM now that the server exists: a plain ``os._exit``
    # would orphan the shard's pre-forked solver workers (they only
    # notice a *vanished* parent on their poll loop; a clean router
    # shutdown should not rely on that).
    def _terminate(*_: Any) -> None:
        pool = server.service.pool
        if pool is not None:
            pool.terminate()
        os._exit(0)

    signal.signal(signal.SIGTERM, _terminate)
    conn.send(("ready", server.address[1]))
    conn.close()
    server.serve_forever()


class Shard:
    """Lifecycle record of one shard process slot.

    The *name* is the ring identity and survives respawns — the
    replacement process inherits the dead shard's arcs, so the keys it
    owned come back to the same slot (with a cold cache).
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.process: Any = None
        self.port: int = 0
        self.generation = 0
        self.respawns = 0
        self.started_at = 0.0
        #: Serializes recovery: the health monitor and the forward path
        #: can both notice the same death; only one may respawn.
        self.respawn_lock = threading.Lock()

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid if self.process is not None else None

    def status(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "pid": self.pid,
            "port": self.port,
            "alive": self.alive,
            "generation": self.generation,
            "respawns": self.respawns,
        }


class ClusterService:
    """The HTTP-agnostic router core: ring, shard lifecycle, forwarding.

    The HTTP layer (:class:`ClusterServer`) only parses and serializes;
    every decision — routing, failover, respawn, aggregation — lives
    here so tests can drive it directly.
    """

    #: Headers copied from a shard response to the client.
    _FORWARD_HEADERS = ("Retry-After",)

    def __init__(self, config: Optional[ClusterConfig] = None) -> None:
        self.config = config or ClusterConfig()
        self.started_at = time.time()
        if self.config.trace_dir is not None:
            obs.set_process_label("router")
        self._own_recorder: Optional[Recorder] = None
        self._previous_recorder = None
        if obs.enabled():
            self._recorder = obs.get_recorder()
        else:
            sinks: Tuple = ()
            if self.config.trace_dir is not None:
                import pathlib

                directory = pathlib.Path(self.config.trace_dir)
                directory.mkdir(parents=True, exist_ok=True)
                sinks = (
                    JsonlSink(
                        directory / f"router.{os.getpid()}.jsonl",
                        header_fields={
                            "process": "router", "pid": os.getpid()
                        },
                    ),
                )
            self._own_recorder = Recorder(sinks=sinks, keep_records=False)
            self._previous_recorder = obs.set_recorder(self._own_recorder)
            self._recorder = self._own_recorder
        self.injector: Optional[ChaosInjector] = None
        self._previous_injector = None
        if self.config.chaos:
            self.injector = ChaosInjector(seed=self.config.chaos_seed)
            self._previous_injector = chaos.set_injector(self.injector)
        for name in (
            "cluster_requests_total",
            "cluster_failovers_total",
            "cluster_shard_deaths_detected_total",
            "cluster_shard_respawns_total",
            "cluster_shed_total",
        ):
            obs.counter(name)
        # Router-local request latency, exported from /metrics under
        # component="router" (shards report their own service_request_
        # seconds; without this the router's own latency was invisible).
        obs.histogram("cluster_request_seconds")
        import multiprocessing

        self._context = multiprocessing.get_context("fork")
        self._lock = threading.Lock()
        self._ring = ConsistentHashRing(replicas=self.config.replicas)
        self._shards: Dict[str, Shard] = {}
        self._pools: Dict[str, HttpConnectionPool] = {}
        self._closing = False
        try:
            for index in range(self.config.n_shards):
                shard = Shard(f"shard-{index}")
                self._shards[shard.name] = shard
                self._spawn(shard)
        except Exception:
            self.close()
            raise
        self._monitor = threading.Thread(
            target=self._monitor_loop,
            name="repro-cluster-monitor",
            daemon=True,
        )
        self._monitor.start()

    # Shard lifecycle -----------------------------------------------------

    def _spawn(self, shard: Shard) -> None:
        """Start (or restart) ``shard``'s process and admit it to the ring.

        Called under no particular lock for the initial boot (still
        single-threaded) and with :attr:`_lock` *not* held on respawns —
        the fork plus ready handshake can take a while and must not
        block routing of traffic to the surviving shards.
        """
        parent_conn, child_conn = self._context.Pipe(duplex=False)
        process = self._context.Process(
            target=_shard_main,
            args=(child_conn, self.config.shard_config(shard.name)),
            name=f"repro-{shard.name}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        deadline = time.monotonic() + self.config.shard_start_timeout_seconds
        try:
            if not parent_conn.poll(max(0.0, deadline - time.monotonic())):
                process.kill()
                raise ServiceError(
                    f"{shard.name} did not report ready within "
                    f"{self.config.shard_start_timeout_seconds}s"
                )
            kind, value = parent_conn.recv()
        finally:
            parent_conn.close()
        if kind != "ready":
            raise ServiceError(f"{shard.name} failed to boot: {value}")
        with self._lock:
            old_pool = self._pools.pop(shard.name, None)
            shard.process = process
            shard.port = int(value)
            shard.generation += 1
            shard.started_at = time.time()
            self._pools[shard.name] = HttpConnectionPool(
                "127.0.0.1", shard.port, self.config.forward_timeout_seconds
            )
            self._ring.add(shard.name)
        if old_pool is not None:
            old_pool.close()
        obs.event(
            "cluster.shard.ready",
            shard=shard.name,
            port=shard.port,
            generation=shard.generation,
        )

    def _evict(self, shard: Shard) -> None:
        """Drop a dead shard from the ring and its pooled connections."""
        with self._lock:
            evicted = shard.name in self._ring
            self._ring.remove(shard.name)
            pool = self._pools.pop(shard.name, None)
        if pool is not None:
            pool.close()
        if evicted:
            obs.counter("cluster_shard_deaths_detected_total").inc()
            obs.event("cluster.shard.dead", shard=shard.name, pid=shard.pid)

    def _recover(self, shard: Shard) -> None:
        """Evict-and-respawn one dead shard, exactly once per death."""
        with shard.respawn_lock:
            if self._closing or shard.alive:
                return
            self._evict(shard)
            shard.respawns += 1
            obs.counter("cluster_shard_respawns_total").inc()
            try:
                self._spawn(shard)
            except ServiceError as exc:  # pragma: no cover - spawn race
                obs.event(
                    "cluster.shard.respawn_failed",
                    shard=shard.name,
                    error=str(exc),
                )

    def _monitor_loop(self) -> None:
        """Evict and respawn dead shards until the router closes."""
        while not self._closing:
            time.sleep(self.config.health_interval_seconds)
            for shard in list(self._shards.values()):
                if self._closing:
                    return
                if not shard.alive:
                    self._recover(shard)

    def kill_shard(self, name: str) -> int:
        """SIGKILL one shard process (chaos / drills); returns its pid.

        Eviction and respawn are left to the normal detection paths —
        this is exactly the black-box crash the failover machinery must
        notice on its own.
        """
        shard = self._shards.get(name)
        if shard is None:
            raise BadRequest(f"unknown shard {name!r}")
        if shard.process is None or not shard.alive:
            raise ServiceError(f"{name} is not running")
        pid = shard.process.pid
        # Emitted BEFORE the SIGKILL: the health monitor can notice the
        # death (cluster.shard.dead) within its poll interval, and the
        # measurement pipeline derives the detect phase from the
        # killed->dead gap — which must never come out negative.
        obs.event("cluster.shard.killed", shard=name, pid=pid)
        shard.process.kill()
        shard.process.join(timeout=5.0)
        return pid

    # Routing -------------------------------------------------------------

    def routing_key(
        self, path: str, document: Mapping[str, Any], header_key: Optional[str]
    ) -> str:
        """The consistent-hash key for one request.

        The client's ``Idempotency-Key`` header when present (so a
        retry routes identically even if the body re-serializes
        differently), else the same digest computed server-side.
        """
        return header_key or idempotency_key(path, document)

    def route(self, key: str) -> str:
        """Current owner shard for ``key`` (diagnostics/tests)."""
        with self._lock:
            return self._ring.route(key)

    def forward(
        self,
        path: str,
        document: Mapping[str, Any],
        header_key: Optional[str] = None,
        traceparent: Optional[str] = None,
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        """Route one ``/v1/*`` request to its owner shard, failing over.

        Returns ``(status, payload, headers)`` exactly like
        :meth:`AvailabilityService.handle`, so the HTTP layer treats a
        shard answer and a router answer identically.  When the client
        sent a ``Traceparent`` header, the router joins that trace: a
        ``router.forward`` span wraps the whole walk, each try gets a
        ``router.attempt`` child (the failover hop is the attempt with
        ``failover=True``), and the header forwarded to the shard names
        the attempt span, so shard and worker spans parent under it.
        """
        obs.counter("cluster_requests_total", endpoint=path).inc()
        started = time.perf_counter()
        context = tracecontext.parse_traceparent(traceparent)
        with tracecontext.trace_scope(context):
            with obs.span("router.forward", endpoint=path):
                result = self._forward_with_failover(
                    path, document, header_key
                )
        obs.histogram("cluster_request_seconds", endpoint=path).observe(
            time.perf_counter() - started
        )
        return result

    def _forward_with_failover(
        self,
        path: str,
        document: Mapping[str, Any],
        header_key: Optional[str],
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        key = self.routing_key(path, document, header_key)
        body = json.dumps(dict(document)).encode("utf-8")
        base_headers = {
            "Content-Type": "application/json",
            "Idempotency-Key": key,
        }
        injection = chaos.fire(POINT_SHARD_DEATH) if self.injector else None
        if injection is not None:
            self._inject_shard_death(injection, key)
        # Bounded walk: every shard once, plus one retry against a
        # respawned owner; beyond that the cluster is genuinely down.
        attempts = 2 * max(1, len(self._shards)) + 1
        retried_alive: set = set()
        failed_over = False
        for attempt_number in range(attempts):
            with self._lock:
                try:
                    owner = self._ring.route(key)
                except ServiceError:
                    owner = None
                pool = self._pools.get(owner) if owner else None
            if owner is None or pool is None:
                time.sleep(self.config.health_interval_seconds)
                continue
            shard = self._shards[owner]
            try:
                with obs.span(
                    "router.attempt",
                    shard=owner,
                    attempt=attempt_number + 1,
                    failover=failed_over,
                ):
                    headers = dict(base_headers)
                    # Rebuilt per attempt: each try is its own span, and
                    # the shard must parent under the try that reached it.
                    attempt_context = tracecontext.current()
                    if (
                        attempt_context is not None
                        and attempt_context.span_ref is not None
                    ):
                        headers[tracecontext.TRACEPARENT_HEADER] = (
                            tracecontext.format_traceparent(attempt_context)
                        )
                    return self._forward_once(pool, path, body, headers)
            except TimeoutError:
                # Slow is not dead: answer 504, leave membership alone.
                return (
                    504,
                    {"error": f"{owner} timed out after "
                              f"{self.config.forward_timeout_seconds}s"},
                    {},
                )
            except ConnectionError:
                if shard.alive and owner not in retried_alive:
                    # A live process behind a failed socket: the pooled
                    # keep-alive connection went stale.  Flush the pool
                    # and retry the same owner once.
                    retried_alive.add(owner)
                    pool.close()
                    with self._lock:
                        if self._pools.get(owner) is pool:
                            self._pools[owner] = HttpConnectionPool(
                                "127.0.0.1",
                                shard.port,
                                self.config.forward_timeout_seconds,
                            )
                    continue
                failed_over = True
                obs.counter("cluster_failovers_total").inc()
                # Evict inline so the very next route() already skips
                # the dead shard; recovery (respawn + re-admission) runs
                # off-path so surviving shards keep taking traffic.
                self._evict(shard)
                threading.Thread(
                    target=self._recover, args=(shard,), daemon=True
                ).start()
        obs.counter("cluster_shed_total").inc()
        return (
            503,
            {"error": "no shard available", "retry_after_seconds": 1},
            {"Retry-After": "1"},
        )

    def _inject_shard_death(self, injection: Any, key: str) -> None:
        """Act on an armed ``shard.death``: kill the tagged shard.

        The injection's ``tag`` names the victim (``"shard-2"``); with
        no tag the key's current owner dies — the worst case, since the
        in-flight request must then fail over.
        """
        victim = injection.tag
        if victim not in self._shards:
            with self._lock:
                try:
                    victim = self._ring.route(key)
                except ServiceError:
                    return
        try:
            self.kill_shard(victim)
        except ServiceError:
            pass

    def _forward_once(
        self,
        pool: HttpConnectionPool,
        path: str,
        body: bytes,
        headers: Mapping[str, str],
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        conn = pool.acquire()
        try:
            conn.request("POST", path, body=body, headers=dict(headers))
            reply = conn.getresponse()
            payload = reply.read()
        except (socket.timeout, TimeoutError) as exc:
            pool.discard(conn)
            raise TimeoutError(str(exc)) from exc
        except (ConnectionError, http.client.HTTPException, OSError) as exc:
            pool.discard(conn)
            raise ConnectionError(str(exc)) from exc
        if reply.will_close:
            pool.discard(conn)
        else:
            pool.release(conn)
        try:
            document = json.loads(payload.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            document = {"error": "shard returned a non-JSON body"}
        out_headers = {
            name: reply.headers[name]
            for name in self._FORWARD_HEADERS
            if reply.headers.get(name)
        }
        return reply.status, document, out_headers

    # Aggregation ---------------------------------------------------------

    def _shard_get(self, shard: Shard, path: str) -> Optional[Any]:
        """Best-effort GET against one shard; ``None`` when unreachable."""
        with self._lock:
            pool = self._pools.get(shard.name)
        if pool is None:
            return None
        conn = pool.acquire()
        try:
            conn.request("GET", path)
            reply = conn.getresponse()
            payload = reply.read()
        except (OSError, http.client.HTTPException):
            pool.discard(conn)
            return None
        if reply.will_close:
            pool.discard(conn)
        else:
            pool.release(conn)
        if reply.status != 200:
            return None
        text = payload.decode("utf-8")
        if reply.headers.get("Content-Type", "").startswith(
            "application/json"
        ):
            return json.loads(text)
        return text

    def healthz(self) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        """Cluster health: the router's view plus every shard's own."""
        shards: Dict[str, Any] = {}
        healthy = 0
        for shard in self._shards.values():
            health = self._shard_get(shard, "/healthz") if shard.alive else None
            if health is not None:
                healthy += 1
                shards[shard.name] = health
            else:
                shards[shard.name] = {"status": "unreachable"}
        with self._lock:
            ring_nodes = list(self._ring.nodes)
        status = "ok" if healthy == len(self._shards) else (
            "degraded" if healthy else "down"
        )
        payload = {
            "status": status,
            "role": "router",
            "uptime_seconds": time.time() - self.started_at,
            "n_shards": len(self._shards),
            "shards_healthy": healthy,
            "ring": ring_nodes,
            "shards": shards,
        }
        return (200 if healthy else 503), payload, {}

    def metrics_text(self) -> str:
        """Shard expositions with ``shard`` labels, router's last.

        Every sample also carries a ``component`` label (``"shard"`` /
        ``"router"``), so the router's own instruments — notably the
        ``cluster_request_seconds`` latency histogram — are queryable
        without knowing the magic ``shard="router"`` value.
        """
        sections = []
        for shard in self._shards.values():
            if not shard.alive:
                continue
            text = self._shard_get(shard, "/metrics")
            if isinstance(text, str) and text:
                sections.append(
                    relabel_prometheus(
                        text, shard=shard.name, component="shard"
                    )
                )
        sections.append(
            relabel_prometheus(
                render_prometheus(self._recorder.metrics),
                shard="router",
                component="router",
            )
        )
        return "".join(
            section if section.endswith("\n") else section + "\n"
            for section in sections if section
        )

    def cluster_status(self) -> Dict[str, Any]:
        """Ring membership and shard lifecycle (``/cluster/status``).

        Each live shard's entry additionally reports its current
        ``queue_depth`` and ``cache_hit_rate`` (from the shard's own
        ``/healthz``), so an availability dip in the measurement report
        can be correlated with load shedding or cache-cold shards.
        """
        with self._lock:
            ring_nodes = list(self._ring.nodes)
        shards: Dict[str, Any] = {}
        for shard in self._shards.values():
            entry = shard.status()
            health = (
                self._shard_get(shard, "/healthz") if shard.alive else None
            )
            if isinstance(health, dict):
                entry["queue_depth"] = health.get("queue_depth")
                entry["cache_hit_rate"] = health.get("cache_hit_rate")
                entry["cache_entries"] = health.get("cache_entries")
            else:
                entry["queue_depth"] = None
                entry["cache_hit_rate"] = None
                entry["cache_entries"] = None
            shards[shard.name] = entry
        return {
            "role": "router",
            "uptime_seconds": time.time() - self.started_at,
            "n_shards": len(self._shards),
            "replicas": self.config.replicas,
            "ring": ring_nodes,
            "shards": shards,
        }

    def chaos_arm(self, document: Any) -> Tuple[int, Dict[str, Any]]:
        """Arm a cluster-level injection point (``/chaos/arm``)."""
        if self.injector is None:
            return 404, {"error": "chaos surface is disabled"}
        if not isinstance(document, dict):
            return 400, {"error": "request body must be a JSON object"}
        point = document.get("point")
        if point not in CLUSTER_INJECTION_POINTS:
            return 400, {
                "error": (
                    f"unknown cluster injection point {point!r}; expected "
                    f"one of {list(CLUSTER_INJECTION_POINTS)} (in-shard "
                    "points are armed on a single server)"
                )
            }
        count = document.get("count", 1)
        if isinstance(count, bool) or not isinstance(count, int) or count < 1:
            return 400, {"error": f"'count' must be a positive int: {count!r}"}
        tag = document.get("tag")
        if tag is not None and not isinstance(tag, str):
            return 400, {"error": f"'tag' must be a string, got {tag!r}"}
        self.injector.arm(point, count=count, tag=tag)
        return 200, {"armed": point, "count": count, **self.injector.status()}

    def close(self) -> None:
        """Stop the monitor, terminate every shard, restore globals."""
        self._closing = True
        monitor = getattr(self, "_monitor", None)
        if monitor is not None and monitor.is_alive():
            monitor.join(
                timeout=self.config.health_interval_seconds * 4 + 1.0
            )
        for shard in self._shards.values():
            # The respawn lock serializes this sweep with any in-flight
            # _recover thread: without it, a recovery that passed its
            # _closing check could finish spawning a replacement right
            # after this loop read the old (dead) process and leak the
            # new one until interpreter exit.
            with shard.respawn_lock:
                if shard.process is not None and shard.process.is_alive():
                    shard.process.terminate()
        for shard in self._shards.values():
            if shard.process is not None:
                shard.process.join(timeout=5.0)
                if shard.process.is_alive():  # pragma: no cover - stuck child
                    shard.process.kill()
                    shard.process.join(timeout=5.0)
        with self._lock:
            pools = list(self._pools.values())
            self._pools.clear()
        for pool in pools:
            pool.close()
        if self.injector is not None:
            chaos.set_injector(self._previous_injector)
            self.injector = None
        if self._own_recorder is not None:
            obs.set_recorder(self._previous_recorder)
            self._own_recorder.close()
            self._own_recorder = None


class _RouterHandler(BaseHTTPRequestHandler):
    """Thin JSON/proxy shim over :class:`ClusterService`."""

    server_version = "repro-avail-router/1"
    protocol_version = "HTTP/1.1"
    # Same rationale as the shard handler: a keep-alive exchange must
    # not wait out the peer's delayed ACK between header and body
    # segments (Nagle would add ~40 ms to every routed request).
    disable_nagle_algorithm = True

    @property
    def cluster(self) -> ClusterService:
        return self.server.cluster  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:
        obs.event("cluster.http", message=format % args)

    def _send_json(
        self,
        status: int,
        payload: Dict[str, Any],
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:
        if self.path == "/metrics":
            body = self.cluster.metrics_text().encode("utf-8")
            self.send_response(200)
            self.send_header(
                "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
            )
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
            return
        if self.path == "/healthz":
            status, payload, headers = self.cluster.healthz()
            self._send_json(status, payload, headers)
            return
        if self.path == "/cluster/status":
            self._send_json(200, self.cluster.cluster_status())
            return
        if self.path == "/chaos/status":
            injector = self.cluster.injector
            if injector is None:
                self._send_json(404, {"error": "chaos surface is disabled"})
            else:
                self._send_json(200, injector.status())
            return
        self._send_json(404, {"error": f"unknown endpoint {self.path!r}"})

    def do_POST(self) -> None:
        length = int(self.headers.get("Content-Length") or 0)
        max_body = self.cluster.config.shard.max_body_bytes
        if length > max_body:
            remaining = length
            while remaining > 0:
                chunk = self.rfile.read(min(remaining, 65536))
                if not chunk:
                    break
                remaining -= len(chunk)
            self._send_json(
                413,
                {"error": f"request body exceeds {max_body} bytes"},
            )
            return
        raw = self.rfile.read(length) if length else b""
        try:
            document = json.loads(raw.decode("utf-8")) if raw else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._send_json(400, {"error": f"invalid JSON body: {exc}"})
            return
        if self.path == "/chaos/arm":
            status, payload = self.cluster.chaos_arm(document)
            self._send_json(status, payload)
            return
        if not self.path.startswith("/v1/"):
            self._send_json(
                404, {"error": f"unknown endpoint {self.path!r}"}
            )
            return
        if not isinstance(document, dict):
            self._send_json(
                400,
                {"error": "request body must be a JSON object"},
            )
            return
        status, payload, headers = self.cluster.forward(
            self.path,
            document,
            self.headers.get("Idempotency-Key"),
            traceparent=self.headers.get(tracecontext.TRACEPARENT_HEADER),
        )
        self._send_json(status, payload, headers)


class _ThreadingRouter(ThreadingHTTPServer):
    daemon_threads = True
    request_queue_size = 128


class ClusterServer:
    """Socket lifecycle around one :class:`ClusterService`.

    Usage (embedded / tests)::

        with ClusterServer(ClusterConfig(port=0, n_shards=4)) as router:
            client = ServiceClient(router.url)
            client.solve()          # routed to the key's owner shard

    or blocking (``repro-avail serve --shards N``)::

        ClusterServer(config).serve_forever()
    """

    def __init__(self, config: Optional[ClusterConfig] = None) -> None:
        self.config = config or ClusterConfig()
        self.cluster = ClusterService(self.config)
        try:
            self._httpd = _ThreadingRouter(
                (self.config.host, self.config.port), _RouterHandler
            )
        except OSError:
            self.cluster.close()
            raise
        self._httpd.cluster = self.cluster  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "ClusterServer":
        """Serve on a background thread (returns immediately)."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="repro-cluster-http",
                daemon=True,
            )
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted."""
        try:
            self._httpd.serve_forever()
        except KeyboardInterrupt:  # pragma: no cover - interactive
            pass
        finally:
            self.close()

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.cluster.close()

    def __enter__(self) -> "ClusterServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
