"""Thread-safe, size-bounded LRU solve cache with single-flight compute.

The cache maps content-addressed fingerprints
(:mod:`repro.service.fingerprint`) to JSON-able response payloads.
Three properties matter for a serving layer:

* **LRU bound** — at most ``max_entries`` payloads are held; inserting
  past the bound evicts the least-recently-used entry (reads refresh
  recency).
* **Single-flight** — concurrent :meth:`~SolveCache.get_or_compute`
  calls for the same fingerprint run the compute exactly once; the
  followers block on the leader's result instead of duplicating the
  solve.  A leader failure propagates its exception to every follower
  of that flight (the next request retries cleanly).
* **Spill/warm-start** — optionally, every insert is appended to a
  JSONL file and :meth:`~SolveCache.warm_start` replays such a file on
  boot.  A corrupt file falls back to a cold cache with a warning
  rather than failing the boot.

Counters (``service_cache_hits_total``, ``..._misses_total``,
``..._evictions_total``, the ``service_cache_size`` gauge, and
single-flight/warm-start counts) are registered through the global
:mod:`repro.obs` recorder, so ``/metrics`` exposes them when the server
is running and they cost nothing when observability is off.
"""

from __future__ import annotations

import json
import pathlib
import threading
import warnings
from collections import OrderedDict
from typing import Any, Callable, Dict, Optional, Tuple, Union

from repro import chaos, obs

#: Schema stamped on every spill-file line so a future layout change
#: cannot silently replay incompatible payloads.
SPILL_SCHEMA = 1

#: What the ``cache.corrupt`` injection point overwrites an entry with:
#: structurally valid JSON that no payload validator should accept.
CORRUPTED_PAYLOAD = {"__chaos__": "corrupted-cache-entry"}


class _Flight:
    """One in-progress compute that followers can wait on."""

    __slots__ = ("done", "payload", "error")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.payload: Any = None
        self.error: Optional[BaseException] = None


class SolveCache:
    """LRU cache of solve payloads keyed by content fingerprint.

    Args:
        max_entries: Size bound; ``0`` disables storage entirely (every
            lookup misses) while keeping the single-flight behavior, so
            a cache-less deployment still coalesces identical requests.
        spill_path: Optional JSONL file appended to on every insert.
            Call :meth:`warm_start` (the server does) to replay it.
        validator: Optional payload predicate evaluated on every read.
            An entry whose payload fails validation is **dropped and
            reported as a miss** instead of being served — the recovery
            contract for corrupted entries (whether injected by the
            ``cache.corrupt`` chaos point or replayed from a damaged
            warm-start file): fail the entry, recompute, never serve
            garbage.
    """

    def __init__(
        self,
        max_entries: int = 1024,
        spill_path: Union[str, pathlib.Path, None] = None,
        validator: Optional[Callable[[Any], bool]] = None,
    ) -> None:
        if max_entries < 0:
            raise ValueError(f"negative cache size {max_entries}")
        self.max_entries = int(max_entries)
        self.spill_path = (
            pathlib.Path(spill_path) if spill_path is not None else None
        )
        self._validator = validator
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, Any]" = OrderedDict()
        self._inflight: Dict[str, _Flight] = {}

    # Introspection -------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def keys(self) -> Tuple[str, ...]:
        """Fingerprints from least- to most-recently used."""
        with self._lock:
            return tuple(self._entries)

    # Core operations -----------------------------------------------------

    def get(self, fingerprint: str) -> Optional[Any]:
        """The cached payload, refreshing recency; ``None`` on a miss."""
        with self._lock:
            payload = self._get_locked(fingerprint)
        if payload is None:
            obs.counter("service_cache_misses_total").inc()
        else:
            obs.counter("service_cache_hits_total").inc()
        return payload

    def put(self, fingerprint: str, payload: Any) -> None:
        """Insert (or refresh) an entry, evicting past the bound."""
        with self._lock:
            self._put_locked(fingerprint, payload)
        self._spill(fingerprint, payload)

    def get_or_compute(
        self, fingerprint: str, compute: Callable[[], Any]
    ) -> Tuple[Any, str]:
        """Return ``(payload, source)`` computing at most once per key.

        ``source`` is ``"hit"`` (served from the cache), ``"shared"``
        (another thread was already computing this fingerprint; we
        waited for its result) or ``"miss"`` (this call ran the
        compute).
        """
        with self._lock:
            payload = self._get_locked(fingerprint)
            if payload is not None:
                leader = False
                flight = None
            else:
                flight = self._inflight.get(fingerprint)
                leader = flight is None
                if leader:
                    flight = self._inflight[fingerprint] = _Flight()
        if flight is None:
            obs.counter("service_cache_hits_total").inc()
            return payload, "hit"
        if not leader:
            obs.counter("service_cache_shared_total").inc()
            flight.done.wait()
            if flight.error is not None:
                raise flight.error
            return flight.payload, "shared"
        obs.counter("service_cache_misses_total").inc()
        try:
            payload = compute()
        except BaseException as exc:
            with self._lock:
                self._inflight.pop(fingerprint, None)
            flight.error = exc
            flight.done.set()
            raise
        with self._lock:
            self._put_locked(fingerprint, payload)
            self._inflight.pop(fingerprint, None)
        flight.payload = payload
        flight.done.set()
        self._spill(fingerprint, payload)
        return payload, "miss"

    # Locked internals ----------------------------------------------------

    def _get_locked(self, fingerprint: str) -> Optional[Any]:
        payload = self._entries.get(fingerprint)
        if payload is None:
            return None
        if chaos.enabled() and chaos.fire(chaos.POINT_CACHE_CORRUPT):
            # Simulate bit-rot in the stored entry itself: the
            # corruption persists until validation quarantines it.
            payload = CORRUPTED_PAYLOAD
            self._entries[fingerprint] = payload
        if self._validator is not None and not self._validator(payload):
            del self._entries[fingerprint]
            obs.counter("service_cache_invalid_dropped_total").inc()
            obs.gauge("service_cache_size").set(len(self._entries))
            obs.event("service.cache.invalid_entry", fingerprint=fingerprint)
            return None
        self._entries.move_to_end(fingerprint)
        return payload

    def _put_locked(self, fingerprint: str, payload: Any) -> None:
        if self.max_entries == 0:
            return
        if fingerprint in self._entries:
            self._entries.move_to_end(fingerprint)
        self._entries[fingerprint] = payload
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            obs.counter("service_cache_evictions_total").inc()
        obs.gauge("service_cache_size").set(len(self._entries))

    # Spill / warm-start --------------------------------------------------

    def _spill(self, fingerprint: str, payload: Any) -> None:
        if self.spill_path is None:
            return
        line = json.dumps(
            {
                "schema": SPILL_SCHEMA,
                "fingerprint": fingerprint,
                "payload": payload,
            },
            sort_keys=True,
        )
        with self._lock:
            with open(self.spill_path, "a", encoding="utf-8") as stream:
                stream.write(line + "\n")
        obs.counter("service_cache_spilled_total").inc()

    def warm_start(
        self, path: Union[str, pathlib.Path, None] = None
    ) -> int:
        """Replay a spill file; returns the number of entries loaded.

        Later lines win over earlier ones (the file is an append-only
        log), and the LRU bound applies as usual.  A missing file is a
        cold start; a corrupt file (bad JSON, wrong schema, missing
        keys) falls back to a **cold** cache with a warning — partial
        state from a corrupt log is worse than none.
        """
        target = pathlib.Path(path) if path is not None else self.spill_path
        if target is None:
            raise ValueError("no warm-start path given and no spill_path set")
        if not target.exists():
            return 0
        loaded: "OrderedDict[str, Any]" = OrderedDict()
        try:
            with open(target, "r", encoding="utf-8") as stream:
                for lineno, line in enumerate(stream, start=1):
                    if not line.strip():
                        continue
                    record = json.loads(line)
                    if record["schema"] != SPILL_SCHEMA:
                        raise ValueError(
                            f"line {lineno}: unsupported spill schema "
                            f"{record['schema']!r}"
                        )
                    fingerprint = record["fingerprint"]
                    if not isinstance(fingerprint, str):
                        raise ValueError(
                            f"line {lineno}: non-string fingerprint"
                        )
                    payload = record["payload"]
                    if fingerprint in loaded:
                        loaded.move_to_end(fingerprint)
                    loaded[fingerprint] = payload
        except (OSError, ValueError, KeyError, TypeError) as exc:
            obs.counter("service_cache_warm_start_errors_total").inc()
            obs.event(
                "service.cache.warm_start_corrupt",
                path=str(target),
                error=str(exc),
            )
            warnings.warn(
                f"solve-cache warm-start file {target} is corrupt "
                f"({exc}); starting cold",
                RuntimeWarning,
                stacklevel=2,
            )
            return 0
        with self._lock:
            for fingerprint, payload in loaded.items():
                self._put_locked(fingerprint, payload)
            count = len(self._entries)
        obs.counter("service_cache_warm_started_total").inc(len(loaded))
        return count
