"""Service configuration.

One frozen dataclass carries every knob the server, scheduler and cache
need, so the CLI, tests and embedding code construct the whole stack
from a single value.  Defaults are sized for a laptop-class deployment
of the paper's Config 1/2 shapes; ``docs/service_guide.md`` discusses
how to size the cache and batch window for heavier traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Tuple

from repro.service.errors import BadRequest


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs for one :class:`~repro.service.server.AvailabilityServer`.

    Attributes:
        host: Bind address (use ``127.0.0.1`` unless you mean to expose
            the service).
        port: TCP port; ``0`` asks the OS for a free port (tests).
        workers: Batch-dispatch worker threads in the micro-batcher.
        cache_size: Maximum entries held by the LRU solve cache.
        max_batch: Largest coalesced batch one dispatch may carry.
        max_wait_ms: How long a dispatcher waits for co-batchable
            requests after the first one arrives.  ``0`` disables
            coalescing (every request solves alone).
        queue_limit: Bound on requests waiting in the scheduler; beyond
            it the server sheds load with 429 + ``Retry-After``.
        heavy_slots: Concurrent ``/v1/sweep`` + ``/v1/uncertainty``
            evaluations admitted before shedding (these run whole
            batches per request and bypass the micro-batcher).
        cache_file: Optional JSONL spill/warm-start file for the solve
            cache; loaded on boot, appended to on every insert.
        retry_after_seconds: Value advertised in ``Retry-After`` when
            shedding.
        max_body_bytes: Reject request bodies larger than this (413).
        chaos: Enable the fault-injection harness: installs a live
            :class:`~repro.chaos.injector.ChaosInjector` and exposes the
            ``/chaos/arm`` / ``/chaos/status`` endpoints.  **Off by
            default** — a production server has no chaos surface and the
            injection points are no-ops.
        chaos_seed: Seed for the injector's rate-mode RNG streams
            (campaign reproducibility).
        chaos_stall_seconds: Default stall duration injected at
            delay-style points when an ``arm`` request does not override
            it.
        chaos_rates: Per-point background firing probabilities handed to
            the injector at boot (e.g. ``{"scheduler.stall": 1.0}`` to
            stall every dispatch — a deterministic service-rate knob for
            metastable-trigger campaigns).  Accepts a mapping or
            ``(point, rate)`` pairs; stored as a sorted tuple of pairs
            so the config stays hashable.  Requires ``chaos=True``.
        worker_processes: Pre-forked solver worker processes.  ``0``
            (default) solves in-process on the micro-batcher's dispatch
            threads; ``N >= 1`` forks N solver processes at boot and
            routes every ``/v1/solve`` batch through the shared dispatch
            queue (see :mod:`repro.service.prefork`).  Payloads are
            bit-identical either way.
        kernel: Solve-kernel backend override applied at service boot
            (``"auto"``, ``"numpy"``, ``"cext"`` or ``"numba"``);
            ``None`` keeps the process-wide default.  Pre-forked workers
            inherit the selection.
        trace_dir: Directory for per-process distributed-trace JSONL
            files.  When set (and no recorder is already installed),
            the server boots a recorder writing spans to
            ``{label}.{pid}.jsonl`` under this directory, and pre-forked
            workers each write their own ``{label}.workerN.{pid}.jsonl``
            beside it.  ``repro.obs.collect`` merges them back into
            cross-process trace trees.
        process_label: Name this process carries in cross-process trace
            records (e.g. ``"shard-2"``).  Defaults to ``"service"``
            when ``trace_dir`` is set.
    """

    host: str = "127.0.0.1"
    port: int = 8080
    workers: int = 2
    cache_size: int = 1024
    max_batch: int = 32
    max_wait_ms: float = 5.0
    queue_limit: int = 256
    heavy_slots: int = 4
    cache_file: Optional[str] = None
    retry_after_seconds: float = 1.0
    max_body_bytes: int = 1 << 20
    chaos: bool = False
    chaos_seed: Optional[int] = None
    chaos_stall_seconds: float = 0.05
    chaos_rates: Optional[Tuple[Tuple[str, float], ...]] = None
    worker_processes: int = 0
    kernel: Optional[str] = None
    trace_dir: Optional[str] = None
    process_label: Optional[str] = None

    def __post_init__(self) -> None:
        if self.port < 0 or self.port > 65535:
            raise BadRequest(f"invalid port {self.port}")
        if self.workers < 1:
            raise BadRequest(f"need at least one worker, got {self.workers}")
        if self.cache_size < 0:
            raise BadRequest(f"negative cache size {self.cache_size}")
        if self.max_batch < 1:
            raise BadRequest(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_wait_ms < 0:
            raise BadRequest(f"negative max_wait_ms {self.max_wait_ms}")
        if self.queue_limit < 1:
            raise BadRequest(
                f"queue_limit must be >= 1, got {self.queue_limit}"
            )
        if self.heavy_slots < 1:
            raise BadRequest(
                f"heavy_slots must be >= 1, got {self.heavy_slots}"
            )
        if self.retry_after_seconds <= 0:
            raise BadRequest(
                f"retry_after_seconds must be positive, "
                f"got {self.retry_after_seconds}"
            )
        if self.max_body_bytes < 1:
            raise BadRequest(
                f"max_body_bytes must be >= 1, got {self.max_body_bytes}"
            )
        if self.chaos_stall_seconds < 0:
            raise BadRequest(
                f"negative chaos_stall_seconds {self.chaos_stall_seconds}"
            )
        if self.chaos_rates is not None:
            items = (
                self.chaos_rates.items()
                if isinstance(self.chaos_rates, Mapping)
                else self.chaos_rates
            )
            normalized = []
            for entry in items:
                try:
                    point, rate = entry
                except (TypeError, ValueError):
                    raise BadRequest(
                        f"chaos_rates entries must be (point, rate) "
                        f"pairs, got {entry!r}"
                    ) from None
                rate = float(rate)
                if not 0.0 <= rate <= 1.0:
                    raise BadRequest(
                        f"chaos rate for {point!r} must be in [0, 1], "
                        f"got {rate}"
                    )
                normalized.append((str(point), rate))
            if not self.chaos:
                raise BadRequest(
                    "chaos_rates requires chaos=True; a production "
                    "config has no injection surface"
                )
            object.__setattr__(
                self, "chaos_rates", tuple(sorted(normalized))
            )
        if self.worker_processes < 0:
            raise BadRequest(
                f"worker_processes must be >= 0, got {self.worker_processes}"
            )
        if self.kernel is not None and self.kernel not in (
            "auto", "numpy", "cext", "numba"
        ):
            raise BadRequest(
                f"unknown kernel {self.kernel!r}; expected one of "
                "'auto', 'numpy', 'cext', 'numba'"
            )
