"""Request-coalescing micro-batcher.

The compiled batch engine (:mod:`repro.ctmc.batch`) solves *k* parameter
points against one model for barely more than the cost of one point —
that is the whole reason PR 1 exists.  A serving layer should therefore
never solve concurrent requests one by one: this scheduler collects
requests that target the same *batch group* (same hierarchy shape, same
method/abstraction, same parameter-name set) and dispatches them as a
single ``solve_batch`` call.

Mechanics:

* :meth:`MicroBatcher.submit` enqueues a request and returns a ticket;
  the caller blocks on :meth:`Ticket.result`.  When the queue already
  holds ``queue_limit`` pending requests, ``submit`` raises
  :class:`~repro.service.errors.Overloaded` instead of queueing — the
  HTTP layer turns that into 429 + ``Retry-After`` (load shedding, not
  unbounded buffering).
* Each worker thread takes the oldest pending request, then waits up to
  ``max_wait_ms`` for more requests of the same group (or until
  ``max_batch`` are in hand) before dispatching the whole set through
  the group's ``solve_many``.
* Results (or the batch's exception) are delivered per-ticket.

Per-sample results from a coalesced batch are bit-identical to solving
each request alone — guaranteed by the batch engine for the direct
method and enforced end-to-end by ``tests/service/test_server.py``.

Chaos surface (all no-ops unless a live injector is installed — see
:mod:`repro.chaos`): ``worker.death`` kills a dispatcher thread after it
takes a batch (the batch is re-queued and the worker respawned),
``scheduler.stall`` delays one dispatch, and ``solver.exception`` fails
exactly one request of a batch while the rest still solve.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, Hashable, List, Optional, Sequence

from repro import chaos, obs
from repro.chaos.injector import InjectedFault
from repro.obs import tracecontext
from repro.service.errors import Overloaded, SchedulerStopped

#: ``solve_many`` signature: a list of request values in, one result per
#: request out, in order.
BatchExecutor = Callable[[Sequence[Any]], Sequence[Any]]


class Ticket:
    """Handle for one submitted request."""

    __slots__ = ("group_key", "values", "trace", "_done", "_result",
                 "_error", "batch_size")

    def __init__(self, group_key: Hashable, values: Any) -> None:
        self.group_key = group_key
        self.values = values
        #: Trace context of the submitting thread.  Executors are
        #: registered once per group ("first writer wins"), so a trace
        #: baked into the executor closure would leak the first
        #: request's context into every later batch; the dispatch loop
        #: instead re-activates the lead ticket's context per batch.
        self.trace = tracecontext.current()
        self._done = threading.Event()
        self._result: Any = None
        self._error: Optional[BaseException] = None
        #: Size of the dispatched batch this request rode in (set on
        #: completion; lets the server report coalescing per response).
        self.batch_size = 0

    def _resolve(self, result: Any, batch_size: int) -> None:
        self._result = result
        self.batch_size = batch_size
        self._done.set()

    def _reject(self, error: BaseException, batch_size: int) -> None:
        self._error = error
        self.batch_size = batch_size
        self._done.set()

    def result(self, timeout: Optional[float] = None) -> Any:
        """Block until the batch containing this request completes."""
        if not self._done.wait(timeout):
            raise TimeoutError("batched solve did not complete in time")
        if self._error is not None:
            raise self._error
        return self._result


class MicroBatcher:
    """Coalesces same-group requests into batched dispatches.

    Args:
        executors: Maps a group key to its batch executor.  Unknown
            groups may also be registered lazily via :meth:`submit`'s
            ``executor`` argument (first writer wins).
        max_batch: Largest batch one dispatch may carry.
        max_wait_ms: Coalescing window after the first request of a
            batch arrives.  ``0`` dispatches immediately (whatever is
            already queued for the group still coalesces).
        queue_limit: Pending-request bound; exceeding it sheds load.
        workers: Dispatcher threads.  More workers overlap dispatches of
            *different* groups; one worker is enough for a single shape.
        retry_after_seconds: Advertised backoff when shedding.
    """

    def __init__(
        self,
        max_batch: int = 32,
        max_wait_ms: float = 5.0,
        queue_limit: int = 256,
        workers: int = 1,
        retry_after_seconds: float = 1.0,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait_ms < 0:
            raise ValueError(f"negative max_wait_ms {max_wait_ms}")
        if queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {queue_limit}")
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        self.max_batch = int(max_batch)
        self.max_wait_s = float(max_wait_ms) / 1000.0
        self.queue_limit = int(queue_limit)
        self.retry_after_seconds = float(retry_after_seconds)
        self._executors: Dict[Hashable, BatchExecutor] = {}
        self._queue: List[Ticket] = []
        self._lock = threading.Lock()
        # One condition for every queue transition: workers wait on it
        # for work, and wait_for_queue observers wait on it for state.
        # Every mutation (submit, take, re-queue) notifies it.
        self._wakeup = threading.Condition(self._lock)
        self._stopped = False
        self._spawned = 0
        self._threads: List[threading.Thread] = []
        for _ in range(int(workers)):
            self._spawn_worker_locked()

    # Submission ----------------------------------------------------------

    def submit(
        self,
        group_key: Hashable,
        values: Any,
        executor: Optional[BatchExecutor] = None,
    ) -> Ticket:
        """Enqueue one request; raises :class:`Overloaded` past the bound."""
        ticket = Ticket(group_key, values)
        with self._lock:
            if self._stopped:
                raise SchedulerStopped("scheduler has been shut down")
            if group_key not in self._executors:
                if executor is None:
                    raise ValueError(
                        f"no executor registered for group {group_key!r}"
                    )
                self._executors[group_key] = executor
            if len(self._queue) >= self.queue_limit:
                obs.counter("service_shed_total").inc()
                raise Overloaded(
                    f"work queue is full ({self.queue_limit} pending)",
                    retry_after_seconds=self.retry_after_seconds,
                )
            self._queue.append(ticket)
            obs.gauge("service_queue_depth").set(len(self._queue))
            self._wakeup.notify_all()
        return ticket

    @property
    def queue_depth(self) -> int:
        with self._lock:
            return len(self._queue)

    @property
    def worker_count(self) -> int:
        """Live dispatcher threads (respawns replace chaos casualties)."""
        with self._lock:
            return sum(1 for t in self._threads if t.is_alive())

    def wait_for_queue(
        self,
        predicate: Callable[[int], bool],
        timeout: float = 5.0,
    ) -> bool:
        """Block until ``predicate(queue_depth)`` holds; False on timeout.

        Event-driven synchronization for tests and embedding code:
        every queue transition (submit, worker take, chaos re-queue)
        notifies the underlying condition, so callers never poll the
        depth on a wall-clock loop.
        """
        deadline = time.monotonic() + timeout
        with self._wakeup:
            while not predicate(len(self._queue)):
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._wakeup.wait(remaining)
            return True

    # Dispatch loop -------------------------------------------------------

    def _spawn_worker_locked(self) -> threading.Thread:
        """Start one dispatcher thread (init is single-threaded; later
        callers hold the lock)."""
        thread = threading.Thread(
            target=self._run,
            name=f"repro-batcher-{self._spawned}",
            daemon=True,
        )
        self._spawned += 1
        self._threads = [t for t in self._threads if t.is_alive()]
        self._threads.append(thread)
        thread.start()
        return thread

    def _take_group_locked(self, group_key: Hashable, batch: List[Ticket]) -> None:
        """Move queued tickets of ``group_key`` into ``batch`` (to cap)."""
        remaining: List[Ticket] = []
        for ticket in self._queue:
            if (
                len(batch) < self.max_batch
                and ticket.group_key == group_key
            ):
                batch.append(ticket)
            else:
                remaining.append(ticket)
        self._queue[:] = remaining

    def _run(self) -> None:
        while True:
            with self._wakeup:
                while not self._queue and not self._stopped:
                    self._wakeup.wait()
                if self._stopped and not self._queue:
                    return
                first = self._queue.pop(0)
                batch = [first]
                self._take_group_locked(first.group_key, batch)
                # The take is a queue transition: wait_for_queue callers
                # must see it now, not when the coalescing window closes.
                obs.gauge("service_queue_depth").set(len(self._queue))
                self._wakeup.notify_all()
                if chaos.enabled() and not self._stopped:
                    injection = chaos.fire(chaos.POINT_WORKER_DEATH)
                    if injection is not None:
                        self._die_locked(batch)
                        return  # this thread is the casualty
                deadline = time.monotonic() + self.max_wait_s
                while (
                    len(batch) < self.max_batch
                    and not self._stopped
                ):
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    self._wakeup.wait(remaining)
                    before = len(self._queue)
                    self._take_group_locked(first.group_key, batch)
                    if len(self._queue) != before:
                        obs.gauge("service_queue_depth").set(
                            len(self._queue)
                        )
                        self._wakeup.notify_all()
                executor = self._executors[first.group_key]
                obs.gauge("service_queue_depth").set(len(self._queue))
                self._wakeup.notify_all()
            self._dispatch(executor, batch)

    def _die_locked(self, batch: List[Ticket]) -> None:
        """Injected worker death: re-queue the batch, respawn a worker.

        No ticket is lost and no caller notices beyond latency — the
        recovery contract the chaos campaign scores.  The replacement
        thread blocks on the lock we still hold and picks the work back
        up as soon as we release it by returning.
        """
        self._queue[:0] = batch
        obs.gauge("service_queue_depth").set(len(self._queue))
        obs.counter("service_worker_deaths_total").inc()
        self._spawn_worker_locked()
        obs.counter("service_worker_respawns_total").inc()
        obs.event("chaos.worker_death", requeued=len(batch))
        self._wakeup.notify_all()

    def _dispatch(self, executor: BatchExecutor, batch: List[Ticket]) -> None:
        size = len(batch)
        obs.counter("service_batches_total").inc()
        if size > 1:
            obs.counter("service_coalesced_batches_total").inc()
            obs.counter("service_coalesced_requests_total").inc(size)
        obs.histogram("service_batch_size").observe(size)
        if chaos.enabled():
            stall = chaos.fire(chaos.POINT_SCHEDULER_STALL)
            if stall is not None:
                obs.event(
                    "chaos.scheduler_stall",
                    delay_seconds=stall.delay_seconds,
                    batch_size=size,
                )
                time.sleep(stall.delay_seconds)
            # Graceful degradation under a poisoned request: the
            # injected failure is delivered to exactly one ticket and
            # the remaining requests still ride a (smaller) dispatch.
            healthy: List[Ticket] = []
            for ticket in batch:
                poison = chaos.fire(chaos.POINT_SOLVER_EXCEPTION)
                if poison is None:
                    healthy.append(ticket)
                else:
                    obs.counter("service_faults_injected_total").inc()
                    ticket._reject(
                        InjectedFault(chaos.POINT_SOLVER_EXCEPTION), size
                    )
            if not healthy:
                return
            batch = healthy
        # A coalesced batch serves several traces but one dispatch; the
        # lead ticket's context parents the dispatch span (batch_size
        # records the coalescing for the other riders).
        with tracecontext.trace_scope(batch[0].trace):
            with obs.span("service.dispatch", batch_size=size):
                try:
                    results = executor(
                        [ticket.values for ticket in batch]
                    )
                except BaseException as exc:  # delivered per-ticket
                    for ticket in batch:
                        ticket._reject(exc, size)
                    return
        if len(results) != len(batch):
            error = RuntimeError(
                f"batch executor returned {len(results)} results "
                f"for {len(batch)} requests"
            )
            for ticket in batch:
                ticket._reject(error, size)
            return
        for ticket, result in zip(batch, results):
            ticket._resolve(result, size)

    # Lifecycle -----------------------------------------------------------

    def shutdown(self, timeout: float = 5.0) -> None:
        """Stop accepting work, drain the queue, join the workers."""
        with self._lock:
            self._stopped = True
            self._wakeup.notify_all()
            threads = list(self._threads)
        for thread in threads:
            thread.join(timeout)
