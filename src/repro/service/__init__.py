"""repro.service — a batching availability-evaluation server.

The ROADMAP's north star is a system that serves heavy query traffic,
and availability evaluation *is* an online workload (Bibartiu et al.,
arXiv:2306.13334): dashboards poll configurations, planners sweep
parameters, CI pipelines re-assess deployments.  This package exposes
the JSAS/hierarchical model stack as a long-running, overload-safe
evaluation server instead of an in-process library call:

* :mod:`~repro.service.fingerprint` — content-addressed request hashes
  over canonically serialized models + parameters;
* :mod:`~repro.service.cache` — a thread-safe LRU solve cache with
  single-flight compute and JSONL spill/warm-start;
* :mod:`~repro.service.scheduler` — a request-coalescing micro-batcher
  that turns concurrent requests into one ``solve_batch`` dispatch;
* :mod:`~repro.service.server` — the stdlib ``ThreadingHTTPServer``
  JSON API (``/v1/solve``, ``/v1/sweep``, ``/v1/uncertainty``,
  ``/healthz``, ``/metrics``) with bounded queues that shed load with
  429 + ``Retry-After`` rather than queueing unboundedly (metastable
  overload is a failure mode in its own right — Alvaro et al.,
  arXiv:2510.03551);
* :mod:`~repro.service.client` — a stdlib ``urllib`` client.

Start one with ``repro-avail serve`` or embed it::

    from repro.service import AvailabilityServer, ServiceClient, ServiceConfig

    with AvailabilityServer(ServiceConfig(port=0)) as server:
        client = ServiceClient(server.url)
        print(client.solve()["availability"])

Service responses are bit-identical to direct
:meth:`~repro.hierarchy.HierarchicalModel.solve` calls; see
``docs/service_guide.md``.
"""

from repro.service.cache import SolveCache
from repro.service.client import (
    HttpConnectionPool,
    RetryPolicy,
    ServiceClient,
    idempotency_key,
)
from repro.service.cluster import ClusterConfig, ClusterServer, ClusterService
from repro.service.config import ServiceConfig
from repro.service.errors import (
    BadRequest,
    Overloaded,
    SchedulerStopped,
    ServiceClientError,
    ServiceConnectionError,
    ServiceError,
    ServiceTimeout,
    ServiceUnavailable,
)
from repro.service.fingerprint import (
    hierarchy_fingerprint,
    model_fingerprint,
    parameter_fingerprint,
    solve_fingerprint,
)
from repro.service.ring import ConsistentHashRing
from repro.service.scheduler import MicroBatcher, Ticket
from repro.service.server import (
    AvailabilityServer,
    AvailabilityService,
)

__all__ = [
    "AvailabilityServer",
    "AvailabilityService",
    "BadRequest",
    "ClusterConfig",
    "ClusterServer",
    "ClusterService",
    "ConsistentHashRing",
    "HttpConnectionPool",
    "MicroBatcher",
    "Overloaded",
    "RetryPolicy",
    "SchedulerStopped",
    "ServiceClient",
    "ServiceClientError",
    "ServiceConfig",
    "ServiceConnectionError",
    "ServiceError",
    "ServiceTimeout",
    "ServiceUnavailable",
    "SolveCache",
    "Ticket",
    "hierarchy_fingerprint",
    "idempotency_key",
    "model_fingerprint",
    "parameter_fingerprint",
    "solve_fingerprint",
]
