"""Consistent-hash ring for the sharded service cluster.

The cluster router must send every request fingerprint to the *same*
shard for as long as that shard is alive — that is what makes the solve
caches shard-local instead of N duplicated copies — while losing or
re-admitting a shard may only move the keys that shard owned.  A
consistent-hash ring with virtual nodes gives both properties:

* each node is hashed onto the ring at ``replicas`` positions (virtual
  nodes), so ownership is spread evenly even for small clusters;
* a key is owned by the first node clockwise from the key's position;
* removing a node reassigns only its arcs to the next node clockwise
  (~1/N of the keyspace), leaving every other shard's cache intact.

Positions come from SHA-256 over stable strings, so the mapping is
deterministic across processes and runs — a router restart (or a
replayed campaign) routes identically.  Thread safety is the caller's
concern: the router mutates membership under its own lock.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterator, List, Tuple

from repro.service.errors import ServiceError

#: Virtual nodes per member; 64 keeps the max/mean ownership skew under
#: ~20% for 2-16 shards while membership changes stay O(replicas log n).
DEFAULT_REPLICAS = 64


def _position(token: str) -> int:
    """Ring position of a token: the top 64 bits of its SHA-256."""
    return int.from_bytes(
        hashlib.sha256(token.encode("utf-8")).digest()[:8], "big"
    )


class ConsistentHashRing:
    """Deterministic consistent-hash ring with virtual nodes.

    Args:
        replicas: Virtual nodes per member.

    Usage::

        ring = ConsistentHashRing()
        ring.add("shard-0")
        ring.add("shard-1")
        owner = ring.route(fingerprint)          # "shard-0" or "shard-1"
        ring.remove(owner)                        # failover
        fallback = ring.route(fingerprint)        # the next arc owner
    """

    def __init__(self, replicas: int = DEFAULT_REPLICAS) -> None:
        if replicas < 1:
            raise ServiceError(f"replicas must be >= 1, got {replicas}")
        self.replicas = int(replicas)
        self._points: List[int] = []
        self._owners: List[str] = []
        self._members: Dict[str, Tuple[int, ...]] = {}

    # Membership ----------------------------------------------------------

    def add(self, node: str) -> None:
        """Admit ``node``; idempotent for an already-present member."""
        if node in self._members:
            return
        positions = []
        for replica in range(self.replicas):
            point = _position(f"{node}#{replica}")
            index = bisect.bisect(self._points, point)
            self._points.insert(index, point)
            self._owners.insert(index, node)
            positions.append(point)
        self._members[node] = tuple(positions)

    def remove(self, node: str) -> None:
        """Evict ``node``; a no-op when it is not a member."""
        if node not in self._members:
            return
        del self._members[node]
        keep = [
            (point, owner)
            for point, owner in zip(self._points, self._owners)
            if owner != node
        ]
        self._points = [point for point, _ in keep]
        self._owners = [owner for _, owner in keep]

    def __contains__(self, node: str) -> bool:
        return node in self._members

    def __len__(self) -> int:
        return len(self._members)

    @property
    def nodes(self) -> Tuple[str, ...]:
        """Current members, sorted for stable reporting."""
        return tuple(sorted(self._members))

    # Routing -------------------------------------------------------------

    def route(self, key: str) -> str:
        """The member owning ``key`` (first node clockwise)."""
        if not self._members:
            raise ServiceError("consistent-hash ring has no members")
        index = bisect.bisect(self._points, _position(key))
        if index == len(self._points):
            index = 0
        return self._owners[index]

    def route_order(self, key: str) -> Iterator[str]:
        """Members in failover order for ``key``: the owner first, then
        each subsequent *distinct* node clockwise around the ring.

        This is the order the router tries shards in when the owner is
        down — the first alternative is exactly the node that inherits
        the key if the owner is evicted, so a retry lands where the
        entry will live after failover.
        """
        if not self._members:
            return
        start = bisect.bisect(self._points, _position(key))
        seen = set()
        n = len(self._points)
        for step in range(n):
            owner = self._owners[(start + step) % n]
            if owner not in seen:
                seen.add(owner)
                yield owner

    def ownership(self, keys: List[str]) -> Dict[str, int]:
        """How many of ``keys`` each member owns (diagnostics/tests)."""
        counts = {node: 0 for node in self._members}
        for key in keys:
            counts[self.route(key)] += 1
        return counts
