"""Content-addressed fingerprints for solve requests.

A fingerprint is the SHA-256 of a canonical JSON document
(:func:`repro.core.serialize.canonical_json`) describing *what would be
solved*: the fully serialized models of the hierarchy (not the
configuration shorthand — so two configurations that happen to build
identical models share cache entries, and a change to a model builder
changes the hash), the bindings and attribution wiring, the solver
method and abstraction semantics, and the normalized parameter
assignment.

Because the encoding is canonical (sorted keys, shortest-round-trip
float text, ``-0.0`` -> ``0.0``), the same request hashes identically in
any process on any supported platform — which is what lets the solve
cache warm-start from a JSONL spill file written by an earlier server.
"""

from __future__ import annotations

import hashlib
import threading
from typing import Dict, Mapping, Tuple

from repro.core.model import MarkovModel
from repro.core.serialize import canonical_json, model_to_dict
from repro.hierarchy import HierarchicalModel
from repro.service.errors import BadRequest

#: Version of the fingerprint document layout.  Bump on any change to
#: the document shape so stale warm-start files can never alias fresh
#: requests.
FINGERPRINT_SCHEMA = 1


def _digest(document: object) -> str:
    return hashlib.sha256(canonical_json(document).encode("ascii")).hexdigest()


def parameter_fingerprint(values: Mapping[str, float]) -> Dict[str, float]:
    """Normalize a parameter assignment for fingerprinting.

    Every value is coerced to ``float`` (so ``2`` and ``2.0`` hash the
    same) and validated finite; the canonical encoder handles key order.
    """
    normalized: Dict[str, float] = {}
    for name, value in values.items():
        try:
            as_float = float(value)
        except (TypeError, ValueError) as exc:
            raise BadRequest(
                f"parameter {name!r} is not a number: {value!r}"
            ) from exc
        if as_float != as_float or as_float in (float("inf"), float("-inf")):
            raise BadRequest(f"parameter {name!r} is not finite: {value!r}")
        normalized[str(name)] = as_float
    return normalized


def model_fingerprint(model: MarkovModel) -> str:
    """SHA-256 of the model's canonical serialized form."""
    return _digest(model_to_dict(model))


def hierarchy_document(hierarchy: HierarchicalModel) -> Dict[str, object]:
    """The structural part of a fingerprint document for a hierarchy."""
    return {
        "fingerprint_schema": FINGERPRINT_SCHEMA,
        "top": model_to_dict(hierarchy.top),
        "submodels": {
            name: model_to_dict(hierarchy.submodel(name))
            for name in hierarchy.submodel_names
        },
        "bindings": [
            {
                "parameter": binding.parameter,
                "submodel": binding.submodel,
                "output": binding.output,
                "scale": float(binding.scale),
            }
            for binding in hierarchy.bindings
        ],
        "attributions": {
            name: list(states)
            for name, states in hierarchy.attributions.items()
        },
    }


def hierarchy_fingerprint(hierarchy: HierarchicalModel) -> str:
    """SHA-256 of the hierarchy's structure (models + wiring)."""
    return _digest(hierarchy_document(hierarchy))


def solve_fingerprint(
    structure: str,
    values: Mapping[str, float],
    method: str = "auto",
    abstraction: str = "mttf",
    kind: str = "solve",
    **extra: object,
) -> str:
    """Fingerprint one evaluation request.

    Args:
        structure: A structural hash (:func:`hierarchy_fingerprint` or
            :func:`model_fingerprint`) naming *what* is solved.
        values: Parameter assignment (normalized via
            :func:`parameter_fingerprint`).
        method: Steady-state method requested.
        abstraction: Submodel abstraction semantics.
        kind: Request kind (``"solve"``, ``"sweep"``, ``"uncertainty"``)
            so different endpoints can never collide.
        extra: Endpoint-specific fields folded into the hash (sweep
            grids, sample counts, seeds...).  Must be canonically
            JSON-serializable.
    """
    document = {
        "fingerprint_schema": FINGERPRINT_SCHEMA,
        "kind": str(kind),
        "structure": str(structure),
        "method": str(method),
        "abstraction": str(abstraction),
        "values": parameter_fingerprint(values),
    }
    if extra:
        document["extra"] = extra
    return _digest(document)


class HierarchyFingerprinter:
    """Caches structural hashes so per-request hashing stays cheap.

    Serializing a whole hierarchy per request would dominate cache-hit
    latency; the structure only changes when a different configuration
    shape is requested, so it is hashed once per shape key and reused.
    Thread-safe: the server calls :meth:`structure` from handler threads.
    """

    #: Bound on the request-fingerprint memo.  Entries are tiny (a key
    #: tuple and a hex digest) so this is generous; past the bound the
    #: oldest entries are dropped FIFO.
    MAX_REQUEST_MEMO = 4096

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._structures: Dict[Tuple, str] = {}
        self._requests: Dict[Tuple, str] = {}

    def structure(self, key: Tuple, hierarchy: HierarchicalModel) -> str:
        with self._lock:
            cached = self._structures.get(key)
        if cached is not None:
            return cached
        computed = hierarchy_fingerprint(hierarchy)
        with self._lock:
            return self._structures.setdefault(key, computed)

    def request(
        self,
        structure: str,
        values: Mapping[str, float],
        method: str = "auto",
        abstraction: str = "mttf",
        kind: str = "solve",
    ) -> str:
        """Memoized :func:`solve_fingerprint` for normalized values.

        Canonical-JSON encoding dominates cache-hit latency, and repeat
        requests re-encode the same content every time; since the
        fingerprint is a pure function of its inputs, memoizing on the
        sorted value items is exact.  ``values`` must already be
        normalized (every value a finite ``float``, as produced by
        :func:`parameter_fingerprint`) so ``2`` vs ``2.0`` cannot split
        memo entries.
        """
        memo_key = (
            structure, method, abstraction, kind,
            tuple(sorted(values.items())),
        )
        with self._lock:
            cached = self._requests.get(memo_key)
        if cached is not None:
            return cached
        computed = solve_fingerprint(
            structure, values,
            method=method, abstraction=abstraction, kind=kind,
        )
        with self._lock:
            while len(self._requests) >= self.MAX_REQUEST_MEMO:
                del self._requests[next(iter(self._requests))]
            return self._requests.setdefault(memo_key, computed)
