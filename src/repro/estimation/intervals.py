"""Generic confidence-interval helpers shared across the library."""

from __future__ import annotations

import math
from typing import Sequence, Tuple

import numpy as np
from scipy import stats

from repro.exceptions import EstimationError


def mean_confidence_interval(
    samples: Sequence[float], confidence: float = 0.95
) -> Tuple[float, float, float]:
    """Mean and a t-based central confidence interval.

    Returns ``(mean, low, high)``.  With a single sample the interval
    degenerates to the point value.
    """
    if not 0.0 < confidence < 1.0:
        raise EstimationError(f"confidence must be in (0, 1), got {confidence}")
    data = np.asarray(samples, dtype=float)
    if data.size == 0:
        raise EstimationError("cannot form an interval from an empty sample")
    mean = float(data.mean())
    if data.size == 1:
        return mean, mean, mean
    sem = float(data.std(ddof=1)) / math.sqrt(data.size)
    if sem == 0.0:
        return mean, mean, mean
    half = float(stats.t.ppf(0.5 + confidence / 2.0, data.size - 1)) * sem
    return mean, mean - half, mean + half


def percentile_interval(
    samples: Sequence[float], confidence: float = 0.80
) -> Tuple[float, float]:
    """Central empirical percentile interval (the paper's "80% CI").

    The paper's uncertainty plots report, for the sampled population of
    systems, the interval containing the central ``confidence`` mass —
    e.g. an 80% CI is the (10th, 90th) percentile pair.
    """
    if not 0.0 < confidence < 1.0:
        raise EstimationError(f"confidence must be in (0, 1), got {confidence}")
    data = np.asarray(samples, dtype=float)
    if data.size == 0:
        raise EstimationError("cannot form an interval from an empty sample")
    tail = (1.0 - confidence) / 2.0 * 100.0
    low, high = np.percentile(data, [tail, 100.0 - tail])
    return float(low), float(high)
