"""Summaries of measured recovery/restart times.

The paper measures restart and failover durations in the lab (e.g. HADB
restart "around 40 seconds", AS restart "less than 25 seconds") and then
plugs *conservative* values into the model (1 minute and 90 seconds).
This module provides the summary statistics used for that step, plus a
helper that applies a conservatism policy (round the chosen percentile up
to a margin factor) so the examples can show the full measured-value →
model-parameter pipeline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.exceptions import EstimationError


@dataclass(frozen=True)
class RecoveryTimeSummary:
    """Summary statistics of a sample of recovery durations (hours).

    Attributes:
        n: Sample size.
        mean: Sample mean.
        std: Sample standard deviation (ddof=1; 0.0 for n=1).
        minimum / maximum: Range.
        p50 / p90 / p95 / p99: Percentiles.
    """

    n: int
    mean: float
    std: float
    minimum: float
    maximum: float
    p50: float
    p90: float
    p95: float
    p99: float

    def conservative_value(
        self, percentile: float = 95.0, margin: float = 1.5
    ) -> float:
        """A model-ready conservative value: percentile times a margin.

        This codifies the paper's practice of setting model parameters
        above every measured value (e.g. 40 s measured -> 60 s modeled).
        """
        if not 0.0 < percentile <= 100.0:
            raise EstimationError(
                f"percentile must be in (0, 100], got {percentile}"
            )
        if margin < 1.0:
            raise EstimationError(f"margin must be >= 1, got {margin}")
        base = {50.0: self.p50, 90.0: self.p90, 95.0: self.p95, 99.0: self.p99}.get(
            percentile
        )
        if base is None:
            raise EstimationError(
                "percentile must be one of 50, 90, 95, 99 for the "
                "precomputed summary; use summarize_recovery_times on the "
                "raw sample for other percentiles"
            )
        return base * margin


def summarize_recovery_times(samples: Sequence[float]) -> RecoveryTimeSummary:
    """Summarize a sample of recovery durations.

    Raises:
        EstimationError: On an empty sample or non-positive durations
            (a zero or negative recovery time indicates a measurement
            pipeline bug).
    """
    if len(samples) == 0:
        raise EstimationError("cannot summarize an empty sample")
    data = np.asarray(samples, dtype=float)
    if not np.all(np.isfinite(data)) or np.any(data <= 0.0):
        raise EstimationError(
            "recovery times must be finite and positive; got "
            f"min={data.min()!r}"
        )
    p50, p90, p95, p99 = np.percentile(data, [50, 90, 95, 99])
    return RecoveryTimeSummary(
        n=int(data.size),
        mean=float(data.mean()),
        std=float(data.std(ddof=1)) if data.size > 1 else 0.0,
        minimum=float(data.min()),
        maximum=float(data.max()),
        p50=float(p50),
        p90=float(p90),
        p95=float(p95),
        p99=float(p99),
    )


def exponential_rate_mle(samples: Sequence[float]) -> Tuple[float, float]:
    """MLE of an exponential rate from inter-failure times, with its SE.

    Returns ``(rate, standard_error)`` where ``SE = rate / sqrt(n)``.
    """
    if len(samples) == 0:
        raise EstimationError("cannot estimate a rate from an empty sample")
    data = np.asarray(samples, dtype=float)
    if np.any(data <= 0.0):
        raise EstimationError("inter-failure times must be positive")
    rate = 1.0 / float(data.mean())
    return rate, rate / math.sqrt(data.size)


@dataclass(frozen=True)
class ExponentialRateEstimate:
    """An exponential rate fitted from duration samples, with its CI.

    For ``n`` i.i.d. Exp(lambda) durations with total ``T = sum(x_i)``,
    the pivot ``2 * lambda * T ~ chi2(2n)`` gives an *exact* central
    confidence interval — well-defined down to ``n = 1`` (where it is
    very wide, as it should be)::

        lambda_lo = chi2.ppf(alpha / 2, 2 n) / (2 T)
        lambda_hi = chi2.ppf(1 - alpha / 2, 2 n) / (2 T)

    This is the same chi-squared machinery as the paper's Eq. 2
    failure-rate bound, applied to *recovery* phases: the selfmodel
    pipeline fits one of these per measured phase (detect, respawn,
    restore) and propagates ``[lower, upper]`` through the cluster
    model to put an interval on the predicted availability.

    Attributes:
        rate: MLE ``n / T`` (per unit of the samples' time unit).
        lower / upper: Exact central CI bounds at ``confidence``.
        standard_error: Asymptotic SE ``rate / sqrt(n)``.
        n: Sample size.
        total: Total observed duration ``T``.
        confidence: Central confidence level of ``[lower, upper]``.
    """

    rate: float
    lower: float
    upper: float
    standard_error: float
    n: int
    total: float
    confidence: float

    @property
    def mean_duration(self) -> float:
        """The implied mean sojourn ``1 / rate``."""
        return 1.0 / self.rate

    def scaled(self, factor: float) -> "ExponentialRateEstimate":
        """The same estimate under a change of time unit.

        Durations measured in seconds fit a per-second rate; the model
        layer wants per-hour rates — ``estimate.scaled(3600.0)``
        multiplies the rate (and both bounds, and the SE) by ``factor``
        while dividing the total exposure accordingly.
        """
        if factor <= 0.0 or not math.isfinite(factor):
            raise EstimationError(
                f"scale factor must be positive and finite, got {factor}"
            )
        return ExponentialRateEstimate(
            rate=self.rate * factor,
            lower=self.lower * factor,
            upper=self.upper * factor,
            standard_error=self.standard_error * factor,
            n=self.n,
            total=self.total / factor,
            confidence=self.confidence,
        )

    def to_dict(self) -> Dict[str, float]:
        """Plain-JSON form (report artifacts)."""
        return {
            "rate": self.rate,
            "lower": self.lower,
            "upper": self.upper,
            "standard_error": self.standard_error,
            "n": self.n,
            "total": self.total,
            "confidence": self.confidence,
        }


def exponential_rate_estimate(
    samples: Sequence[float], confidence: float = 0.95
) -> ExponentialRateEstimate:
    """Fit an exponential rate with its exact chi-squared CI.

    Raises:
        EstimationError: On an empty sample, non-positive or non-finite
            durations, or a confidence outside (0, 1).
    """
    from scipy import stats

    if not 0.0 < confidence < 1.0:
        raise EstimationError(
            f"confidence must be in (0, 1), got {confidence}"
        )
    if len(samples) == 0:
        raise EstimationError("cannot estimate a rate from an empty sample")
    data = np.asarray(samples, dtype=float)
    if not np.all(np.isfinite(data)) or np.any(data <= 0.0):
        raise EstimationError(
            "durations must be finite and positive; got "
            f"min={data.min()!r}"
        )
    n = int(data.size)
    total = float(data.sum())
    rate = n / total
    alpha = 1.0 - confidence
    lower = float(stats.chi2.ppf(alpha / 2.0, 2 * n)) / (2.0 * total)
    upper = float(stats.chi2.ppf(1.0 - alpha / 2.0, 2 * n)) / (2.0 * total)
    return ExponentialRateEstimate(
        rate=rate,
        lower=lower,
        upper=upper,
        standard_error=rate / math.sqrt(n),
        n=n,
        total=total,
        confidence=confidence,
    )
