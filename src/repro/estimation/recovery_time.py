"""Summaries of measured recovery/restart times.

The paper measures restart and failover durations in the lab (e.g. HADB
restart "around 40 seconds", AS restart "less than 25 seconds") and then
plugs *conservative* values into the model (1 minute and 90 seconds).
This module provides the summary statistics used for that step, plus a
helper that applies a conservatism policy (round the chosen percentile up
to a margin factor) so the examples can show the full measured-value →
model-parameter pipeline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.exceptions import EstimationError


@dataclass(frozen=True)
class RecoveryTimeSummary:
    """Summary statistics of a sample of recovery durations (hours).

    Attributes:
        n: Sample size.
        mean: Sample mean.
        std: Sample standard deviation (ddof=1; 0.0 for n=1).
        minimum / maximum: Range.
        p50 / p90 / p95 / p99: Percentiles.
    """

    n: int
    mean: float
    std: float
    minimum: float
    maximum: float
    p50: float
    p90: float
    p95: float
    p99: float

    def conservative_value(
        self, percentile: float = 95.0, margin: float = 1.5
    ) -> float:
        """A model-ready conservative value: percentile times a margin.

        This codifies the paper's practice of setting model parameters
        above every measured value (e.g. 40 s measured -> 60 s modeled).
        """
        if not 0.0 < percentile <= 100.0:
            raise EstimationError(
                f"percentile must be in (0, 100], got {percentile}"
            )
        if margin < 1.0:
            raise EstimationError(f"margin must be >= 1, got {margin}")
        base = {50.0: self.p50, 90.0: self.p90, 95.0: self.p95, 99.0: self.p99}.get(
            percentile
        )
        if base is None:
            raise EstimationError(
                "percentile must be one of 50, 90, 95, 99 for the "
                "precomputed summary; use summarize_recovery_times on the "
                "raw sample for other percentiles"
            )
        return base * margin


def summarize_recovery_times(samples: Sequence[float]) -> RecoveryTimeSummary:
    """Summarize a sample of recovery durations.

    Raises:
        EstimationError: On an empty sample or non-positive durations
            (a zero or negative recovery time indicates a measurement
            pipeline bug).
    """
    if len(samples) == 0:
        raise EstimationError("cannot summarize an empty sample")
    data = np.asarray(samples, dtype=float)
    if not np.all(np.isfinite(data)) or np.any(data <= 0.0):
        raise EstimationError(
            "recovery times must be finite and positive; got "
            f"min={data.min()!r}"
        )
    p50, p90, p95, p99 = np.percentile(data, [50, 90, 95, 99])
    return RecoveryTimeSummary(
        n=int(data.size),
        mean=float(data.mean()),
        std=float(data.std(ddof=1)) if data.size > 1 else 0.0,
        minimum=float(data.min()),
        maximum=float(data.max()),
        p50=float(p50),
        p90=float(p90),
        p95=float(p95),
        p99=float(p99),
    )


def exponential_rate_mle(samples: Sequence[float]) -> Tuple[float, float]:
    """MLE of an exponential rate from inter-failure times, with its SE.

    Returns ``(rate, standard_error)`` where ``SE = rate / sqrt(n)``.
    """
    if len(samples) == 0:
        raise EstimationError("cannot estimate a rate from an empty sample")
    data = np.asarray(samples, dtype=float)
    if np.any(data <= 0.0):
        raise EstimationError("inter-failure times must be positive")
    rate = 1.0 / float(data.mean())
    return rate, rate / math.sqrt(data.size)
