"""Recovery-coverage estimation from fault-injection campaigns (Eq. 1).

The paper models imperfect recovery with the parameter FIR ("Fraction of
Imperfect Recovery"): the probability that an automatic recovery fails
and takes the system down.  Coverage is ``C = 1 - FIR``.

From a campaign of ``n`` injections with ``s`` successful recoveries, the
lower ``1 - alpha`` confidence bound on C is the Clopper–Pearson bound
expressed through the F distribution (paper Eq. 1)::

    C_low = s / (s + (n - s + 1) * F[1 - alpha; 2(n - s) + 2; 2 s])

The paper's numbers: 3,287 injections, all successful, give
FIR <= 0.091% at 95% confidence (quoted as "below 0.1%") and
FIR <= 0.161% at 99.5% (quoted as "below 0.2%").
"""

from __future__ import annotations

from dataclasses import dataclass

from scipy import stats

from repro.exceptions import EstimationError


@dataclass(frozen=True)
class CoverageEstimate:
    """Point estimate and lower bound for a coverage probability.

    Attributes:
        n_trials: Total fault injections.
        n_successes: Injections with successful automatic recovery.
        point: MLE ``s / n``.
        lower: Lower confidence bound on coverage at ``confidence``.
        confidence: Confidence level used.
    """

    n_trials: int
    n_successes: int
    point: float
    lower: float
    confidence: float

    @property
    def fir_point(self) -> float:
        """Point estimate of the fraction of imperfect recovery."""
        return 1.0 - self.point

    @property
    def fir_upper(self) -> float:
        """Upper bound on FIR implied by the coverage lower bound."""
        return 1.0 - self.lower


def _validate(n_trials: int, n_successes: int, confidence: float) -> None:
    if n_trials <= 0:
        raise EstimationError(f"trial count must be positive, got {n_trials}")
    if not 0 <= n_successes <= n_trials:
        raise EstimationError(
            f"success count {n_successes} must be in [0, {n_trials}]"
        )
    if not 0.0 < confidence < 1.0:
        raise EstimationError(f"confidence must be in (0, 1), got {confidence}")


def coverage_lower_bound(
    n_trials: int, n_successes: int, confidence: float = 0.95
) -> float:
    """Paper Eq. 1: lower confidence bound on coverage ``C = s/n``.

    Handles the all-successes case (``s == n``) that dominates real
    campaigns, and the degenerate all-failures case (bound is 0).

    >>> bound = coverage_lower_bound(3287, 3287, 0.95)
    >>> round((1 - bound) * 100, 3)  # FIR upper bound, percent
    0.091
    """
    _validate(n_trials, n_successes, confidence)
    if n_successes == 0:
        return 0.0
    alpha = 1.0 - confidence
    dfn = 2 * (n_trials - n_successes) + 2
    dfd = 2 * n_successes
    f_quantile = float(stats.f.ppf(1.0 - alpha, dfn, dfd))
    return n_successes / (
        n_successes + (n_trials - n_successes + 1) * f_quantile
    )


def fir_upper_bound(
    n_trials: int, n_successes: int, confidence: float = 0.95
) -> float:
    """Upper confidence bound on FIR (``1 - coverage_lower_bound``)."""
    return 1.0 - coverage_lower_bound(n_trials, n_successes, confidence)


def estimate_coverage(
    n_trials: int, n_successes: int, confidence: float = 0.95
) -> CoverageEstimate:
    """Full coverage estimate from a fault-injection campaign."""
    _validate(n_trials, n_successes, confidence)
    return CoverageEstimate(
        n_trials=n_trials,
        n_successes=n_successes,
        point=n_successes / n_trials,
        lower=coverage_lower_bound(n_trials, n_successes, confidence),
        confidence=confidence,
    )


def required_injections_for_fir(
    target_fir: float, confidence: float = 0.95
) -> int:
    """Campaign size demonstrating FIR below target if all recoveries succeed.

    Solves for the smallest all-success campaign whose FIR upper bound at
    ``confidence`` is at most ``target_fir``.  For the all-success case
    the bound reduces to ``1 - n/(n + F)`` with ``F = F[1-alpha; 2, 2n]``,
    so we search the integer n directly (the function is monotone).
    """
    if not 0.0 < target_fir < 1.0:
        raise EstimationError(f"target FIR must be in (0, 1), got {target_fir}")
    if not 0.0 < confidence < 1.0:
        raise EstimationError(f"confidence must be in (0, 1), got {confidence}")
    low, high = 1, 2
    while fir_upper_bound(high, high, confidence) > target_fir:
        high *= 2
        if high > 10**9:
            raise EstimationError(
                "campaign size exceeds 1e9; target FIR is impractically small"
            )
    while low < high:
        mid = (low + high) // 2
        if fir_upper_bound(mid, mid, confidence) <= target_fir:
            high = mid
        else:
            low = mid + 1
    return low
