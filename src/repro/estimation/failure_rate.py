"""Failure-rate estimation from life-test data (paper Eq. 2).

For an exponential failure process observed for total exposure time ``T``
(summed over all units under test) with ``n`` failures, the upper
``1 - alpha`` confidence bound on the failure rate is::

    lambda_up = chi2.ppf(1 - alpha, 2 n + 2) / (2 T)

This is the classic time-censored (Type-I) bound from Kececioglu's
handbook, and it is well-defined even when **no failure was observed**
(``n = 0``) — the case the paper uses to bound the AS instance failure
rate from a 24-day two-instance test: 1/16 days at 95% confidence and
1/9 days at 99.5%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from scipy import stats

from repro.exceptions import EstimationError


@dataclass(frozen=True)
class FailureRateEstimate:
    """Point estimate and confidence bounds for a failure rate.

    All rates are in "failures per unit of the exposure time's unit" —
    pass exposure in hours to get per-hour rates.

    Attributes:
        n_failures: Observed failure count.
        exposure: Total exposure time (unit-time summed over units).
        point: MLE ``n / T`` (0.0 when no failures were seen).
        upper: Upper confidence bound at ``confidence``.
        lower: Lower confidence bound (0.0 when ``n == 0``).
        confidence: The confidence level used for the bounds.
    """

    n_failures: int
    exposure: float
    point: float
    upper: float
    lower: float
    confidence: float

    @property
    def mtbf_point(self) -> float:
        """Mean time between failures implied by the point estimate."""
        return float("inf") if self.point == 0.0 else 1.0 / self.point

    @property
    def mtbf_lower(self) -> float:
        """Conservative (shortest) MTBF implied by the upper rate bound."""
        return 1.0 / self.upper


def _validate(n_failures: int, exposure: float, confidence: float) -> None:
    if n_failures < 0:
        raise EstimationError(f"failure count must be >= 0, got {n_failures}")
    if exposure <= 0.0:
        raise EstimationError(f"exposure must be positive, got {exposure}")
    if not 0.0 < confidence < 1.0:
        raise EstimationError(
            f"confidence must be in (0, 1), got {confidence}"
        )


def failure_rate_upper_bound(
    n_failures: int, exposure: float, confidence: float = 0.95
) -> float:
    """Paper Eq. 2: upper confidence bound on an exponential failure rate.

    >>> # The paper's AS bound: 0 failures in 2 instances x 24 days.
    >>> round(1.0 / failure_rate_upper_bound(0, 2 * 24, 0.95))  # days
    16
    >>> round(1.0 / failure_rate_upper_bound(0, 2 * 24, 0.995))
    9
    """
    _validate(n_failures, exposure, confidence)
    quantile = stats.chi2.ppf(confidence, 2 * n_failures + 2)
    return float(quantile) / (2.0 * exposure)


def failure_rate_lower_bound(
    n_failures: int, exposure: float, confidence: float = 0.95
) -> float:
    """Lower confidence bound; zero when no failures were observed."""
    _validate(n_failures, exposure, confidence)
    if n_failures == 0:
        return 0.0
    quantile = stats.chi2.ppf(1.0 - confidence, 2 * n_failures)
    return float(quantile) / (2.0 * exposure)


def estimate_failure_rate(
    n_failures: int,
    exposure: float,
    confidence: float = 0.95,
) -> FailureRateEstimate:
    """Full estimate: MLE point value plus two-sided-style bounds.

    The upper and lower bounds are each one-sided at ``confidence``
    (matching the paper's usage); callers wanting a central interval
    should pass ``confidence = 1 - alpha/2``.
    """
    _validate(n_failures, exposure, confidence)
    return FailureRateEstimate(
        n_failures=n_failures,
        exposure=float(exposure),
        point=n_failures / exposure,
        upper=failure_rate_upper_bound(n_failures, exposure, confidence),
        lower=failure_rate_lower_bound(n_failures, exposure, confidence),
        confidence=confidence,
    )


def required_exposure_for_bound(
    target_rate: float, confidence: float = 0.95, n_failures: int = 0
) -> float:
    """How much failure-free exposure demonstrates a rate below target.

    Inverse of :func:`failure_rate_upper_bound` in ``exposure``: the
    minimum total test time such that, if at most ``n_failures`` failures
    occur, the upper bound at ``confidence`` is below ``target_rate``.
    Useful for planning longevity campaigns.
    """
    if target_rate <= 0.0:
        raise EstimationError(f"target rate must be positive, got {target_rate}")
    if not 0.0 < confidence < 1.0:
        raise EstimationError(f"confidence must be in (0, 1), got {confidence}")
    if n_failures < 0:
        raise EstimationError(f"failure count must be >= 0, got {n_failures}")
    quantile = stats.chi2.ppf(confidence, 2 * n_failures + 2)
    return float(quantile) / (2.0 * target_rate)
