"""Statistical parameter estimation from measurement data.

Implements the two confidence-bound formulas the paper relies on:

* **Eq. 2** — an upper confidence bound on an exponential failure rate
  from a test campaign with ``n`` observed failures over total exposure
  ``T`` (including the important ``n = 0`` case):
  :func:`~repro.estimation.failure_rate.failure_rate_upper_bound`.
* **Eq. 1** — a lower confidence bound on a recovery-coverage probability
  ``C = 1 - FIR`` from a fault-injection campaign with ``s`` successes out
  of ``n`` injections (Clopper–Pearson via the F distribution):
  :func:`~repro.estimation.coverage.coverage_lower_bound`.

Plus supporting estimators for recovery times and generic interval
helpers used by the measurement pipeline in :mod:`repro.testbed`.
"""

from repro.estimation.failure_rate import (
    FailureRateEstimate,
    estimate_failure_rate,
    failure_rate_upper_bound,
)
from repro.estimation.coverage import (
    CoverageEstimate,
    coverage_lower_bound,
    estimate_coverage,
    fir_upper_bound,
    required_injections_for_fir,
)
from repro.estimation.failure_rate import required_exposure_for_bound
from repro.estimation.recovery_time import (
    ExponentialRateEstimate,
    RecoveryTimeSummary,
    exponential_rate_estimate,
    summarize_recovery_times,
)
from repro.estimation.intervals import (
    mean_confidence_interval,
    percentile_interval,
)

__all__ = [
    "FailureRateEstimate",
    "estimate_failure_rate",
    "failure_rate_upper_bound",
    "CoverageEstimate",
    "coverage_lower_bound",
    "estimate_coverage",
    "fir_upper_bound",
    "required_injections_for_fir",
    "required_exposure_for_bound",
    "ExponentialRateEstimate",
    "exponential_rate_estimate",
    "RecoveryTimeSummary",
    "summarize_recovery_times",
    "mean_confidence_interval",
    "percentile_interval",
]
