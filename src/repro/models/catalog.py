"""A catalog of classic availability model building blocks.

The textbook patterns every availability study reaches for (Trivedi
[19], SHARPE's example library), as ready-made
:class:`~repro.core.model.MarkovModel` builders with consistent
parameter names.  Each has a closed-form steady-state solution that the
test suite checks the numerical engine against — so the catalog doubles
as the library's analytic regression battery.

All builders take *numeric* rates (per hour) and return fully-numeric
models; wrap rates in your own symbols by editing the returned model's
transitions if you need symbolic variants.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, Sequence, Tuple

from repro.core.model import MarkovModel
from repro.exceptions import ModelError


# Named model registry -----------------------------------------------------
#
# The closed-form builders above are importable directly; the registry
# adds *named* lookup so generic consumers (the solve/sweep/uncertainty
# CLI paths) can load a model the way they load the paper's Config 1-4.
# Fitted models register themselves here too: importing
# :mod:`repro.selfmodel` adds ``"cluster"`` (the measured sharded
# cluster, built from a drill/measurement/fit artifact).

_MODEL_BUILDERS: Dict[str, Callable[..., Any]] = {}

#: Registered names whose builders live in modules that register on
#: import; :func:`build_model` imports them lazily so catalog users
#: do not pay for (or depend on) the service stack.
_LAZY_REGISTRARS: Dict[str, str] = {"cluster": "repro.selfmodel"}


def register_model_builder(
    name: str, builder: Callable[..., Any], replace: bool = False
) -> None:
    """Register a named model builder.

    Args:
        name: Lookup key for :func:`build_model`.
        builder: Callable returning a solvable model (a
            :class:`~repro.core.model.MarkovModel`, a hierarchy, or a
            configuration object with ``solve``/``solve_batch``).
        replace: Allow overwriting an existing registration (used by
            self-registering modules so re-imports stay idempotent).
    """
    if not replace and name in _MODEL_BUILDERS:
        raise ModelError(f"model builder {name!r} is already registered")
    _MODEL_BUILDERS[name] = builder


def model_builder_names() -> Tuple[str, ...]:
    """Every resolvable builder name (registered or lazily importable)."""
    return tuple(sorted(set(_MODEL_BUILDERS) | set(_LAZY_REGISTRARS)))


def build_model(name: str, **kwargs: Any) -> Any:
    """Build a registered model by name.

    Unknown names trigger the lazy registrars (e.g. ``"cluster"``
    imports :mod:`repro.selfmodel`, which registers itself) before
    failing.
    """
    if name not in _MODEL_BUILDERS and name in _LAZY_REGISTRARS:
        import importlib

        importlib.import_module(_LAZY_REGISTRARS[name])
    try:
        builder = _MODEL_BUILDERS[name]
    except KeyError:
        raise ModelError(
            f"unknown model {name!r}; registered: "
            f"{model_builder_names()}"
        ) from None
    return builder(**kwargs)


def k_of_n_model(
    n: int,
    k: int,
    failure_rate: float,
    repair_rate: float,
    repair_crews: int = 1,
    name: str = "",
) -> MarkovModel:
    """k-out-of-n:G with identical units and a repair crew pool.

    States ``live{j}`` for j = n..0; the system is up while at least
    ``k`` units are live.  Failures are per-unit (aggregate rate
    ``j * failure_rate``); repairs run up to ``repair_crews`` at once
    (aggregate ``min(n - j, crews) * repair_rate``).

    Closed form: a birth-death chain; see
    :func:`k_of_n_availability`.
    """
    if not 1 <= k <= n:
        raise ModelError(f"need 1 <= k <= n, got k={k}, n={n}")
    if failure_rate <= 0.0 or repair_rate <= 0.0:
        raise ModelError("failure and repair rates must be positive")
    if repair_crews < 1:
        raise ModelError(f"need at least one repair crew, got {repair_crews}")
    model = MarkovModel(
        name or f"{k}_of_{n}",
        f"{k}-out-of-{n}:G, {repair_crews} repair crew(s)",
    )
    for live in range(n, -1, -1):
        model.add_state(
            f"live{live}", reward=1.0 if live >= k else 0.0
        )
    for live in range(n, 0, -1):
        model.add_transition(
            f"live{live}", f"live{live - 1}", live * failure_rate
        )
    for live in range(n):
        busy = min(n - live, repair_crews)
        model.add_transition(
            f"live{live}", f"live{live + 1}", busy * repair_rate
        )
    return model


def k_of_n_availability(
    n: int,
    k: int,
    failure_rate: float,
    repair_rate: float,
    repair_crews: int = 1,
) -> float:
    """Closed-form steady-state availability of :func:`k_of_n_model`.

    Birth-death balance: ``pi_{j-1} = pi_j * (j * la) / (crews_at(j-1) * mu)``
    walking down from j = n.
    """
    if not 1 <= k <= n:
        raise ModelError(f"need 1 <= k <= n, got k={k}, n={n}")
    weights = [1.0]  # weight of live = n
    for live in range(n, 0, -1):
        busy = min(n - (live - 1), repair_crews)
        weights.append(
            weights[-1] * (live * failure_rate) / (busy * repair_rate)
        )
    total = sum(weights)
    up = sum(
        weight
        for live, weight in zip(range(n, -1, -1), weights)
        if live >= k
    )
    return up / total


def duplex_with_coverage(
    failure_rate: float,
    repair_rate: float,
    coverage: float,
    name: str = "duplex",
) -> MarkovModel:
    """The classic duplex processor with imperfect coverage.

    From ``Duplex`` a unit failure is *covered* with probability c (the
    survivor carries on; state ``Simplex``) or *uncovered* with 1 - c
    (the pair crashes; state ``Down``).  A second failure in Simplex is
    always fatal.  One repair crew; repair from Down restores the pair.

    This is the canonical demonstration that coverage, not redundancy,
    limits availability — exactly the role FIR plays in the paper's HADB
    model.
    """
    if not 0.0 <= coverage <= 1.0:
        raise ModelError(f"coverage must be in [0, 1], got {coverage}")
    if failure_rate <= 0.0 or repair_rate <= 0.0:
        raise ModelError("failure and repair rates must be positive")
    model = MarkovModel(name, "duplex with imperfect coverage")
    model.add_state("Duplex", reward=1.0)
    model.add_state("Simplex", reward=1.0)
    model.add_state("Down", reward=0.0)
    if coverage > 0.0:
        model.add_transition(
            "Duplex", "Simplex", 2.0 * failure_rate * coverage
        )
    if coverage < 1.0:
        model.add_transition(
            "Duplex", "Down", 2.0 * failure_rate * (1.0 - coverage)
        )
    model.add_transition("Simplex", "Down", failure_rate)
    model.add_transition("Simplex", "Duplex", repair_rate)
    model.add_transition("Down", "Simplex", repair_rate)
    return model


def warm_standby(
    active_failure_rate: float,
    standby_failure_rate: float,
    repair_rate: float,
    switch_coverage: float = 1.0,
    name: str = "warm_standby",
) -> MarkovModel:
    """Active unit plus one (possibly degraded-rate) standby.

    The standby fails at its own (dormant) rate while waiting.  On an
    active failure the switchover succeeds with probability
    ``switch_coverage``; a failed switch is a system outage.  One repair
    crew, repaired units return to standby duty first.

    Set ``standby_failure_rate = 0`` for a *cold* standby and equal
    rates for a *hot* standby.
    """
    if active_failure_rate <= 0.0 or repair_rate <= 0.0:
        raise ModelError("active failure and repair rates must be positive")
    if standby_failure_rate < 0.0:
        raise ModelError("standby failure rate must be non-negative")
    if not 0.0 <= switch_coverage <= 1.0:
        raise ModelError(
            f"switch coverage must be in [0, 1], got {switch_coverage}"
        )
    model = MarkovModel(name, "1 active + 1 warm standby")
    model.add_state("BothOk", reward=1.0, description="active + standby ready")
    model.add_state("OneOk", reward=1.0, description="single unit running")
    model.add_state("Down", reward=0.0)
    # Active fails: covered switch -> OneOk, else Down.
    if switch_coverage > 0.0:
        model.add_transition(
            "BothOk", "OneOk",
            active_failure_rate * switch_coverage
            + standby_failure_rate,  # standby dying also leaves one unit
        )
    if switch_coverage < 1.0:
        model.add_transition(
            "BothOk", "Down", active_failure_rate * (1.0 - switch_coverage)
        )
    model.add_transition("OneOk", "Down", active_failure_rate)
    model.add_transition("OneOk", "BothOk", repair_rate)
    model.add_transition("Down", "OneOk", repair_rate)
    return model


def series_availability(
    components: Sequence[Tuple[float, float]]
) -> float:
    """Availability of independent components in series.

    ``components`` is a sequence of ``(failure_rate, repair_rate)``
    pairs; the system is up only when every component is up, so
    availability is the product of ``mu / (la + mu)``.  Provided as the
    closed form to check hierarchical series compositions against.
    """
    if not components:
        raise ModelError("a series system needs at least one component")
    availability = 1.0
    for failure_rate, repair_rate in components:
        if failure_rate < 0.0 or repair_rate <= 0.0:
            raise ModelError(
                f"invalid component rates ({failure_rate}, {repair_rate})"
            )
        availability *= repair_rate / (failure_rate + repair_rate)
    return availability


def tmr_model(
    failure_rate: float,
    repair_rate: float,
    voter_failure_rate: float = 0.0,
    name: str = "tmr",
) -> MarkovModel:
    """Triple modular redundancy with an optional non-redundant voter.

    Three active replicas behind a majority voter: the system is up
    while at least 2 replicas (and the voter) work.  One repair crew
    serves the replicas; a voter failure is a system outage repaired at
    the same rate.  With ``voter_failure_rate = 0`` this reduces to
    2-out-of-3 (tested against :func:`k_of_n_availability`).

    The classic lesson encoded: the voter's *simplex* reliability caps
    what the redundant core can deliver.
    """
    if failure_rate <= 0.0 or repair_rate <= 0.0:
        raise ModelError("failure and repair rates must be positive")
    if voter_failure_rate < 0.0:
        raise ModelError("voter failure rate must be non-negative")
    model = MarkovModel(name, "triple modular redundancy with voter")
    model.add_state("Three", reward=1.0)
    model.add_state("Two", reward=1.0)
    model.add_state("One", reward=0.0, description="majority lost")
    model.add_state("Zero", reward=0.0)
    model.add_transition("Three", "Two", 3.0 * failure_rate)
    model.add_transition("Two", "One", 2.0 * failure_rate)
    model.add_transition("One", "Zero", failure_rate)
    model.add_transition("Two", "Three", repair_rate)
    model.add_transition("One", "Two", repair_rate)
    model.add_transition("Zero", "One", repair_rate)
    if voter_failure_rate > 0.0:
        model.add_state("VoterDown", reward=0.0)
        for state in ("Three", "Two", "One", "Zero"):
            model.add_transition(state, "VoterDown", voter_failure_rate)
        model.add_transition("VoterDown", "Three", repair_rate)
    return model


def erlang_repair_model(
    failure_rate: float,
    repair_rate: float,
    stages: int,
    name: str = "erlang_repair",
) -> MarkovModel:
    """Single unit whose repair is Erlang-``stages`` distributed.

    Markov models force exponential sojourns; the *method of stages*
    recovers deterministic-ish repairs by chaining ``stages`` exponential
    phases with rate ``stages * repair_rate`` each (keeping the mean at
    ``1 / repair_rate``).  Availability has the closed form
    ``mttf / (mttf + mttr)`` regardless of the repair distribution's
    shape — which the tests verify, making this the library's witness
    that only *means* matter for steady-state availability of alternating
    renewal processes.
    """
    if stages < 1:
        raise ModelError(f"need at least one stage, got {stages}")
    if failure_rate <= 0.0 or repair_rate <= 0.0:
        raise ModelError("failure and repair rates must be positive")
    model = MarkovModel(name, f"unit with Erlang-{stages} repair")
    model.add_state("Up", reward=1.0)
    for stage in range(1, stages + 1):
        model.add_state(f"Repair{stage}", reward=0.0)
    model.add_transition("Up", "Repair1", failure_rate)
    stage_rate = stages * repair_rate
    for stage in range(1, stages):
        model.add_transition(
            f"Repair{stage}", f"Repair{stage + 1}", stage_rate
        )
    model.add_transition(f"Repair{stages}", "Up", stage_rate)
    return model


# The classic builders register under their own names so
# :func:`build_model` resolves the whole catalog uniformly.
register_model_builder("k_of_n", k_of_n_model)
register_model_builder("duplex", duplex_with_coverage)
register_model_builder("warm_standby", warm_standby)
register_model_builder("tmr", tmr_model)
register_model_builder("erlang_repair", erlang_repair_model)
