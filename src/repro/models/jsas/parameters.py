"""The paper's model parameters (Section 5) and uncertainty ranges (Section 7).

All rates are per hour and all times in hours, following the library
convention.  Two names that the paper overloads between the HADB and AS
submodels (``Tstart_short``/``Tstart_long``) are namespaced here with
``_hadb``/``_as`` suffixes; everything else keeps the paper's spelling.

``PAPER_PARAMETERS`` carries provenance tags and plausibility bounds so
the measurement → estimation → model pipeline in the examples can show
where each value came from.  ``MEASURED_VALUES`` records the raw lab
measurements the paper quotes before conservatism was applied.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.parameters import Parameter, ParameterSet
from repro.units import HOURS_PER_YEAR, minutes, per_year, seconds

#: Raw lab measurements quoted in the paper, before conservatism.
MEASURED_VALUES: Dict[str, float] = {
    # HADB node restart after an HADB (software) failure: "around 40 s".
    "hadb_restart_seconds": 40.0,
    # Copying 1 GB of session data between nodes: "about 12 minutes".
    "hadb_copy_minutes_per_gb": 12.0,
    # AS instance restart: "less than 25 seconds".
    "as_restart_seconds": 25.0,
    # Session failover response-time increment: "sub-second".
    "session_recovery_seconds": 1.0,
    # Load-balancer health check interval: 1 minute.
    "lbp_health_check_seconds": 60.0,
}

#: The paper's fault-injection campaign: 3,287 injections, all recovered.
FAULT_INJECTION_TRIALS = 3287
FAULT_INJECTION_SUCCESSES = 3287

#: The paper's longest longevity test: 24 days on two AS instances with
#: zero observed AS failures.
LONGEVITY_TEST_DAYS = 24
LONGEVITY_TEST_INSTANCES = 2

PAPER_PARAMETERS = ParameterSet(
    [
        Parameter(
            "Acc",
            2.0,
            description=(
                "Failure-rate acceleration on surviving nodes after a "
                "failure (workload-dependency: La_i = La_0 * 2^i)"
            ),
            unit="factor",
            provenance="assumed",
        ),
        Parameter(
            "FIR",
            0.001,
            description=(
                "Fraction of imperfect recovery; upper-bounded via Eq. 1 "
                "from 3,287 all-successful fault injections"
            ),
            unit="probability",
            provenance="measured",
            bounds=(0.0, 0.002),
        ),
        # HADB node parameters --------------------------------------------
        Parameter(
            "La_hadb",
            per_year(2),
            description="HADB (restartable) failure rate per node",
            unit="1/hour",
            provenance="conservative",
            bounds=(per_year(1), per_year(4)),
        ),
        Parameter(
            "La_os",
            per_year(1),
            description="OS failure rate per node (shared by HADB and AS)",
            unit="1/hour",
            provenance="field",
            bounds=(per_year(0.5), per_year(2)),
        ),
        Parameter(
            "La_hw",
            per_year(1),
            description="HW permanent failure rate per node (shared)",
            unit="1/hour",
            provenance="field",
            bounds=(per_year(0.5), per_year(2)),
        ),
        Parameter(
            "La_mnt",
            per_year(4),
            description="Scheduled maintenance rate per HADB node",
            unit="1/hour",
            provenance="assumed",
        ),
        Parameter(
            "Tmnt",
            minutes(1),
            description="HADB maintenance switchover time",
            unit="hours",
            provenance="measured",
        ),
        Parameter(
            "Trepair",
            minutes(30),
            description=(
                "HADB spare-rebuild (repair) time; measured 12 min/GB, "
                "set to 30 min for configuration variance"
            ),
            unit="hours",
            provenance="conservative",
        ),
        Parameter(
            "Trestore",
            1.0,
            description=(
                "HADB catastrophic restore time (notice + recreate pair), "
                "7x24 on-site maintenance"
            ),
            unit="hours",
            provenance="conservative",
        ),
        Parameter(
            "Tstart_short_hadb",
            minutes(1),
            description=(
                "HADB node restart after an HADB failure; measured ~40 s, "
                "modeled at 1 min"
            ),
            unit="hours",
            provenance="conservative",
        ),
        Parameter(
            "Tstart_long_hadb",
            minutes(15),
            description="HADB node restart after an OS failure (reboot)",
            unit="hours",
            provenance="assumed",
        ),
        # AS instance parameters ------------------------------------------
        Parameter(
            "La_as",
            per_year(50),
            description=(
                "AS (restartable) failure rate per instance; conservative "
                "1/week total with HW+OS, versus the measured zero-failure "
                "upper bound of 1/16 days at 95% confidence"
            ),
            unit="1/hour",
            provenance="conservative",
            bounds=(per_year(10), per_year(50)),
        ),
        Parameter(
            "Trecovery",
            seconds(5),
            description=(
                "Session failover (recovery) time; measured sub-second, "
                "modeled at 5 s"
            ),
            unit="hours",
            provenance="conservative",
        ),
        Parameter(
            "Tstart_short_as",
            seconds(90),
            description=(
                "AS instance restart after an AS failure; measured <25 s "
                "plus the 1-min LBP health-check window, modeled at 90 s"
            ),
            unit="hours",
            provenance="conservative",
        ),
        Parameter(
            "Tstart_long_as",
            1.0,
            description=(
                "AS node recovery after an HW/OS failure (avg of 100-min "
                "HW repair and 15-min OS reboot at one each per year)"
            ),
            unit="hours",
            provenance="field",
            bounds=(0.5, 3.0),
        ),
        Parameter(
            "Tstart_all",
            minutes(30),
            description=(
                "AS restore time when all instances are down (notice + "
                "restart all), 7x24 on-site maintenance"
            ),
            unit="hours",
            provenance="conservative",
        ),
    ]
)

#: Ranges varied in the paper's uncertainty analysis (Section 7), in the
#: library's per-hour / hour units.  Keys are our parameter names.
UNCERTAINTY_RANGES: Dict[str, Tuple[float, float]] = {
    "La_as": (per_year(10), per_year(50)),
    "La_hadb": (per_year(1), per_year(4)),
    "La_os": (per_year(0.5), per_year(2)),
    "La_hw": (per_year(0.5), per_year(2)),
    "Tstart_long_as": (0.5, 3.0),
    "FIR": (0.0, 0.002),
}


def paper_values() -> Dict[str, float]:
    """The default parameterization as a plain mutable dict."""
    return PAPER_PARAMETERS.to_dict()


def total_as_failure_rate(values: Dict[str, float]) -> float:
    """``La = La_as + La_hw + La_os`` (the paper's 52/year default)."""
    return values["La_as"] + values["La_hw"] + values["La_os"]


def total_hadb_failure_rate(values: Dict[str, float]) -> float:
    """``La = La_hadb + La_hw + La_os`` (the paper's 4/year default)."""
    return values["La_hadb"] + values["La_hw"] + values["La_os"]


__all__ = [
    "PAPER_PARAMETERS",
    "MEASURED_VALUES",
    "UNCERTAINTY_RANGES",
    "FAULT_INJECTION_TRIALS",
    "FAULT_INJECTION_SUCCESSES",
    "LONGEVITY_TEST_DAYS",
    "LONGEVITY_TEST_INSTANCES",
    "paper_values",
    "total_as_failure_rate",
    "total_hadb_failure_rate",
]
