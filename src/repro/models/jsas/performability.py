"""Performability variants of the AS cluster model.

The paper notes that the ``Recovery`` state "could be a degraded state in
performability modeling" — states where the system is *up* but serving
with fewer instances deliver less capacity and worse response times.
This module implements that reading: the Fig. 4 structure with
capacity-proportional reward rates (``(N - k) / N`` with k instances
down), plus the measures that make the numbers actionable.

Strict availability (reward 1 iff any instance serves) and performability
(expected capacity) answer different questions; the gap between them is
the "brownout" the availability number hides.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.model import MarkovModel
from repro.ctmc.rewards import (
    expected_steady_state_reward,
    steady_state_availability,
)
from repro.exceptions import ModelError
from repro.models.jsas.appserver import build_appserver_model
from repro.units import MINUTES_PER_YEAR


def build_performability_appserver_model(
    n_instances: int = 2,
    repair_policy: str = "sequential",
) -> MarkovModel:
    """The AS cluster model with capacity-proportional rewards.

    Identical transition structure to
    :func:`~repro.models.jsas.appserver.build_appserver_model`; only the
    reward rates change: a state with ``k`` instances down earns
    ``(N - k) / N`` instead of 1.0.  The total-outage state still earns 0.
    """
    base = build_appserver_model(n_instances, repair_policy=repair_policy)
    model = MarkovModel(
        f"{base.name}_performability",
        base.description + " — capacity-proportional rewards",
    )

    def down_count(state_name: str) -> int:
        if state_name == "All_Work":
            return 0
        if state_name.endswith("_Down"):
            return n_instances
        if state_name in ("Recovery", "1DownShort", "1DownLong"):
            return 1
        # Generalized names: Recovery_k / Short_k / Long_k.
        try:
            return int(state_name.rsplit("_", 1)[1])
        except (IndexError, ValueError):  # pragma: no cover - defensive
            raise ModelError(f"unrecognized state name {state_name!r}")

    for state in base.states:
        k = down_count(state.name)
        reward = (n_instances - k) / n_instances
        model.add_state(state.name, reward=reward, description=state.description)
    for transition in base.transitions:
        model.add_transition(
            transition.source,
            transition.target,
            transition.rate,
            transition.description,
        )
    return model


@dataclass(frozen=True)
class PerformabilityResult:
    """Capacity-oriented metrics next to the strict availability ones.

    Attributes:
        expected_capacity: Long-run average fraction of full capacity
            delivered (the performability measure).
        availability: Strict availability of the same chain (any
            instance serving counts as up).
        lost_capacity_minutes: Yearly "capacity-minutes" lost —
            ``(1 - expected_capacity) * minutes_per_year``.  The strict
            downtime is a lower bound on this; the difference is time
            spent serving degraded.
        degraded_minutes: The brownout component:
            ``lost_capacity_minutes - strict downtime``.
    """

    expected_capacity: float
    availability: float
    lost_capacity_minutes: float
    degraded_minutes: float

    def summary(self) -> str:
        return (
            f"capacity={self.expected_capacity:.7%}  "
            f"availability={self.availability:.7%}  "
            f"lost capacity={self.lost_capacity_minutes:.3g} min/yr "
            f"(of which degraded-service: {self.degraded_minutes:.3g})"
        )


def evaluate_performability(
    n_instances: int,
    values: Mapping[str, float],
    repair_policy: str = "sequential",
) -> PerformabilityResult:
    """Solve both readings of the AS cluster chain and compare."""
    perf_model = build_performability_appserver_model(
        n_instances, repair_policy
    )
    capacity = expected_steady_state_reward(perf_model, values)
    strict = steady_state_availability(
        build_appserver_model(n_instances, repair_policy=repair_policy),
        values,
    )
    lost_capacity = (1.0 - capacity) * MINUTES_PER_YEAR
    degraded = lost_capacity - strict.yearly_downtime_minutes
    return PerformabilityResult(
        expected_capacity=capacity,
        availability=strict.availability,
        lost_capacity_minutes=lost_capacity,
        degraded_minutes=max(0.0, degraded),
    )
