"""Application Server cluster models (paper Fig. 4 and its generalization).

Three builders:

* :func:`build_appserver_model` with ``n_instances=2`` — exactly the
  paper's Fig. 4 five-state model.
* :func:`build_appserver_model` with ``n_instances > 2`` — the
  generalized level model the paper mentions but does not detail.  Level
  ``k`` (k instances down) carries the same three phases as Fig. 4
  (``Recovery_k``, ``Short_k``, ``Long_k``); per-instance failure rates
  follow the paper's workload-dependency law ``La_i = La_0 * 2^i``, so
  the aggregate failure rate at level k is ``(N - k) * 2^k * La``.  At
  ``n_instances=2`` the generalized construction reduces *exactly* to
  Fig. 4 (property-tested).
* :func:`build_single_instance_model` — Table 3's 1-instance baseline
  with no failover: restart in ``Tstart_short_as`` for AS failures and
  ``Tstart_long_as`` for HW/OS failures.

Repair policies for the generalized model:

* ``"sequential"`` (default) — one instance is restarted at a time; when
  its restart completes the next one begins, re-branching short/long with
  probability FSS.  This matches the paper's published Config 2 numbers.
* ``"parallel"`` — all down instances restart concurrently, modeled by
  scaling the phase exit rates by the number of concurrently restarting
  instances.  Provided as an ablation (see the ablation benchmark).

Required parameters: ``La_as``, ``La_os``, ``La_hw``, ``Acc``,
``Trecovery``, ``Tstart_short_as``, ``Tstart_long_as``, ``Tstart_all``.
The fraction of short restarts ``FSS = La_as / La`` is expressed
symbolically, so it tracks the sampled failure rates during uncertainty
analysis exactly as in the paper.
"""

from __future__ import annotations

from repro.core.model import MarkovModel
from repro.exceptions import ModelError

#: Total per-instance failure rate and the short-restart fraction.
_LA = "(La_as + La_os + La_hw)"
_FSS = f"(La_as / {_LA})"

REPAIR_POLICIES = ("sequential", "parallel")


def build_appserver_model(
    n_instances: int = 2,
    repair_policy: str = "sequential",
    name: str = "",
) -> MarkovModel:
    """Build the AS cluster model for ``n_instances`` >= 2.

    States: ``All_Work``; for each level k in 1..N-1 the phases
    ``Recovery_k`` (session failover in progress), ``Short_k`` (instance
    restarting from an AS failure) and ``Long_k`` (instance recovering
    from an HW/OS failure); and the failure state ``N_Down``.

    For ``n_instances == 2`` the state names match the paper's Fig. 4
    (``Recovery``, ``1DownShort``, ``1DownLong``, ``2_Down``).
    """
    if n_instances < 2:
        raise ModelError(
            "build_appserver_model requires n_instances >= 2; use "
            "build_single_instance_model for the no-failover baseline"
        )
    if repair_policy not in REPAIR_POLICIES:
        raise ModelError(
            f"unknown repair policy {repair_policy!r}; expected one of "
            f"{REPAIR_POLICIES}"
        )
    n = n_instances
    model = MarkovModel(
        name or f"appserver_{n}",
        f"Application Server cluster, {n} instances, "
        f"{repair_policy} restart (paper Fig. 4 generalization)",
    )

    def recovery(k: int) -> str:
        return "Recovery" if (n == 2 and k == 1) else f"Recovery_{k}"

    def short(k: int) -> str:
        return "1DownShort" if (n == 2 and k == 1) else f"Short_{k}"

    def long_(k: int) -> str:
        return "1DownLong" if (n == 2 and k == 1) else f"Long_{k}"

    down_name = "2_Down" if n == 2 else f"{n}_Down"

    model.add_state("All_Work", reward=1.0, description="all instances up")
    for k in range(1, n):
        model.add_state(
            recovery(k), reward=1.0,
            description=f"{k} down, session failover in progress",
        )
        model.add_state(
            short(k), reward=1.0,
            description=f"{k} down, AS restart in progress",
        )
        model.add_state(
            long_(k), reward=1.0,
            description=f"{k} down, HW/OS recovery in progress",
        )
    model.add_state(
        down_name, reward=0.0, description="all instances down"
    )

    def failure_rate(k: int) -> str:
        """Aggregate failure rate with k instances already down.

        Workload dependency: each of the (N - k) surviving instances
        fails at ``La * Acc^k`` (the paper's doubling law with Acc = 2).
        """
        survivors = n - k
        if k == 0:
            return f"{survivors} * {_LA}"
        return f"{survivors} * (Acc ** {k}) * {_LA}"

    def repair_scale(k: int) -> str:
        """Restart-rate multiplier at level k under the chosen policy."""
        if repair_policy == "sequential" or k == 1:
            return ""
        return f"{k} * "

    # Failure cascade: each new failure triggers a session failover.
    model.add_transition(
        "All_Work", recovery(1), failure_rate(0), "first instance failure"
    )
    for k in range(1, n):
        next_state = down_name if k == n - 1 else recovery(k + 1)
        for phase in (recovery(k), short(k), long_(k)):
            model.add_transition(
                phase, next_state, failure_rate(k),
                "further failure on accelerated survivors",
            )

    # Phase progression within a level: failover completes, then branch
    # short/long by failure type.
    for k in range(1, n):
        model.add_transition(
            recovery(k), short(k), f"{_FSS} / Trecovery",
            "failover done; AS-failure restart begins",
        )
        model.add_transition(
            recovery(k), long_(k), f"(1 - {_FSS}) / Trecovery",
            "failover done; HW/OS recovery begins",
        )

    # Restart completions step one level down (sequential) possibly
    # re-branching by the type of the next queued restart.
    for k in range(1, n):
        short_rate = f"{repair_scale(k)}1 / Tstart_short_as"
        long_rate = f"{repair_scale(k)}1 / Tstart_long_as"
        if k == 1:
            model.add_transition(short(k), "All_Work", short_rate)
            model.add_transition(long_(k), "All_Work", long_rate)
        else:
            model.add_transition(
                short(k), short(k - 1), f"({short_rate}) * {_FSS}",
                "restart done; next queued restart is short",
            )
            model.add_transition(
                short(k), long_(k - 1), f"({short_rate}) * (1 - {_FSS})",
                "restart done; next queued restart is long",
            )
            model.add_transition(
                long_(k), short(k - 1), f"({long_rate}) * {_FSS}",
                "recovery done; next queued restart is short",
            )
            model.add_transition(
                long_(k), long_(k - 1), f"({long_rate}) * (1 - {_FSS})",
                "recovery done; next queued restart is long",
            )

    # Total outage: operator restarts everything.
    model.add_transition(
        down_name, "All_Work", "1 / Tstart_all", "operator restore"
    )
    return model


def build_single_instance_model(name: str = "appserver_1") -> MarkovModel:
    """Table 3's 1-instance baseline: no failover, no redundancy.

    Three states: ``Up``, ``DownShort`` (AS failure, restart in
    ``Tstart_short_as``), ``DownLong`` (HW/OS failure, recovery in
    ``Tstart_long_as``).  Both down states are outages.
    """
    model = MarkovModel(
        name,
        "Single AS instance without failover (Table 3 row 1)",
    )
    model.add_state("Up", reward=1.0)
    model.add_state("DownShort", reward=0.0, description="AS restart")
    model.add_state("DownLong", reward=0.0, description="HW/OS recovery")
    model.add_transition("Up", "DownShort", "La_as")
    model.add_transition("Up", "DownLong", "La_os + La_hw")
    model.add_transition("DownShort", "Up", "1 / Tstart_short_as")
    model.add_transition("DownLong", "Up", "1 / Tstart_long_as")
    return model


def appserver_parameter_names() -> tuple:
    """The parameter names the AS cluster model consumes."""
    return (
        "La_as",
        "La_os",
        "La_hw",
        "Acc",
        "Trecovery",
        "Tstart_short_as",
        "Tstart_long_as",
        "Tstart_all",
    )
