"""Configuration comparison (paper Table 3) and uncertainty setup.

Table 3 compares six configurations: a single instance without HADB and
then N instances with N HADB pairs for N in {2, 4, 6, 8, 10}.  This
module sweeps them and formats the comparison, and builds the
distribution set for the Figs. 7-8 uncertainty analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.compiled import ColumnLike
from repro.exceptions import EstimationError
from repro.hierarchy import HierarchicalResult
from repro.models.jsas.parameters import (
    PAPER_PARAMETERS,
    UNCERTAINTY_RANGES,
)
from repro.models.jsas.system import JsasConfiguration
from repro.uncertainty import Uniform, UncertaintyAnalysis, UncertaintyResult

#: Metrics a batch-capable configuration metric can report.
CONFIG_METRICS = ("availability", "yearly_downtime_minutes", "mtbf_hours")

#: The (n_instances, n_pairs) rows of the paper's Table 3.
TABLE3_CONFIGURATIONS: Tuple[Tuple[int, int], ...] = (
    (1, 0),
    (2, 2),
    (4, 4),
    (6, 6),
    (8, 8),
    (10, 10),
)


@dataclass(frozen=True)
class ConfigurationComparison:
    """One row of the Table 3 comparison."""

    n_instances: int
    n_pairs: int
    availability: float
    yearly_downtime_minutes: float
    mtbf_hours: float
    result: HierarchicalResult

    def as_row(self) -> Tuple[str, str, str, str, str]:
        pairs = str(self.n_pairs) if self.n_pairs else "N/A"
        return (
            str(self.n_instances),
            pairs,
            f"{self.availability:.5%}",
            f"{self.yearly_downtime_minutes:.2f} min",
            f"{self.mtbf_hours:,.0f}",
        )


class HierarchicalConfigMetric:
    """A batch-capable metric over one JSAS configuration.

    Instances are plain callables (``metric(params) -> float``, solving
    the hierarchy once per call) and additionally expose
    :meth:`evaluate_batch`, which the drivers in
    :mod:`repro.uncertainty.analysis` and
    :mod:`repro.sensitivity.parametric` detect to route whole sample
    batches through the compiled engine.  Both paths produce
    bit-identical values for ``method="direct"`` solves.
    """

    def __init__(
        self,
        config: JsasConfiguration,
        metric: str = "yearly_downtime_minutes",
        abstraction: str = "mttf",
        method: str = "auto",
    ) -> None:
        if metric not in CONFIG_METRICS:
            raise EstimationError(
                f"unknown configuration metric {metric!r}; expected one of "
                f"{CONFIG_METRICS}"
            )
        self.config = config
        self.metric = metric
        self.abstraction = abstraction
        self.method = method

    def __call__(self, sampled: Mapping[str, float]) -> float:
        result = self.config.solve(
            sampled, method=self.method, abstraction=self.abstraction
        )
        return float(getattr(result, self.metric))

    def evaluate_batch(
        self, columns: Mapping[str, ColumnLike], n_samples: int
    ) -> np.ndarray:
        solution = self.config.solve_batch(
            columns,
            n_samples=n_samples,
            method=self.method,
            abstraction=self.abstraction,
        )
        return solution.metric_array(self.metric)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"HierarchicalConfigMetric({self.config.name!r}, "
            f"metric={self.metric!r})"
        )


def compare_configurations(
    configurations: Sequence[Tuple[int, int]] = TABLE3_CONFIGURATIONS,
    values: Optional[Mapping[str, float]] = None,
    abstraction: str = "mttf",
    engine: str = "compiled",
    method: str = "auto",
) -> List[ConfigurationComparison]:
    """Solve each configuration and collect the Table 3 metrics.

    Args:
        engine: ``"compiled"`` (default) solves through the cached
            compiled hierarchies; ``"scalar"`` rebuilds and solves each
            model the interpreted way.  Both produce identical rows.
        method: Steady-state method; the default ``"auto"`` picks the
            structured banded solver for large-N AS submodels, so a
            configuration sweep can include ``n_instances`` in the
            hundreds without falling off the dense-solver cliff.
    """
    if engine not in ("compiled", "scalar"):
        raise EstimationError(
            f"unknown engine {engine!r}; expected 'compiled' or 'scalar'"
        )
    values = dict(values) if values is not None else PAPER_PARAMETERS.to_dict()
    rows: List[ConfigurationComparison] = []
    for n_instances, n_pairs in configurations:
        config = JsasConfiguration(n_instances=n_instances, n_pairs=n_pairs)
        if engine == "compiled":
            result = config.solve_compiled(
                values, method=method, abstraction=abstraction
            )
        else:
            result = config.solve(
                values, method=method, abstraction=abstraction
            )
        rows.append(
            ConfigurationComparison(
                n_instances=n_instances,
                n_pairs=n_pairs,
                availability=result.availability,
                yearly_downtime_minutes=result.yearly_downtime_minutes,
                mtbf_hours=result.mtbf_hours,
                result=result,
            )
        )
    return rows


def optimal_configuration(
    rows: Sequence[ConfigurationComparison],
) -> ConfigurationComparison:
    """The availability-optimal row (the paper finds 4 AS + 4 pairs)."""
    if not rows:
        raise ValueError("no configurations to compare")
    return max(rows, key=lambda row: row.availability)


def uncertainty_distributions() -> Dict[str, Uniform]:
    """Uniform distributions over the paper's Section 7 ranges."""
    return {
        name: Uniform(low, high)
        for name, (low, high) in UNCERTAINTY_RANGES.items()
    }


def build_uncertainty_analysis(
    config: JsasConfiguration,
    values: Optional[Mapping[str, float]] = None,
    metric: str = "yearly_downtime_minutes",
    abstraction: str = "mttf",
    method: str = "auto",
) -> UncertaintyAnalysis:
    """The paper's Figs. 7-8 analysis for a configuration.

    ``metric`` may be ``"yearly_downtime_minutes"`` (the figures' y-axis),
    ``"availability"`` or ``"mtbf_hours"``.
    """
    base = dict(values) if values is not None else PAPER_PARAMETERS.to_dict()
    return UncertaintyAnalysis(
        metric=HierarchicalConfigMetric(
            config, metric=metric, abstraction=abstraction, method=method
        ),
        distributions=uncertainty_distributions(),
        base_values=base,
        metric_name=metric,
    )


def run_uncertainty(
    config: JsasConfiguration,
    n_samples: int = 1000,
    seed: Optional[int] = None,
    **kwargs,
) -> UncertaintyResult:
    """One-call version of the paper's uncertainty runs (1000 samples)."""
    analysis = build_uncertainty_analysis(config, **kwargs)
    return analysis.run(n_samples=n_samples, seed=seed)
