"""Configuration comparison (paper Table 3) and uncertainty setup.

Table 3 compares six configurations: a single instance without HADB and
then N instances with N HADB pairs for N in {2, 4, 6, 8, 10}.  This
module sweeps them and formats the comparison, and builds the
distribution set for the Figs. 7-8 uncertainty analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.hierarchy import HierarchicalResult
from repro.models.jsas.parameters import (
    PAPER_PARAMETERS,
    UNCERTAINTY_RANGES,
)
from repro.models.jsas.system import JsasConfiguration
from repro.uncertainty import Uniform, UncertaintyAnalysis, UncertaintyResult

#: The (n_instances, n_pairs) rows of the paper's Table 3.
TABLE3_CONFIGURATIONS: Tuple[Tuple[int, int], ...] = (
    (1, 0),
    (2, 2),
    (4, 4),
    (6, 6),
    (8, 8),
    (10, 10),
)


@dataclass(frozen=True)
class ConfigurationComparison:
    """One row of the Table 3 comparison."""

    n_instances: int
    n_pairs: int
    availability: float
    yearly_downtime_minutes: float
    mtbf_hours: float
    result: HierarchicalResult

    def as_row(self) -> Tuple[str, str, str, str, str]:
        pairs = str(self.n_pairs) if self.n_pairs else "N/A"
        return (
            str(self.n_instances),
            pairs,
            f"{self.availability:.5%}",
            f"{self.yearly_downtime_minutes:.2f} min",
            f"{self.mtbf_hours:,.0f}",
        )


def compare_configurations(
    configurations: Sequence[Tuple[int, int]] = TABLE3_CONFIGURATIONS,
    values: Optional[Mapping[str, float]] = None,
    abstraction: str = "mttf",
) -> List[ConfigurationComparison]:
    """Solve each configuration and collect the Table 3 metrics."""
    values = dict(values) if values is not None else PAPER_PARAMETERS.to_dict()
    rows: List[ConfigurationComparison] = []
    for n_instances, n_pairs in configurations:
        config = JsasConfiguration(n_instances=n_instances, n_pairs=n_pairs)
        result = config.solve(values, abstraction=abstraction)
        rows.append(
            ConfigurationComparison(
                n_instances=n_instances,
                n_pairs=n_pairs,
                availability=result.availability,
                yearly_downtime_minutes=result.yearly_downtime_minutes,
                mtbf_hours=result.mtbf_hours,
                result=result,
            )
        )
    return rows


def optimal_configuration(
    rows: Sequence[ConfigurationComparison],
) -> ConfigurationComparison:
    """The availability-optimal row (the paper finds 4 AS + 4 pairs)."""
    if not rows:
        raise ValueError("no configurations to compare")
    return max(rows, key=lambda row: row.availability)


def uncertainty_distributions() -> Dict[str, Uniform]:
    """Uniform distributions over the paper's Section 7 ranges."""
    return {
        name: Uniform(low, high)
        for name, (low, high) in UNCERTAINTY_RANGES.items()
    }


def build_uncertainty_analysis(
    config: JsasConfiguration,
    values: Optional[Mapping[str, float]] = None,
    metric: str = "yearly_downtime_minutes",
    abstraction: str = "mttf",
) -> UncertaintyAnalysis:
    """The paper's Figs. 7-8 analysis for a configuration.

    ``metric`` may be ``"yearly_downtime_minutes"`` (the figures' y-axis),
    ``"availability"`` or ``"mtbf_hours"``.
    """
    base = dict(values) if values is not None else PAPER_PARAMETERS.to_dict()

    def evaluate(sampled: Dict[str, float]) -> float:
        result = config.solve(sampled, abstraction=abstraction)
        return float(getattr(result, metric))

    return UncertaintyAnalysis(
        metric=evaluate,
        distributions=uncertainty_distributions(),
        base_values=base,
        metric_name=metric,
    )


def run_uncertainty(
    config: JsasConfiguration,
    n_samples: int = 1000,
    seed: Optional[int] = None,
    **kwargs,
) -> UncertaintyResult:
    """One-call version of the paper's uncertainty runs (1000 samples)."""
    analysis = build_uncertainty_analysis(config, **kwargs)
    return analysis.run(n_samples=n_samples, seed=seed)
