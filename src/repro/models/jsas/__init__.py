"""The paper's JSAS EE7 availability models.

Public surface:

* :data:`PAPER_PARAMETERS` — the Section 5 parameter set.
* :func:`build_hadb_pair_model` — Fig. 3.
* :func:`build_appserver_model` / :func:`build_single_instance_model` —
  Fig. 4 and its generalization / the no-failover baseline.
* :func:`build_system_model` — Fig. 2.
* :class:`JsasConfiguration`, :data:`CONFIG_1`, :data:`CONFIG_2`,
  :func:`build_configuration` — solvable deployments.
* :func:`compare_configurations` — Table 3.
* :func:`run_uncertainty` — Figs. 7-8.
"""

from repro.models.jsas.parameters import (
    FAULT_INJECTION_SUCCESSES,
    FAULT_INJECTION_TRIALS,
    LONGEVITY_TEST_DAYS,
    LONGEVITY_TEST_INSTANCES,
    MEASURED_VALUES,
    PAPER_PARAMETERS,
    UNCERTAINTY_RANGES,
    paper_values,
)
from repro.models.jsas.hadb import build_hadb_pair_model
from repro.models.jsas.appserver import (
    build_appserver_model,
    build_single_instance_model,
)
from repro.models.jsas.system import (
    CONFIG_1,
    CONFIG_2,
    JsasConfiguration,
    build_configuration,
    build_system_model,
)
from repro.models.jsas.configs import (
    TABLE3_CONFIGURATIONS,
    ConfigurationComparison,
    HierarchicalConfigMetric,
    build_uncertainty_analysis,
    compare_configurations,
    optimal_configuration,
    run_uncertainty,
    uncertainty_distributions,
)
from repro.models.jsas.performability import (
    PerformabilityResult,
    build_performability_appserver_model,
    evaluate_performability,
)
from repro.models.jsas.extensions import (
    EXTENSION_PARAMETERS,
    build_hadb_pair_model_with_human_error,
    build_upgrade_appserver_model,
    compare_upgrade_strategies,
    extension_values,
)
from repro.models.jsas.planner import (
    PlannerRecommendation,
    plan_configuration,
)
from repro.models.jsas.assessment import Assessment, generate_assessment

__all__ = [
    "PAPER_PARAMETERS",
    "MEASURED_VALUES",
    "UNCERTAINTY_RANGES",
    "FAULT_INJECTION_TRIALS",
    "FAULT_INJECTION_SUCCESSES",
    "LONGEVITY_TEST_DAYS",
    "LONGEVITY_TEST_INSTANCES",
    "paper_values",
    "build_hadb_pair_model",
    "build_appserver_model",
    "build_single_instance_model",
    "build_system_model",
    "JsasConfiguration",
    "CONFIG_1",
    "CONFIG_2",
    "build_configuration",
    "TABLE3_CONFIGURATIONS",
    "ConfigurationComparison",
    "HierarchicalConfigMetric",
    "compare_configurations",
    "optimal_configuration",
    "build_uncertainty_analysis",
    "run_uncertainty",
    "uncertainty_distributions",
    "PerformabilityResult",
    "build_performability_appserver_model",
    "evaluate_performability",
    "EXTENSION_PARAMETERS",
    "build_hadb_pair_model_with_human_error",
    "build_upgrade_appserver_model",
    "compare_upgrade_strategies",
    "extension_values",
    "PlannerRecommendation",
    "plan_configuration",
    "Assessment",
    "generate_assessment",
]
