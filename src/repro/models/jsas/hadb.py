"""The HADB node-pair availability model (paper Fig. 3).

Six states:

* ``Ok`` — both nodes working (up).
* ``RestartShort`` — one node restarting from an HADB (software) failure
  (up; the companion node carries the load).
* ``RestartLong`` — one node restarting from an OS failure (up).
* ``Repair`` — a spare node being rebuilt after an HW failure (up).
* ``Maintenance`` — one node switched out for scheduled service (up).
* ``2_Down`` — both nodes down; session data for the pair's fragment is
  lost and human intervention recreates the pair (down).

Transition structure:

* From ``Ok`` each of the two nodes fails at ``La = La_hadb + La_os +
  La_hw``; with probability ``1 - FIR`` the automatic recovery engages
  (branching to the recovery state matching the failure type) and with
  probability ``FIR`` the recovery is imperfect and takes the pair down.
* Scheduled maintenance pulls a node out at ``2 * La_mnt`` (the paper's
  ``La_mnt`` is per node; the published Table 3 MTBF figures are only
  reproduced with the per-node reading — see EXPERIMENTS.md).
* In any single-node state the surviving node's failure rate is
  accelerated by ``Acc`` (workload dependency); a second failure is a
  catastrophic ``2_Down``.
* ``2_Down`` restores to ``Ok`` at ``1 / Trestore``.
"""

from __future__ import annotations

from repro.core.model import MarkovModel

#: Total per-node failure rate expression reused across arcs.
_LA = "(La_hadb + La_os + La_hw)"


def build_hadb_pair_model(name: str = "hadb_pair") -> MarkovModel:
    """Build the Fig. 3 HADB node-pair model.

    Required parameters: ``La_hadb``, ``La_os``, ``La_hw``, ``La_mnt``,
    ``FIR``, ``Acc``, ``Tstart_short_hadb``, ``Tstart_long_hadb``,
    ``Trepair``, ``Tmnt``, ``Trestore``.
    """
    model = MarkovModel(
        name,
        "HADB node pair (paper Fig. 3): mirrored nodes with restart, "
        "spare rebuild, maintenance, and imperfect recovery",
    )
    model.add_state("Ok", reward=1.0, description="both nodes working")
    model.add_state(
        "RestartShort", reward=1.0, description="restart from HADB failure"
    )
    model.add_state(
        "RestartLong", reward=1.0, description="restart from OS failure"
    )
    model.add_state(
        "Repair", reward=1.0, description="spare rebuild after HW failure"
    )
    model.add_state(
        "Maintenance", reward=1.0, description="node out for service"
    )
    model.add_state(
        "2_Down", reward=0.0, description="pair lost; session data gone"
    )

    # First failures from the healthy pair, split by type, covered (1-FIR).
    model.add_transition(
        "Ok", "RestartShort", "2 * La_hadb * (1 - FIR)",
        "HADB failure on either node, recovery engages",
    )
    model.add_transition(
        "Ok", "RestartLong", "2 * La_os * (1 - FIR)",
        "OS failure on either node, reboot",
    )
    model.add_transition(
        "Ok", "Repair", "2 * La_hw * (1 - FIR)",
        "HW failure on either node, spare rebuild starts",
    )
    # Imperfect recovery takes the pair straight down.
    model.add_transition(
        "Ok", "2_Down", f"2 * {_LA} * FIR",
        "imperfect recovery of a first failure",
    )
    # Scheduled maintenance (per-node rate).
    model.add_transition(
        "Ok", "Maintenance", "2 * La_mnt", "scheduled node maintenance"
    )

    # Successful recoveries return to Ok.
    model.add_transition("RestartShort", "Ok", "1 / Tstart_short_hadb")
    model.add_transition("RestartLong", "Ok", "1 / Tstart_long_hadb")
    model.add_transition("Repair", "Ok", "1 / Trepair")
    model.add_transition("Maintenance", "Ok", "1 / Tmnt")

    # Second failure on the surviving (accelerated) node is catastrophic.
    for degraded in ("RestartShort", "RestartLong", "Repair", "Maintenance"):
        model.add_transition(
            degraded, "2_Down", f"Acc * {_LA}",
            "second failure during recovery/maintenance",
        )

    # Human-driven restore of the pair.
    model.add_transition("2_Down", "Ok", "1 / Trestore", "recreate the pair")
    return model


def hadb_parameter_names() -> tuple:
    """The parameter names the HADB pair model consumes."""
    return (
        "La_hadb",
        "La_os",
        "La_hw",
        "La_mnt",
        "FIR",
        "Acc",
        "Tstart_short_hadb",
        "Tstart_long_hadb",
        "Trepair",
        "Tmnt",
        "Trestore",
    )
