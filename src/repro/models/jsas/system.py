"""The top-level JSAS system model (paper Fig. 2) and configuration solver.

The top model has three states:

* ``Ok`` — at least one AS instance up and every HADB pair has a live
  node (up).
* ``AS_Fail`` — all AS instances down (down).
* ``HADB_Fail`` — some HADB pair suffered a double failure (down).

Rates come from the submodels via the hierarchical (Lambda, Mu)
abstraction: ``Ok -> AS_Fail`` at ``La_appl``, ``Ok -> HADB_Fail`` at
``N_pair * La_hadb_pair`` (each pair fails independently and any pair's
loss is a system loss), with the matching recovery rates back to ``Ok``.

:class:`JsasConfiguration` packages the whole stack: it builds the right
submodels for a given instance/pair count, wires the hierarchy, and
solves it for a parameter set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from repro import obs
from repro.core.compiled import ColumnLike
from repro.core.model import MarkovModel
from repro.exceptions import ModelError
from repro.hierarchy import (
    BatchHierarchicalSolution,
    CompiledHierarchy,
    HierarchicalModel,
    HierarchicalResult,
)
from repro.models.jsas.appserver import (
    build_appserver_model,
    build_single_instance_model,
)
from repro.models.jsas.hadb import build_hadb_pair_model

#: Shared hierarchy instances keyed by configuration shape, so repeated
#: solves of the same configuration (Table 3 sweeps, uncertainty runs)
#: reuse one compiled hierarchy instead of rebuilding and re-validating
#: the models every call.
_HIERARCHY_CACHE: Dict[Tuple[int, int, int, str], HierarchicalModel] = {}


def build_system_model(
    include_hadb: bool = True, name: str = "jsas_system"
) -> MarkovModel:
    """Build the Fig. 2 top-level model.

    Args:
        include_hadb: When False (the 1-instance baseline has no HADB in
            Table 3), the ``HADB_Fail`` branch is omitted.

    Parameters consumed: ``La_appl``, ``Mu_appl`` and, when
    ``include_hadb``, ``La_hadb_pair``, ``Mu_hadb_pair``, ``N_pair``.
    """
    model = MarkovModel(
        name, "JSAS system model (paper Fig. 2): AS cluster + HADB pairs"
    )
    model.add_state("Ok", reward=1.0, description="system serving requests")
    model.add_state(
        "AS_Fail", reward=0.0, description="all AS instances down"
    )
    model.add_transition("Ok", "AS_Fail", "La_appl")
    model.add_transition("AS_Fail", "Ok", "Mu_appl")
    if include_hadb:
        model.add_state(
            "HADB_Fail", reward=0.0,
            description="an HADB pair lost both nodes",
        )
        model.add_transition("Ok", "HADB_Fail", "N_pair * La_hadb_pair")
        model.add_transition("HADB_Fail", "Ok", "Mu_hadb_pair")
    return model


@dataclass
class JsasConfiguration:
    """A deployable JSAS configuration, solvable for availability.

    Attributes:
        n_instances: Number of AS instances (>= 1).
        n_pairs: Number of HADB node pairs (0 disables the HADB tier,
            as in Table 3's single-instance row).
        n_spares: Spare HADB nodes.  Documentary: the Fig. 3 model
            assumes a spare is available whenever a rebuild starts, which
            holds for the paper's configurations (2 spares).
        repair_policy: Restart policy for the generalized AS model
            (``"sequential"`` matches the paper; see
            :mod:`repro.models.jsas.appserver`).
    """

    n_instances: int
    n_pairs: int
    n_spares: int = 2
    repair_policy: str = "sequential"

    def __post_init__(self) -> None:
        if self.n_instances < 1:
            raise ModelError(
                f"need at least one AS instance, got {self.n_instances}"
            )
        if self.n_pairs < 0:
            raise ModelError(f"negative pair count {self.n_pairs}")
        if self.n_spares < 0:
            raise ModelError(f"negative spare count {self.n_spares}")

    @property
    def name(self) -> str:
        return f"jsas_{self.n_instances}as_{self.n_pairs}pairs"

    def build_appserver_submodel(self) -> MarkovModel:
        """The AS submodel appropriate for this instance count."""
        if self.n_instances == 1:
            return build_single_instance_model()
        return build_appserver_model(
            self.n_instances, repair_policy=self.repair_policy
        )

    def build_hierarchy(self) -> HierarchicalModel:
        """Assemble the full two-level hierarchical model."""
        include_hadb = self.n_pairs > 0
        top = build_system_model(include_hadb=include_hadb, name=self.name)
        hierarchy = HierarchicalModel(top)

        appserver = self.build_appserver_submodel()
        hierarchy.add_submodel(
            appserver, attribute_states=("AS_Fail",), name="appserver"
        )
        hierarchy.bind("La_appl", "appserver", "failure_rate")
        hierarchy.bind("Mu_appl", "appserver", "recovery_rate")

        if include_hadb:
            hadb = build_hadb_pair_model()
            hierarchy.add_submodel(
                hadb, attribute_states=("HADB_Fail",), name="hadb"
            )
            hierarchy.bind("La_hadb_pair", "hadb", "failure_rate")
            hierarchy.bind("Mu_hadb_pair", "hadb", "recovery_rate")
        return hierarchy

    def hierarchy(self) -> HierarchicalModel:
        """A shared, cached hierarchy for this configuration shape.

        Unlike :meth:`build_hierarchy` (always fresh), this reuses one
        instance per ``(n_instances, n_pairs, n_spares, repair_policy)``
        so the compiled form survives across solver calls.
        """
        key = (
            self.n_instances,
            self.n_pairs,
            self.n_spares,
            self.repair_policy,
        )
        hierarchy = _HIERARCHY_CACHE.get(key)
        if hierarchy is None:
            hierarchy = self.build_hierarchy()
            _HIERARCHY_CACHE[key] = hierarchy
        return hierarchy

    def compiled_hierarchy(self) -> CompiledHierarchy:
        """The compiled (vectorized, validate-once) form of the hierarchy."""
        return self.hierarchy().compile()

    def merged_values(
        self, values: Mapping[str, ColumnLike]
    ) -> Dict[str, ColumnLike]:
        """``values`` with ``N_pair`` supplied from the configuration."""
        merged: Dict[str, ColumnLike] = dict(values)
        if self.n_pairs > 0:
            merged["N_pair"] = float(self.n_pairs)
        return merged

    def solve(
        self,
        values: Mapping[str, float],
        method: str = "auto",
        abstraction: str = "mttf",
    ) -> HierarchicalResult:
        """Solve the configuration for the given parameter values.

        ``values`` may be :data:`~repro.models.jsas.parameters.PAPER_PARAMETERS`
        or any mapping providing the same names.  ``N_pair`` is supplied
        automatically from the configuration.

        The default ``method="auto"`` is identical to ``"direct"`` for
        the paper-sized shapes and switches the AS submodel to the O(n)
        banded solver once ``n_instances`` makes it large.
        """
        with obs.span("jsas.solve", config=self.name, method=method):
            return self.build_hierarchy().solve(
                self.merged_values(values),
                method=method,
                abstraction=abstraction,
            )

    def solve_compiled(
        self,
        values: Mapping[str, float],
        method: str = "auto",
        abstraction: str = "mttf",
    ) -> HierarchicalResult:
        """Like :meth:`solve`, through the compiled engine.

        Returns the identical :class:`HierarchicalResult` (bit-for-bit
        with ``method="direct"``) but amortizes model construction,
        validation and rate compilation across calls — the Table 3
        comparison re-solves each configuration shape many times.
        """
        merged = {
            name: float(value)
            for name, value in self.merged_values(values).items()
        }
        solution = self.hierarchy().solve_batch(
            merged, n_samples=1, method=method, abstraction=abstraction
        )
        return solution.result_at(0)

    def solve_batch(
        self,
        values: Mapping[str, ColumnLike],
        n_samples: Optional[int] = None,
        method: str = "auto",
        abstraction: str = "mttf",
    ) -> BatchHierarchicalSolution:
        """Solve the configuration for a whole batch of parameter samples.

        ``values`` maps names to scalars or ``(n_samples,)`` arrays; see
        :meth:`repro.hierarchy.HierarchicalModel.solve_batch`.
        """
        with obs.span("jsas.solve_batch", config=self.name, method=method):
            return self.hierarchy().solve_batch(
                self.merged_values(values),
                n_samples=n_samples,
                method=method,
                abstraction=abstraction,
            )


def build_configuration(
    n_instances: int, n_pairs: int, **kwargs
) -> JsasConfiguration:
    """Convenience factory mirroring the paper's "Config N" wording."""
    return JsasConfiguration(
        n_instances=n_instances, n_pairs=n_pairs, **kwargs
    )


#: The paper's two headline configurations (Section 4).
CONFIG_1 = JsasConfiguration(n_instances=2, n_pairs=2, n_spares=2)
CONFIG_2 = JsasConfiguration(n_instances=4, n_pairs=4, n_spares=2)
