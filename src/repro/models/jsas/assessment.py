"""One-call availability assessment report.

The paper's end product is an *assessment*: a document combining the
model results (Table 2), the configuration comparison (Table 3), the
sensitivity story (Figs. 5-6), and the uncertainty statement (Figs. 7-8)
into a conservative availability claim at stated confidence.  This
module assembles that document from the library's pieces, so a
downstream team can regenerate the whole deliverable for *their*
parameters with one call:

    text = generate_assessment(values=my_parameters, seed=1)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.analysis.report import render_table
from repro.analysis.risk import annual_downtime_risk
from repro.models.jsas.configs import (
    compare_configurations,
    optimal_configuration,
    run_uncertainty,
)
from repro.models.jsas.parameters import PAPER_PARAMETERS
from repro.models.jsas.system import JsasConfiguration
from repro.sensitivity import parametric_sweep
from repro.units import nines_to_availability


@dataclass(frozen=True)
class Assessment:
    """The assembled assessment: sections plus the headline numbers."""

    headline_availability: float
    headline_downtime_minutes: float
    optimal_shape: Tuple[int, int]
    uncertainty_mean: float
    uncertainty_ci80: Tuple[float, float]
    sla_violation_probability: float
    sections: Dict[str, str]

    def to_text(self) -> str:
        """Render the full report."""
        order = (
            "header",
            "system_results",
            "configurations",
            "sensitivity",
            "uncertainty",
            "risk",
        )
        return "\n\n".join(self.sections[name] for name in order)


def generate_assessment(
    values: Optional[Mapping[str, float]] = None,
    primary: Optional[JsasConfiguration] = None,
    shapes: Sequence[Tuple[int, int]] = ((1, 0), (2, 2), (4, 4), (6, 6)),
    n_uncertainty_samples: int = 500,
    n_risk_years: int = 20_000,
    seed: Optional[int] = 2004,
) -> Assessment:
    """Build the full availability assessment.

    Args:
        values: Model parameters (defaults to the paper's Section 5 set).
        primary: The configuration under assessment (defaults to the
            paper's Config 1, 2 instances + 2 pairs).
        shapes: Deployment shapes for the comparison section.
        n_uncertainty_samples / n_risk_years: Sampling volumes (reduce
            for quick runs; the defaults keep the call under a minute).
        seed: RNG seed for the sampled sections.
    """
    values = dict(values) if values is not None else PAPER_PARAMETERS.to_dict()
    primary = primary or JsasConfiguration(2, 2)

    sections: Dict[str, str] = {}

    # System results -------------------------------------------------------
    result = primary.solve(values)
    rows = []
    for name, report in result.submodels.items():
        rows.append(
            (
                name,
                f"{report.downtime_minutes:.2f} min",
                f"{report.downtime_fraction:.1%}",
                f"{report.interface.failure_rate:.3e}/h",
                f"{1.0 / report.interface.recovery_rate:.3g} h",
            )
        )
    sections["header"] = (
        "AVAILABILITY ASSESSMENT\n"
        f"configuration under assessment: {primary.n_instances} AS "
        f"instance(s), {primary.n_pairs} HADB pair(s)\n"
        f"availability: {result.availability:.5%}   "
        f"yearly downtime: {result.yearly_downtime_minutes:.2f} min   "
        f"MTBF: {result.mtbf_hours:,.0f} h"
    )
    sections["system_results"] = render_table(
        ["subsystem", "downtime/yr", "share", "equivalent Lambda",
         "mean outage"],
        rows,
        title="Downtime budget by subsystem",
    )

    # Configuration comparison ----------------------------------------------
    comparison = compare_configurations(shapes, values)
    best = optimal_configuration(comparison)
    sections["configurations"] = (
        render_table(
            ["# AS", "# pairs", "availability", "downtime/yr", "MTBF (h)"],
            [row.as_row() for row in comparison],
            title="Configuration comparison",
        )
        + f"\noptimal among compared: {best.n_instances} instances / "
        f"{best.n_pairs} pairs"
    )

    # Sensitivity -------------------------------------------------------------
    sweep = parametric_sweep(
        lambda sampled: primary.solve(sampled).availability,
        "Tstart_long_as",
        [0.5, 1.0, 1.5, 2.0, 2.5, 3.0],
        values,
    )
    five_nines = nines_to_availability(5)
    try:
        crossing = sweep.crossing(five_nines)
        crossing_text = (
            f"five-9s retained while AS HW/OS recovery stays under "
            f"{crossing:.2f} h"
        )
    except Exception:
        level = "above" if min(sweep.values) >= five_nines else "below"
        crossing_text = f"availability stays {level} five 9s across 0.5-3 h"
    sections["sensitivity"] = (
        "Sensitivity to the controllable recovery-time parameter "
        "(Tstart_long):\n"
        + "\n".join(
            f"  {x:4.1f} h -> {y:.6%}" for x, y in sweep.as_rows()
        )
        + f"\n{crossing_text}"
    )

    # Uncertainty ---------------------------------------------------------------
    uncertainty = run_uncertainty(
        primary, n_samples=n_uncertainty_samples, seed=seed, values=values
    )
    low80, high80 = uncertainty.confidence_interval(0.80)
    sections["uncertainty"] = (
        f"Uncertainty analysis over {uncertainty.n_samples} sampled "
        "parameter snapshots (six parameters, Section 7 ranges):\n"
        f"  mean yearly downtime: {uncertainty.mean:.2f} min\n"
        f"  80% of systems within: ({low80:.2f}, {high80:.2f}) min\n"
        f"  fraction meeting five 9s (< 5.25 min): "
        f"{uncertainty.fraction_below(5.25):.1%}"
    )

    # Risk -------------------------------------------------------------------------
    risk = annual_downtime_risk(result, n_years=n_risk_years, seed=seed)
    sections["risk"] = (
        "Single-year risk (the mean hides the tail):\n"
        f"  P(zero-downtime year): {risk.p_zero:.1%}\n"
        f"  p95 annual downtime: {risk.percentile(95):.1f} min\n"
        f"  P(year exceeds the five-9s budget): "
        f"{risk.probability_exceeding(5.25):.1%}"
    )

    return Assessment(
        headline_availability=result.availability,
        headline_downtime_minutes=result.yearly_downtime_minutes,
        optimal_shape=(best.n_instances, best.n_pairs),
        uncertainty_mean=uncertainty.mean,
        uncertainty_ci80=(low80, high80),
        sla_violation_probability=risk.probability_exceeding(5.25),
        sections=sections,
    )
