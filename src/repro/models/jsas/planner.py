"""Deployment planner: smallest configuration meeting an availability target.

Turns the paper's Table 3 insight into an API.  Because HADB pairs add
data-loss exposure, availability is *not* monotone in size — the planner
therefore searches the (instances, pairs) lattice explicitly rather than
bisecting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence, Tuple

from repro.exceptions import ReproError
from repro.models.jsas.parameters import PAPER_PARAMETERS
from repro.models.jsas.system import JsasConfiguration


@dataclass(frozen=True)
class PlannerRecommendation:
    """The planner's answer.

    Attributes:
        configuration: The chosen shape, or None if no searched shape
            meets the target.
        availability: Its availability (when found).
        candidates_evaluated: How many shapes were solved.
        best_infeasible: The best shape seen when nothing meets the
            target (so the caller can report how far off it is).
    """

    configuration: Optional[JsasConfiguration]
    availability: float
    candidates_evaluated: int
    best_infeasible: Optional[JsasConfiguration] = None

    @property
    def feasible(self) -> bool:
        return self.configuration is not None


def plan_configuration(
    target_availability: float,
    values: Optional[Mapping[str, float]] = None,
    max_instances: int = 12,
    pair_choices: Optional[Sequence[int]] = None,
    require_redundancy: bool = True,
    engine: str = "compiled",
    method: str = "auto",
) -> PlannerRecommendation:
    """Find the smallest deployment meeting an availability target.

    "Smallest" orders shapes by total node count (instances + 2*pairs),
    breaking ties by instance count — the natural hardware-cost order.

    Args:
        target_availability: e.g. ``0.99999`` for five 9s.
        values: Model parameters; defaults to the paper's.
        max_instances: Search bound on the AS tier.  Large bounds are
            fine: ``method="auto"`` keeps big AS submodels on the O(n)
            banded solver instead of the dense O(n^3) path.
        pair_choices: HADB pair counts to consider; defaults to matching
            the instance count (the paper's convention) plus the
            smaller half-count option.
        require_redundancy: Skip single-instance shapes (no failover),
            which can never be HA anyway.
        engine: ``"compiled"`` (default) solves candidates through the
            cached compiled hierarchies; ``"scalar"`` rebuilds each model
            per solve.  Identical answers either way.
        method: Steady-state method passed to each candidate solve.
    """
    if not 0.0 < target_availability < 1.0:
        raise ReproError(
            f"target availability must be in (0, 1), got {target_availability}"
        )
    if max_instances < 1:
        raise ReproError(f"max_instances must be >= 1, got {max_instances}")
    if engine not in ("compiled", "scalar"):
        raise ReproError(
            f"unknown engine {engine!r}; expected 'compiled' or 'scalar'"
        )
    values = dict(values) if values is not None else PAPER_PARAMETERS.to_dict()

    candidates = []
    start = 2 if require_redundancy else 1
    for n_instances in range(start, max_instances + 1):
        if pair_choices is not None:
            pairs_options = pair_choices
        elif n_instances == 1:
            pairs_options = (0,)
        else:
            half = max(2, n_instances // 2)
            pairs_options = sorted({n_instances, half})
        for n_pairs in pairs_options:
            if n_instances > 1 and n_pairs == 0:
                continue  # stateful sessions need the HADB tier
            candidates.append(
                JsasConfiguration(n_instances=n_instances, n_pairs=n_pairs)
            )
    candidates.sort(
        key=lambda c: (c.n_instances + 2 * c.n_pairs, c.n_instances)
    )

    best_seen: Optional[Tuple[float, JsasConfiguration]] = None
    evaluated = 0
    for configuration in candidates:
        if engine == "compiled":
            result = configuration.solve_compiled(values, method=method)
        else:
            result = configuration.solve(values, method=method)
        availability = result.availability
        evaluated += 1
        if best_seen is None or availability > best_seen[0]:
            best_seen = (availability, configuration)
        if availability >= target_availability:
            return PlannerRecommendation(
                configuration=configuration,
                availability=availability,
                candidates_evaluated=evaluated,
            )
    assert best_seen is not None
    return PlannerRecommendation(
        configuration=None,
        availability=best_seen[0],
        candidates_evaluated=evaluated,
        best_infeasible=best_seen[1],
    )
