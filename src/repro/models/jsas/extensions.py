"""Extension models for the paper's explicitly-excluded factors.

The paper scopes out two things it flags as important (Section 4):

* **Online upgrades** — "Online upgrades ... can be orchestrated by the
  administrator, using single or dual cluster deployments. This model is
  restrict[ed] to simple one cluster deployments."
* **Human error** — "human error, which is not considered in the model,
  could be critical to system availability" (citing ~50% of production
  outages), specifically "during on-line maintenance when redundancy may
  become temporarily unavailable".

This module implements both as additive extensions to the Figs. 3-4
models, with their own clearly-marked parameters (none of the paper's
published numbers change unless these rates are nonzero).

Extension parameters (all per hour / hours):

* ``La_upgrade`` — upgrade campaigns per hour (e.g. monthly = 12/8760).
* ``Tupgrade`` — per-instance upgrade duration.
* ``Tswitch`` — dual-cluster switchover outage per campaign.
* ``La_human`` — rate of human interventions that can go wrong
  (co-occurring with maintenance/repair windows).
* ``FHE`` — fraction of interventions that cause a catastrophic outage
  when redundancy is already reduced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

from repro.core.model import MarkovModel
from repro.core.parameters import Parameter, ParameterSet
from repro.ctmc.rewards import steady_state_availability
from repro.exceptions import ModelError
from repro.models.jsas.appserver import build_appserver_model
from repro.models.jsas.hadb import build_hadb_pair_model
from repro.units import minutes, per_year, seconds

#: Defaults for the extension parameters; merge over PAPER_PARAMETERS.
EXTENSION_PARAMETERS = ParameterSet(
    [
        Parameter(
            "La_upgrade",
            per_year(12),
            description="online upgrade campaigns (monthly)",
            unit="1/hour",
            provenance="assumed",
        ),
        Parameter(
            "Tupgrade",
            minutes(10),
            description="per-instance upgrade duration",
            unit="hours",
            provenance="assumed",
        ),
        Parameter(
            "Tswitch",
            seconds(5),
            description=(
                "dual-cluster switchover outage per campaign; the LBP "
                "redirects traffic and sessions restore from HADB, so "
                "this is approximately one session-failover time"
            ),
            unit="hours",
            provenance="assumed",
        ),
        Parameter(
            "La_human",
            per_year(12),
            description="human interventions with error potential",
            unit="1/hour",
            provenance="assumed",
        ),
        Parameter(
            "FHE",
            0.02,
            description=(
                "fraction of interventions that are catastrophic when "
                "redundancy is reduced"
            ),
            unit="probability",
            provenance="assumed",
        ),
    ]
)


def extension_values(base: Mapping[str, float]) -> Dict[str, float]:
    """The paper's values merged with the extension defaults."""
    merged = dict(base)
    for parameter in EXTENSION_PARAMETERS.parameters():
        merged.setdefault(parameter.name, parameter.value)
    return merged


# -- Human error -------------------------------------------------------------


def build_hadb_pair_model_with_human_error(
    name: str = "hadb_pair_human",
) -> MarkovModel:
    """Fig. 3 plus human-error arcs from the reduced-redundancy states.

    While a pair is degraded (restart, repair, or maintenance in
    progress) an operator is typically interacting with it; with rate
    ``La_human`` an intervention occurs and with probability ``FHE`` it
    takes the surviving node down — the exact failure mode the paper
    warns about ("human error introduced during on-line maintenance when
    redundancy may become temporarily unavailable").
    """
    base = build_hadb_pair_model(name)
    degraded = {"RestartShort", "RestartLong", "Repair", "Maintenance"}
    model = MarkovModel(base.name, base.description + " — with human error")
    for state in base.states:
        model.add_state(state.name, state.reward, state.description)
    for t in base.transitions:
        if t.source in degraded and t.target == "2_Down":
            # The Fig. 3 arc (second machine failure) already exists;
            # duplicate arcs are rejected by design, so the human-error
            # path merges into the same arc as a summed expression.
            model.add_transition(
                t.source,
                t.target,
                f"({t.rate.source}) + La_human * FHE",
                (t.description + " + human error").strip(),
            )
        else:
            model.add_transition(t.source, t.target, t.rate, t.description)
    return model


# -- Online upgrades ----------------------------------------------------------


def build_upgrade_appserver_model(
    n_instances: int = 2,
    name: str = "",
) -> MarkovModel:
    """Single-cluster rolling upgrade added to the AS cluster model.

    An upgrade campaign arrives at ``La_upgrade`` and walks the cluster
    one instance at a time (``Upgrade_1 .. Upgrade_N``, each step taking
    ``Tupgrade``).  During a step, N-1 instances serve at the accelerated
    failure rate; a failure during the step aborts the campaign into the
    normal failure-handling chain (two instances effectively down).  For
    N = 2 that abort is a total outage — which is exactly why the paper
    recommends dual-cluster deployments for online upgrades.
    """
    if n_instances < 2:
        raise ModelError("rolling upgrades need at least two instances")
    base = build_appserver_model(n_instances)
    model = MarkovModel(
        name or f"appserver_{n_instances}_upgrades",
        base.description + " — with single-cluster rolling upgrades",
    )
    for state in base.states:
        model.add_state(state.name, state.reward, state.description)
    for t in base.transitions:
        model.add_transition(t.source, t.target, t.rate, t.description)

    down_name = "2_Down" if n_instances == 2 else f"{n_instances}_Down"
    # With one instance out for upgrade, a failure leaves 2 down: route
    # to the level-2 recovery state (total outage when N == 2).
    if n_instances == 2:
        abort_target = down_name
    else:
        abort_target = "Recovery_2"
    survivors_rate = f"{n_instances - 1} * Acc * (La_as + La_os + La_hw)"

    for step in range(1, n_instances + 1):
        model.add_state(
            f"Upgrade_{step}", reward=1.0,
            description=f"instance {step} being upgraded",
        )
    model.add_transition(
        "All_Work", "Upgrade_1", "La_upgrade", "upgrade campaign starts"
    )
    for step in range(1, n_instances):
        model.add_transition(
            f"Upgrade_{step}", f"Upgrade_{step + 1}", "1 / Tupgrade",
            "next instance",
        )
    model.add_transition(
        f"Upgrade_{n_instances}", "All_Work", "1 / Tupgrade",
        "campaign complete",
    )
    for step in range(1, n_instances + 1):
        model.add_transition(
            f"Upgrade_{step}", abort_target, survivors_rate,
            "failure during upgrade window",
        )
    return model


@dataclass(frozen=True)
class UpgradeStrategyComparison:
    """Yearly downtime of the three upgrade strategies (minutes)."""

    no_upgrades: float
    single_cluster_rolling: float
    dual_cluster: float

    def summary(self) -> str:
        return (
            f"no upgrades: {self.no_upgrades:.3f} min/yr; "
            f"single-cluster rolling: {self.single_cluster_rolling:.3f}; "
            f"dual-cluster: {self.dual_cluster:.3f}"
        )


def compare_upgrade_strategies(
    n_instances: int,
    values: Mapping[str, float],
) -> UpgradeStrategyComparison:
    """AS-tier yearly downtime under the three upgrade strategies.

    * *no upgrades* — the plain Fig. 4 chain (the paper's model).
    * *single-cluster rolling* — :func:`build_upgrade_appserver_model`.
    * *dual-cluster* — upgrades happen on the offline cluster; each
      campaign costs one planned ``Tswitch`` switchover, and the online
      cluster runs the plain chain meanwhile.  Downtime =
      plain chain downtime + ``La_upgrade * Tswitch`` converted to
      minutes/year (a deliberate, documented approximation: the offline
      cluster is assumed ready to switch back, so unplanned coverage
      during the window is unchanged).
    """
    merged = extension_values(values)
    plain = steady_state_availability(
        build_appserver_model(n_instances), merged
    )
    rolling = steady_state_availability(
        build_upgrade_appserver_model(n_instances), merged
    )
    # La_upgrade (1/h) * 8760 h/yr campaigns * Tswitch h * 60 min/h:
    switch_downtime = (
        merged["La_upgrade"] * 8760.0 * merged["Tswitch"] * 60.0
    )
    return UpgradeStrategyComparison(
        no_upgrades=plain.yearly_downtime_minutes,
        single_cluster_rolling=rolling.yearly_downtime_minutes,
        dual_cluster=plain.yearly_downtime_minutes + switch_downtime,
    )
