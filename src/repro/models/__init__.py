"""Ready-made availability models.

Currently ships one family: :mod:`repro.models.jsas`, the paper's Sun
Java System Application Server EE7 models.
"""
