"""Reporting helpers: availability arithmetic and table rendering."""

from repro.analysis.availability import (
    downtime_budget,
    nines_summary,
)
from repro.analysis.report import Table, render_table
from repro.analysis.risk import AnnualDowntimeRisk, annual_downtime_risk
from repro.analysis.mission import (
    MissionAvailabilityResult,
    mission_availability,
)

__all__ = [
    "downtime_budget",
    "nines_summary",
    "Table",
    "render_table",
    "AnnualDowntimeRisk",
    "annual_downtime_risk",
    "MissionAvailabilityResult",
    "mission_availability",
]
