"""SLA risk: the distribution of *annual* downtime, not just its mean.

The paper reports expected yearly downtime (3.49 minutes for Config 1),
but an operator signing a five-9s SLA cares about the tail: in a given
year the system sees a random number of outages of random duration, and
a single unlucky HADB pair loss (about an hour) blows the yearly budget
on its own.

For a highly available system the hierarchical solution already gives
the right compound model: outages of submodel *i* arrive (approximately)
as a Poisson process with rate ``Lambda_i`` and last ``Exp(Mu_i)``; the
annual downtime is the independent sum of compound-Poisson terms.  This
module samples that compound distribution (cheap — no chain simulation
needed) and reports percentiles and SLA-violation probabilities, plus
the analytic probability of a *zero-downtime* year as a cross-check
(``exp(-sum_i Lambda_i * T)``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.exceptions import ReproError
from repro.hierarchy.composer import HierarchicalResult
from repro.units import MINUTES_PER_YEAR

#: Hours per year used for the exposure window (Julian year, consistent
#: with the downtime-minutes constant).
_EXPOSURE_HOURS = MINUTES_PER_YEAR / 60.0


@dataclass(frozen=True)
class AnnualDowntimeRisk:
    """Sampled distribution of one year's downtime (minutes).

    Attributes:
        samples: Simulated annual downtimes, minutes.
        mean: Sample mean (should track the model's expected value).
        p_zero: Analytic probability of a zero-outage year.
        outage_rate_per_year: Expected number of outages per year.
    """

    samples: Tuple[float, ...]
    mean: float
    p_zero: float
    outage_rate_per_year: float

    def percentile(self, q: float) -> float:
        return float(np.percentile(self.samples, q))

    def probability_exceeding(self, minutes: float) -> float:
        """``P(annual downtime > minutes)`` — the SLA-violation risk."""
        data = np.asarray(self.samples)
        return float((data > minutes).mean())

    def summary(self, sla_minutes: float = 5.25) -> str:
        return (
            f"annual downtime: mean={self.mean:.2f} min, "
            f"P(zero-downtime year)={self.p_zero:.1%}, "
            f"p50={self.percentile(50):.2f}, p95={self.percentile(95):.2f}, "
            f"P(> {sla_minutes:g} min)={self.probability_exceeding(sla_minutes):.1%}"
        )


def annual_downtime_risk(
    result: HierarchicalResult,
    n_years: int = 20_000,
    seed: Optional[int] = None,
) -> AnnualDowntimeRisk:
    """Sample the compound-Poisson annual downtime of a solved system.

    Args:
        result: A solved :class:`HierarchicalResult` (e.g. from
            ``CONFIG_1.solve(...)``): each submodel contributes outages
            at its equivalent ``Lambda`` with ``Exp(Mu)`` durations.
        n_years: Number of simulated years.
        seed: RNG seed.

    Raises:
        ReproError: If a submodel has a zero/undefined recovery rate
            (infinite expected outage) — the compound model would be
            meaningless.
    """
    if n_years <= 0:
        raise ReproError(f"n_years must be positive, got {n_years}")
    # Arrival rates are recovered from each submodel's *attributed*
    # downtime (already scaled by replication factors like N_pair in the
    # top model) and its mean outage duration 1/Mu:
    #   events/hour = downtime_fraction * Mu.
    components: Dict[str, Tuple[float, float]] = {}
    for name, report in result.submodels.items():
        mu = report.interface.recovery_rate
        if report.downtime_minutes == 0.0:
            continue
        if mu <= 0.0 or math.isinf(mu):
            raise ReproError(
                f"submodel {name!r} has recovery rate {mu}; cannot build "
                "the annual-downtime compound model"
            )
        downtime_fraction = report.downtime_minutes / MINUTES_PER_YEAR
        components[name] = (downtime_fraction * mu, mu)

    total_rate = sum(lam for lam, _mu in components.values())
    rng = np.random.default_rng(seed)
    samples = np.zeros(n_years)
    for lam, mu in components.values():
        counts = rng.poisson(lam * _EXPOSURE_HOURS, size=n_years)
        total_events = int(counts.sum())
        if total_events == 0:
            continue
        durations = rng.exponential(1.0 / mu, size=total_events)
        # Scatter the per-event durations back to their years.
        years = np.repeat(np.arange(n_years), counts)
        sums = np.bincount(years, weights=durations, minlength=n_years)
        samples += sums * 60.0  # hours -> minutes

    return AnnualDowntimeRisk(
        samples=tuple(samples.tolist()),
        mean=float(samples.mean()),
        p_zero=math.exp(-total_rate * _EXPOSURE_HOURS),
        outage_rate_per_year=total_rate * _EXPOSURE_HOURS,
    )
