"""Interval (mission) availability: distribution, not just expectation.

The authors' companion paper ("Hierarchical Evaluation of Interval
Availability in RAScad", DSN 2004 [18]) studies exactly this: over a
finite mission of length T, the fraction of time up ``A_T`` is a random
variable, and service contracts bind its quantiles, not its mean.

The analytic engine provides ``E[A_T]``
(:func:`repro.ctmc.transient.interval_availability`); this module adds
the *distribution* by Monte Carlo over independent missions, with the
analytic mean serving as a built-in cross-check (the sampled mean must
land on it — asserted in the tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Tuple, Union

import numpy as np

from repro.core.model import MarkovModel
from repro.ctmc.generator import GeneratorMatrix, build_generator
from repro.ctmc.transient import interval_availability
from repro.exceptions import SimulationError
from repro.simulation.ctmc_sim import simulate_ctmc


@dataclass(frozen=True)
class MissionAvailabilityResult:
    """Sampled distribution of interval availability over missions.

    Attributes:
        mission_hours: Mission length T.
        samples: One interval availability per simulated mission.
        analytic_mean: ``E[A_T]`` from the uniformization integral,
            for cross-checking the sample.
    """

    mission_hours: float
    samples: Tuple[float, ...]
    analytic_mean: float

    @property
    def n_missions(self) -> int:
        return len(self.samples)

    @property
    def sample_mean(self) -> float:
        return float(np.mean(self.samples))

    def percentile(self, q: float) -> float:
        return float(np.percentile(self.samples, q))

    def probability_meeting(self, target_availability: float) -> float:
        """``P(A_T >= target)`` — the chance one mission meets its SLA."""
        data = np.asarray(self.samples)
        return float((data >= target_availability).mean())

    def probability_perfect(self) -> float:
        """``P(A_T == 1)`` — missions with no downtime at all."""
        data = np.asarray(self.samples)
        return float((data >= 1.0).mean())

    def summary(self, target: float = 0.99999) -> str:
        return (
            f"mission {self.mission_hours:g} h over {self.n_missions} runs: "
            f"mean A={self.sample_mean:.7f} "
            f"(analytic {self.analytic_mean:.7f}), "
            f"P(perfect)={self.probability_perfect():.1%}, "
            f"P(A >= {target})={self.probability_meeting(target):.1%}"
        )


def mission_availability(
    model_or_generator: Union[MarkovModel, GeneratorMatrix],
    mission_hours: float,
    n_missions: int = 1000,
    values: Optional[Mapping[str, float]] = None,
    initial_state: Optional[str] = None,
    seed: Optional[int] = None,
) -> MissionAvailabilityResult:
    """Simulate independent missions and collect interval availabilities.

    Args:
        model_or_generator: Model (with ``values``) or bound generator.
        mission_hours: Mission length T (> 0).
        n_missions: Independent missions to simulate.
        initial_state: Mission start state; defaults to the first state.
        seed: Master seed; per-mission streams are spawned from it.
    """
    if mission_hours <= 0.0:
        raise SimulationError(
            f"mission length must be positive, got {mission_hours}"
        )
    if n_missions <= 0:
        raise SimulationError(
            f"mission count must be positive, got {n_missions}"
        )
    if isinstance(model_or_generator, GeneratorMatrix):
        generator = model_or_generator
    else:
        if values is None:
            raise SimulationError(
                "parameter values are required when passing a MarkovModel"
            )
        generator = build_generator(model_or_generator, values)

    analytic = interval_availability(
        generator,
        mission_hours,
        initial=initial_state,
    )
    sequence = np.random.SeedSequence(seed)
    samples = []
    for child in sequence.spawn(n_missions):
        rng = np.random.default_rng(child)
        run = simulate_ctmc(
            generator,
            horizon=mission_hours,
            initial_state=initial_state,
            rng=rng,
        )
        samples.append(run.availability)
    return MissionAvailabilityResult(
        mission_hours=mission_hours,
        samples=tuple(samples),
        analytic_mean=analytic,
    )
