"""Plain-text table rendering for benchmark and CLI output.

The benchmarks print tables in the same row layout as the paper's
Tables 2 and 3 so the reproduction can be eyeballed against the PDF.
Deliberately dependency-free (no tabulate offline).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.exceptions import ReproError


@dataclass
class Table:
    """A simple column-aligned text table.

    Example::

        table = Table(title="System Results", columns=["Config", "Avail"])
        table.add_row(["Config 1", "99.99933%"])
        print(table.render())
    """

    columns: Sequence[str]
    title: str = ""
    rows: List[Sequence[str]] = field(default_factory=list)

    def add_row(self, row: Sequence[str]) -> None:
        if len(row) != len(self.columns):
            raise ReproError(
                f"row has {len(row)} cells, table has "
                f"{len(self.columns)} columns"
            )
        self.rows.append([str(cell) for cell in row])

    def render(self) -> str:
        return render_table(self.columns, self.rows, title=self.title)


def render_table(
    columns: Sequence[str],
    rows: Sequence[Sequence[str]],
    title: str = "",
) -> str:
    """Render rows under headers with column alignment."""
    if not columns:
        raise ReproError("a table needs at least one column")
    str_rows = [[str(c) for c in columns]]
    for row in rows:
        if len(row) != len(columns):
            raise ReproError(
                f"row {row!r} has {len(row)} cells, expected {len(columns)}"
            )
        str_rows.append([str(cell) for cell in row])
    widths = [
        max(len(str_rows[r][c]) for r in range(len(str_rows)))
        for c in range(len(columns))
    ]
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * max(len(title), sum(widths) + 2 * len(widths)))
    header = "  ".join(
        cell.ljust(widths[i]) for i, cell in enumerate(str_rows[0])
    ).rstrip()
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows[1:]:
        lines.append(
            "  ".join(
                cell.ljust(widths[i]) for i, cell in enumerate(row)
            ).rstrip()
        )
    return "\n".join(lines)
