"""Availability arithmetic for reports.

Small, well-tested helpers that turn solver output into the quantities
availability reports are written in: "nines", downtime budgets, and
per-contributor breakdowns.
"""

from __future__ import annotations

from typing import Dict, Mapping

from repro.exceptions import ReproError
from repro.units import (
    MINUTES_PER_YEAR,
    availability_to_nines,
    unavailability_to_yearly_downtime_minutes,
)


def nines_summary(availability: float) -> str:
    """Render availability with its 'nines' class, e.g. '99.99933% (5 nines)'.

    The integer nines class is ``floor(-log10(1 - A))``.
    """
    if not 0.0 <= availability <= 1.0:
        raise ReproError(f"availability must be in [0, 1], got {availability}")
    if availability == 1.0:
        return "100% (perfect)"
    nines = int(availability_to_nines(availability))
    return f"{availability:.5%} ({nines} nines)"


def downtime_budget(
    contributions: Mapping[str, float], total_check_tolerance: float = 1e-6
) -> Dict[str, Dict[str, float]]:
    """Turn per-contributor unavailability into a downtime budget table.

    Args:
        contributions: ``{contributor: unavailability}``; e.g. the per-
            down-state probabilities of a solved model, or per-submodel
            unavailabilities.
        total_check_tolerance: Sanity cap — the summed unavailability
            must stay below 1.

    Returns:
        ``{contributor: {"unavailability", "minutes_per_year",
        "fraction"}}`` sorted by descending contribution.
    """
    if not contributions:
        raise ReproError("downtime budget needs at least one contributor")
    for name, value in contributions.items():
        if value < 0.0:
            raise ReproError(
                f"contributor {name!r} has negative unavailability {value}"
            )
    total = sum(contributions.values())
    if total >= 1.0 + total_check_tolerance:
        raise ReproError(
            f"summed unavailability {total} exceeds 1; inputs are not "
            "unavailabilities"
        )
    out: Dict[str, Dict[str, float]] = {}
    ordered = sorted(contributions.items(), key=lambda kv: kv[1], reverse=True)
    for name, value in ordered:
        out[name] = {
            "unavailability": value,
            "minutes_per_year": unavailability_to_yearly_downtime_minutes(value),
            "fraction": (value / total) if total > 0 else 0.0,
        }
    return out


def downtime_minutes_to_availability(minutes: float) -> float:
    """Availability implied by a yearly downtime in minutes."""
    if minutes < 0.0 or minutes > MINUTES_PER_YEAR:
        raise ReproError(
            f"yearly downtime must be in [0, {MINUTES_PER_YEAR}], got {minutes}"
        )
    return 1.0 - minutes / MINUTES_PER_YEAR
