"""Live trigger campaigns: push the real server at the regime map.

One campaign *cell* reproduces one grid point of the regime map on the
actual serving stack:

1. **Self-host** an :class:`~repro.service.server.AvailabilityServer`
   shaped like the orbit model: one worker, no coalescing
   (``max_batch=1``), a small bounded queue (``queue_limit`` = the
   model's ``queue_depth``), the solve cache off, and the chaos
   injector stalling *every* dispatch
   (``chaos_rates={"scheduler.stall": 1.0}``) so the service rate is a
   deterministic knob: ``mu ≈ 1 / stall_seconds``.
2. **Offered load** comes from a small fleet of closed-loop client
   threads with seeded exponential pacing.  Each logical request
   retries with the cell's budget (``max_attempts``), a tiny jittered
   backoff, and a short per-attempt deadline — threads sleeping in
   backoff after a shed or a timed-out attempt *are* the model's
   orbit, and a request that times out while queued keeps consuming
   service capacity (the batcher cannot cancel it), which is the
   model's zombie-work amplifier.
3. **Trigger** (burst → sustain → release): a surge flag drops every
   thread's pacing gap to zero for ``burst + sustain`` seconds —
   a load spike that slams the queue — then pacing resumes.
4. **Observe**: after release, a
   :class:`~repro.obs.monitor.ProbeRunner` sends single-attempt,
   deadline-bounded probes at the *same* sustained offered load the
   cell always had.  If most of the probe tail still fails, the storm
   outlived its trigger: the cell is ``"pinned"``; otherwise it
   ``"recovered"``.

The artifact splits three ways, extending the repo's determinism
idiom: a config-pure ``"deterministic"`` block (bit-identical for any
two runs of the same configuration, regardless of seed), a seed-pure
``"schedule"`` block (derived seeds and probe trace ids — identical
for same-seed runs, different across seeds), and the live
``"observed"`` outcomes outside both.
"""

from __future__ import annotations

import hashlib
import json
import math
import random
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.exceptions import ModelError
from repro.obs.monitor import ProbeRunner, probe_trace_id
from repro.service.client import RetryPolicy, ServiceClient
from repro.service.config import ServiceConfig
from repro.service.errors import (
    ServiceClientError,
    ServiceConnectionError,
    ServiceError,
    ServiceUnavailable,
)
from repro.service.server import AvailabilityServer

#: Campaign artifact schema version.
CAMPAIGN_SCHEMA = 1

#: Artifact ``kind`` discriminator.
CAMPAIGN_KIND = "metastable-campaign"

#: The two live outcomes a trigger can leave behind.
OUTCOMES = ("recovered", "pinned")

#: Default cells: one comfortably stable grid point and one deep in
#: the storm region of the default regime map.
DEFAULT_CELLS = ((0.3, 1), (0.9, 6))

#: Base solve parameter for the workload.  Every request perturbs it
#: (seeded, per thread) so no two in-flight requests share an
#: idempotency key — single-flight dedup would otherwise collapse the
#: whole fleet into one solve and silently multiply the service rate.
_WORKLOAD_PARAMETER = "lambda_as"
_WORKLOAD_BASE_VALUE = 0.01


@dataclass(frozen=True)
class CampaignCell:
    """One (offered load, retry budget) grid point to drive live."""

    load: float
    budget: int

    def __post_init__(self) -> None:
        if self.load <= 0:
            raise ModelError(f"cell load must be positive, got {self.load}")
        if self.budget < 1:
            raise ModelError(
                f"cell budget must be >= 1, got {self.budget}"
            )


def parse_cells(spec: str) -> List[CampaignCell]:
    """Parse ``"0.3:1,0.75:6"`` into campaign cells."""
    cells = []
    for chunk in spec.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        try:
            load_text, budget_text = chunk.split(":")
            cells.append(
                CampaignCell(float(load_text), int(budget_text))
            )
        except ValueError:
            raise ModelError(
                f"bad cell {chunk!r}; expected load:budget, "
                "e.g. 0.75:6"
            ) from None
    if not cells:
        raise ModelError(f"no cells in {spec!r}")
    return cells


def _derived_seed(seed: int, label: str) -> int:
    """A stable 31-bit sub-seed for one campaign component."""
    digest = hashlib.sha256(f"{seed}:{label}".encode()).hexdigest()
    return int(digest[:8], 16) & 0x7FFFFFFF


def _classify_tail(
    probe_oks: Sequence[bool], tail_window: int
) -> Dict[str, Any]:
    """Outcome from the last ``tail_window`` probes after release."""
    tail = list(probe_oks)[-tail_window:]
    failures = sum(1 for ok in tail if not ok)
    # Pinned when the storm still eats at least half the probe tail;
    # a deeply stable cell fails ~0 and a pinned one fails ~all, so
    # the half-way cut keeps both verdicts far from the noise.
    outcome = "pinned" if 2 * failures >= len(tail) else "recovered"
    return {
        "outcome": outcome,
        "tail_window": len(tail),
        "tail_failures": failures,
    }


class _WorkloadThread(threading.Thread):
    """One closed-loop client: pace, request (with retries), repeat."""

    def __init__(
        self,
        url: str,
        cell: CampaignCell,
        mean_gap_seconds: float,
        deadline_seconds: float,
        backoff_cap_seconds: float,
        rng_seed: int,
        stop: threading.Event,
        surge: threading.Event,
    ) -> None:
        super().__init__(daemon=True)
        self._halt = stop
        self._surge_flag = surge
        self._mean_gap = mean_gap_seconds
        self._surge_gap = deadline_seconds / 20.0
        self._rng = random.Random(rng_seed)
        self._client = ServiceClient(
            url,
            timeout=deadline_seconds,
            retry=RetryPolicy(
                max_attempts=cell.budget,
                backoff_base=backoff_cap_seconds / 4.0,
                backoff_cap=backoff_cap_seconds,
                retry_statuses=(429,),
            ),
            rng=random.Random(rng_seed + 1),
        )
        self.counts = {"ok": 0, "shed": 0, "timeout": 0, "error": 0}

    def _pace(self, gap: float) -> None:
        """Sleep out the pacing gap, but wake early for surge or stop."""
        deadline = time.monotonic() + gap
        while not self._halt.is_set() and not self._surge_flag.is_set():
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return
            self._halt.wait(min(remaining, 0.05))

    def run(self) -> None:
        while not self._halt.is_set():
            if self._surge_flag.is_set():
                # Surge: hammer with only a token gap — enough to keep
                # ten spinning clients from starving the single-core
                # server of the GIL, far beyond its capacity anyway.
                self._halt.wait(self._surge_gap)
            else:
                self._pace(self._rng.expovariate(1.0 / self._mean_gap))
            if self._halt.is_set():
                break
            value = round(
                _WORKLOAD_BASE_VALUE * (1.0 + self._rng.random()), 12
            )
            try:
                self._client.solve(
                    parameters={_WORKLOAD_PARAMETER: value}
                )
                self.counts["ok"] += 1
            except ServiceUnavailable:
                self.counts["shed"] += 1
            except ServiceConnectionError:
                # Timeouts while queued: the attempt is abandoned but
                # the request still occupies the server — zombie work.
                self.counts["timeout"] += 1
            except ServiceError:
                self.counts["error"] += 1
        self._client.close()


def run_trigger_campaign(
    cells: Sequence[CampaignCell] = (),
    seed: int = 2004,
    stall_seconds: float = 0.08,
    queue_limit: int = 6,
    client_threads: int = 24,
    deadline_seconds: float = 0.1,
    backoff_cap_seconds: float = 0.04,
    baseline_seconds: float = 0.6,
    burst_seconds: float = 0.4,
    sustain_seconds: float = 0.6,
    observe_probes: int = 8,
    probe_interval_seconds: float = 0.3,
    tail_window: int = 6,
) -> Dict[str, Any]:
    """Run the burst → sustain → release trigger on every cell.

    Args:
        cells: Grid points to drive (default :data:`DEFAULT_CELLS`).
        seed: Master seed naming every derived stream (thread pacing,
            chaos injector, probe trace ids).
        stall_seconds: Injected per-dispatch stall — the service-rate
            knob, ``mu ≈ 1 / stall_seconds``.
        queue_limit: Server queue bound (the model's ``queue_depth``).
        client_threads: Closed-loop workload threads (bounds the live
            orbit like the model's ``orbit_size``).
        deadline_seconds: Per-attempt client deadline (the model's
            ``1 / Theta``).
        backoff_cap_seconds: Retry backoff cap (the model's
            ``2 / Delta``).
        baseline_seconds: Settle time before the trigger.
        burst_seconds / sustain_seconds: Surge phase durations.
        observe_probes / probe_interval_seconds: Post-release probe
            schedule.
        tail_window: Probes (from the end) that decide the outcome.

    Returns:
        The campaign artifact (see module docstring).
    """
    started = time.perf_counter()
    cells = list(cells) if cells else [
        CampaignCell(load, budget) for load, budget in DEFAULT_CELLS
    ]
    if observe_probes < tail_window:
        raise ModelError(
            f"observe_probes ({observe_probes}) must cover the "
            f"tail window ({tail_window})"
        )
    mu = 1.0 / stall_seconds
    # Probes must outwait normal jitter (a couple of service times)
    # but fail against a saturated queue, whose wait is
    # ~ queue_limit * stall: split the difference.
    probe_deadline = stall_seconds * (queue_limit + 1) / 2.0

    observed_cells: List[Dict[str, Any]] = []
    schedule_cells: List[Dict[str, Any]] = []
    for index, cell in enumerate(cells):
        chaos_seed = _derived_seed(seed, f"cell{index}:chaos")
        probe_seed = _derived_seed(seed, f"cell{index}:probes")
        thread_seeds = [
            _derived_seed(seed, f"cell{index}:thread{t}")
            for t in range(client_threads)
        ]
        schedule_cells.append(
            {
                "cell": {"load": cell.load, "budget": cell.budget},
                "chaos_seed": chaos_seed,
                "probe_seed": probe_seed,
                "thread_seeds": thread_seeds,
                "probe_trace_ids": [
                    probe_trace_id(probe_seed, i)
                    for i in range(observe_probes)
                ],
            }
        )

        config = ServiceConfig(
            port=0,
            workers=1,
            max_batch=1,
            max_wait_ms=0.0,
            queue_limit=queue_limit,
            cache_size=0,
            chaos=True,
            chaos_seed=chaos_seed,
            chaos_rates={"scheduler.stall": 1.0},
            chaos_stall_seconds=stall_seconds,
            retry_after_seconds=backoff_cap_seconds,
        )
        stop = threading.Event()
        surge = threading.Event()
        cell_started = time.perf_counter()
        with AvailabilityServer(config) as server:
            mean_gap = client_threads / (cell.load * mu)
            threads = [
                _WorkloadThread(
                    server.url,
                    cell,
                    mean_gap_seconds=mean_gap,
                    deadline_seconds=deadline_seconds,
                    backoff_cap_seconds=backoff_cap_seconds,
                    rng_seed=thread_seeds[t],
                    stop=stop,
                    surge=surge,
                )
                for t in range(client_threads)
            ]
            for thread in threads:
                thread.start()
            time.sleep(baseline_seconds)

            # Trigger: burst -> sustain ...
            surge.set()
            time.sleep(burst_seconds + sustain_seconds)
            # ... -> release.
            surge.clear()

            runner = ProbeRunner(
                server.url,
                deadline_seconds=probe_deadline,
                seed=probe_seed,
            )
            probes = []
            for i in range(observe_probes):
                probes.append(runner.probe(i))
                if i + 1 < observe_probes:
                    time.sleep(probe_interval_seconds)
            runner.close()

            stop.set()
            for thread in threads:
                thread.join(timeout=5.0)

        verdict = _classify_tail(
            [probe["ok"] for probe in probes], tail_window
        )
        workload = {"ok": 0, "shed": 0, "timeout": 0, "error": 0}
        for thread in threads:
            for key, count in thread.counts.items():
                workload[key] += count
        observed_cells.append(
            {
                "cell": {"load": cell.load, "budget": cell.budget},
                **verdict,
                "probes_ok": sum(1 for p in probes if p["ok"]),
                "probes_failed": sum(1 for p in probes if not p["ok"]),
                "probe_ok_sequence": [bool(p["ok"]) for p in probes],
                "workload": workload,
                "elapsed_seconds": time.perf_counter() - cell_started,
            }
        )

    artifact = {
        "schema": CAMPAIGN_SCHEMA,
        "kind": CAMPAIGN_KIND,
        "seed": seed,
        "deterministic": {
            "schema": CAMPAIGN_SCHEMA,
            "kind": CAMPAIGN_KIND,
            "cells": [
                {"load": cell.load, "budget": cell.budget}
                for cell in cells
            ],
            "server": {
                "stall_seconds": stall_seconds,
                "queue_limit": queue_limit,
                "retry_after_seconds": backoff_cap_seconds,
            },
            "workload": {
                "client_threads": client_threads,
                "deadline_seconds": deadline_seconds,
                "backoff_cap_seconds": backoff_cap_seconds,
            },
            "phases": {
                "baseline_seconds": baseline_seconds,
                "burst_seconds": burst_seconds,
                "sustain_seconds": sustain_seconds,
                "observe_probes": observe_probes,
                "probe_interval_seconds": probe_interval_seconds,
            },
            "verdict_rule": {
                "tail_window": tail_window,
                "pinned_when": "tail failures >= half the window",
            },
            "model_correspondence": {
                "mu": mu,
                "delta": (2.0 / backoff_cap_seconds) / mu,
                "theta": (1.0 / deadline_seconds) / mu,
                "queue_depth": queue_limit,
                "orbit_size": client_threads,
            },
        },
        "schedule": {"seed": seed, "cells": schedule_cells},
        "observed": {"cells": observed_cells},
        "timing": {"elapsed_seconds": time.perf_counter() - started},
    }
    return artifact


def write_campaign(
    artifact: Mapping[str, Any], path: "str | Path"
) -> Path:
    """Write the artifact as stable, sorted-key JSON."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(
        json.dumps(artifact, indent=2, sort_keys=True) + "\n"
    )
    return target


def load_campaign(path: "str | Path") -> Dict[str, Any]:
    """Read a campaign artifact back, validating schema and kind."""
    artifact = json.loads(Path(path).read_text())
    if artifact.get("kind") != CAMPAIGN_KIND:
        raise ModelError(
            f"{path}: expected kind {CAMPAIGN_KIND!r}, "
            f"got {artifact.get('kind')!r}"
        )
    if artifact.get("schema") != CAMPAIGN_SCHEMA:
        raise ModelError(
            f"{path}: unsupported campaign schema "
            f"{artifact.get('schema')!r}"
        )
    return artifact
