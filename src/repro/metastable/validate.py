"""Predicted-vs-observed verdict: join a regime map to a campaign.

The regime map predicts, per grid cell, what a live trigger campaign
should observe after the load spike releases: ``"recovered"`` for
stable cells, ``"pinned"`` for vulnerable and metastable ones (see
:func:`repro.metastable.regimes.predicted_outcome`).  The campaign
records what the monitor probes actually decided.  This module joins
the two artifacts cell-by-cell and renders a verdict:

``"agree"``
    Every campaign cell was found on the map and its observed outcome
    matches the prediction.
``"disagree"``
    At least one matched cell observed the opposite outcome — the
    model's trigger boundary is drawn in the wrong place for the live
    deployment, or the knob correspondence (``mu = 1 / stall``,
    ``delta = (2 / backoff_cap) / mu``, ``theta = (1 / deadline) / mu``,
    ``queue_depth = queue_limit``) was not respected.

A campaign cell missing from the map is an error, not a disagreement:
the comparison is meaningless if the artifacts cover different grids.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping

from repro.exceptions import ModelError
from repro.metastable.campaign import CAMPAIGN_KIND
from repro.metastable.regimes import (
    REGIME_MAP_KIND,
    find_cell,
    predicted_outcome,
)

#: Validation-report schema version.
VALIDATION_SCHEMA = 1

#: Artifact ``kind`` discriminator.
VALIDATION_KIND = "metastable-validation"

#: Possible report verdicts.
VERDICTS = ("agree", "disagree")


def _require_kind(
    artifact: Mapping[str, Any], kind: str, label: str
) -> None:
    if artifact.get("kind") != kind:
        raise ModelError(
            f"{label}: expected kind {kind!r}, "
            f"got {artifact.get('kind')!r}"
        )


def validate_boundary(
    regime_map: Mapping[str, Any],
    campaign: Mapping[str, Any],
    tolerance: float = 1e-9,
) -> Dict[str, Any]:
    """Compare a campaign's observed outcomes against map predictions.

    Args:
        regime_map: Artifact from
            :func:`repro.metastable.regimes.map_regimes`.
        campaign: Artifact from
            :func:`repro.metastable.campaign.run_trigger_campaign`.
        tolerance: Load-matching tolerance for the cell join.

    Returns:
        A validation report: per-cell comparison rows and an overall
        ``"verdict"`` of ``"agree"`` or ``"disagree"``.

    Raises:
        ModelError: If either artifact has the wrong kind, the
            campaign observed no cells, or a campaign cell is not on
            the map's grid.
    """
    _require_kind(regime_map, REGIME_MAP_KIND, "regime map")
    _require_kind(campaign, CAMPAIGN_KIND, "campaign")
    observed_cells = campaign["observed"]["cells"]
    if not observed_cells:
        raise ModelError("campaign observed no cells; nothing to check")
    comparisons: List[Dict[str, Any]] = []
    agreements = 0
    for observed in observed_cells:
        load = observed["cell"]["load"]
        budget = observed["cell"]["budget"]
        mapped = find_cell(regime_map, load, budget, tolerance=tolerance)
        if mapped is None:
            raise ModelError(
                f"campaign cell (load={load}, budget={budget}) is not "
                f"on the regime map's grid; re-map with matching "
                f"loads/budgets before validating"
            )
        predicted = predicted_outcome(mapped["regime"])
        agree = predicted == observed["outcome"]
        agreements += agree
        comparisons.append(
            {
                "load": load,
                "budget": budget,
                "regime": mapped["regime"],
                "predicted": predicted,
                "observed": observed["outcome"],
                "agree": agree,
            }
        )
    report = {
        "schema": VALIDATION_SCHEMA,
        "kind": VALIDATION_KIND,
        "cells": comparisons,
        "agreements": agreements,
        "disagreements": len(comparisons) - agreements,
        "verdict": (
            "agree" if agreements == len(comparisons) else "disagree"
        ),
    }
    return report


def render_validation(report: Mapping[str, Any]) -> List[str]:
    """Human-readable lines for one validation report."""
    lines = ["predicted vs observed (live trigger campaign)"]
    for cell in report["cells"]:
        marker = "ok " if cell["agree"] else "XX "
        lines.append(
            f"  {marker}load={cell['load']:<5g} "
            f"budget={cell['budget']:<2d} "
            f"regime={cell['regime']:<10s} "
            f"predicted={cell['predicted']:<9s} "
            f"observed={cell['observed']}"
        )
    lines.append(
        f"verdict: {report['verdict']} "
        f"({report['agreements']} agree, "
        f"{report['disagreements']} disagree)"
    )
    return lines
