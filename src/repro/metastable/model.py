"""The retry↔queue feedback loop as a GSPN / CTMC (the *orbit model*).

The serving stack built in PRs 4–7 contains every ingredient of a
metastable system ("Formal Analysis of Metastable Failures in Software
Systems", PAPERS.md): a bounded work queue that sheds with 429, clients
that retry shed requests after a backoff, and a load source that does
not slow down just because the server is busy.  This module captures
that feedback loop as a two-place stochastic Petri net:

* ``Queue`` — requests admitted to the server's bounded queue
  (capacity ``queue_depth``, the scheduler's ``queue_limit``);
* ``Orbit`` — clients sitting in retry backoff after being shed
  (capacity ``orbit_size``, roughly the concurrent client population).

Five timed transitions close the loop (rates are symbolic in
``Lambda``, ``Mu``, ``Delta`` and ``p_retry``):

=================  =====================================  ==========================
transition         rate                                   meaning
=================  =====================================  ==========================
``arrive``         ``Lambda``                             fresh arrival admitted
``service``        ``Mu``                                 one request served
``shed_retry``     ``Lambda * p_retry``                   arrival shed into orbit
``retry_admit``    ``Delta * Orbit``                      a retry finds queue room
``retry_abandon``  ``Delta * (1 - p_retry) * Orbit``      a retry collides and quits
``timeout``        ``Theta * p_retry * Queue``            saturated wait exceeds the
                                                          client deadline; the client
                                                          re-orbits but its request
                                                          stays queued (zombie work)
=================  =====================================  ==========================

``shed_retry``, ``retry_abandon`` and ``timeout`` only fire with the
queue full — encoded as a *test arc* (input and output arc of
multiplicity ``queue_depth`` on ``Queue``, net-zero).  Shed arrivals
that give up immediately, and colliding retries that re-enter orbit,
change no marking and therefore need no transition.  The per-client
retry rate ``Delta`` multiplies the orbit population through a
marking-dependent rate expression (the reachability explorer
substitutes place names), which is the infinite-server behaviour of a
retrial orbit.

``timeout`` is the storm's *sustaining effect*.  Shedding alone cannot
sustain a storm: every admitted retry is eventually served and leaves,
so work is conserved and the orbit drains.  What amplifies work in the
real stack is that the micro-batcher cannot cancel queued requests —
when the queue is saturated, waiting time exceeds the client's
per-attempt deadline, the client gives up and retries, but the orphan
request still consumes service capacity.  ``timeout`` models exactly
that: the client re-orbits (with probability ``p_retry``) while its
token stays in the queue.  One logical request can now occupy several
service slots, ``1 / (1 - p_retry)`` in expectation, and the congested
mode becomes self-sustaining once ``Lambda + Delta * Orbit`` outruns
``Mu``: a queue-full trigger can leave the system pinned long after
the trigger ends.  With ``p_retry = 0`` the transition is inert and
the M/M/1/K limit is untouched.

``p_retry`` abstracts the client's retry budget *B* as a geometric
give-up probability: a client keeps retrying with probability
``1 - 1/B`` per collision, so the mean number of attempts is exactly
*B* (:func:`retry_probability`).  ``B = 1`` gives ``p_retry = 0`` — no
feedback — and the chain collapses onto the classical M/M/1/K queue,
the closed form the property tests pin against
(:func:`mm1k_distribution`).

Two compiled views of the same net:

* :func:`orbit_net` — the :class:`~repro.spn.net.PetriNet`, for the
  reachability explorer and per-point transient solves;
* :func:`orbit_model` — the symbolic
  :class:`~repro.core.model.MarkovModel` over the full
  ``(queue, orbit)`` lattice, built by replaying the net's own firing
  semantics, so the whole (load × retry-policy) grid solves as **one**
  :func:`~repro.ctmc.batch.batch_steady_state` call.  States are
  ordered queue-fastest, which makes the generator banded with width
  ``2 * queue_depth + 3`` — inside the banded engine's reach for the
  queue depths the regime mapper uses.
"""

from __future__ import annotations

import re
from typing import Dict, List, Mapping, Tuple

from repro.core.model import MarkovModel
from repro.exceptions import ModelError
from repro.spn.marking import Marking
from repro.spn.net import PetriNet

#: Parameter names of the orbit model, in documentation order.
ORBIT_PARAMETERS: Tuple[str, ...] = (
    "Lambda",
    "Mu",
    "Delta",
    "Theta",
    "p_retry",
)


def retry_probability(budget: int) -> float:
    """Geometric re-orbit probability equivalent to a retry budget.

    A client with ``max_attempts = budget`` makes at most ``budget``
    attempts; modelling give-up as geometric with per-collision
    continue-probability ``1 - 1/budget`` preserves the mean attempt
    count exactly.  ``budget = 1`` (no retries) maps to 0 — the
    no-feedback limit.
    """
    if budget < 1:
        raise ModelError(f"retry budget must be >= 1, got {budget}")
    return 1.0 - 1.0 / float(budget)


def orbit_net(queue_depth: int, orbit_size: int) -> PetriNet:
    """The retry↔queue feedback loop as a Petri net.

    Args:
        queue_depth: Bounded-queue capacity (the scheduler's
            ``queue_limit``); arrivals beyond it are shed.
        orbit_size: Cap on clients simultaneously in retry backoff
            (roughly the concurrent client population).
    """
    if queue_depth < 1:
        raise ModelError(f"queue_depth must be >= 1, got {queue_depth}")
    if orbit_size < 1:
        raise ModelError(f"orbit_size must be >= 1, got {orbit_size}")
    net = PetriNet(f"orbit-q{queue_depth}-n{orbit_size}")
    net.add_place("Queue", 0)
    net.add_place("Orbit", 0)

    # Fresh arrival admitted while the queue has room.
    net.add_timed_transition("arrive", "Lambda")
    net.add_output_arc("arrive", "Queue")
    net.add_inhibitor_arc("Queue", "arrive", queue_depth)

    # One request served (single server: the batcher dispatch thread).
    net.add_timed_transition("service", "Mu")
    net.add_input_arc("Queue", "service")

    # Arrival shed by the full queue enters the retry orbit with
    # probability p_retry.  Test arc on Queue: enabled only when the
    # queue holds exactly queue_depth tokens, marking unchanged there.
    net.add_timed_transition("shed_retry", "Lambda * p_retry")
    net.add_input_arc("Queue", "shed_retry", queue_depth)
    net.add_output_arc("shed_retry", "Queue", queue_depth)
    net.add_output_arc("shed_retry", "Orbit")
    net.add_inhibitor_arc("Orbit", "shed_retry", orbit_size)

    # Each orbiting client retries at rate Delta; with queue room the
    # retry is admitted.  The marking-dependent rate is the orbit's
    # infinite-server behaviour.
    net.add_timed_transition("retry_admit", "Delta * Orbit")
    net.add_input_arc("Orbit", "retry_admit")
    net.add_output_arc("retry_admit", "Queue")
    net.add_inhibitor_arc("Queue", "retry_admit", queue_depth)

    # A retry that collides with the still-full queue gives up with
    # probability 1 - p_retry (budget exhausted); with p_retry it stays
    # in orbit, which changes no marking and needs no transition.
    net.add_timed_transition(
        "retry_abandon", "Delta * (1 - p_retry) * Orbit"
    )
    net.add_input_arc("Orbit", "retry_abandon")
    net.add_input_arc("Queue", "retry_abandon", queue_depth)
    net.add_output_arc("retry_abandon", "Queue", queue_depth)

    # Saturated-queue client timeout: the wait behind a full queue
    # exceeds the per-attempt deadline, the client re-orbits, and the
    # orphaned request stays queued — the batcher cannot cancel it.
    # This is the zombie work that makes the storm self-sustaining.
    net.add_timed_transition("timeout", "Theta * p_retry * Queue")
    net.add_input_arc("Queue", "timeout", queue_depth)
    net.add_output_arc("timeout", "Queue", queue_depth)
    net.add_output_arc("timeout", "Orbit")
    net.add_inhibitor_arc("Orbit", "timeout", orbit_size)

    net.validate()
    return net


def orbit_marking(queue_depth: int, orbit_size: int, q: int, o: int) -> Marking:
    """The marking with ``q`` queued requests and ``o`` orbiting clients."""
    if not 0 <= q <= queue_depth:
        raise ModelError(
            f"queue occupancy {q} outside [0, {queue_depth}]"
        )
    if not 0 <= o <= orbit_size:
        raise ModelError(f"orbit occupancy {o} outside [0, {orbit_size}]")
    return Marking({"Queue": q, "Orbit": o})


def orbit_states(
    queue_depth: int, orbit_size: int
) -> List[Tuple[int, int]]:
    """Lattice coordinates ``(queue, orbit)`` in compiled state order.

    Queue-fastest ordering: state ``i`` is
    ``(i % (queue_depth + 1), i // (queue_depth + 1))``.  This is the
    order :func:`orbit_model` inserts states in, and what makes the
    generator banded.
    """
    return [
        (q, o)
        for o in range(orbit_size + 1)
        for q in range(queue_depth + 1)
    ]


_IDENTIFIER = re.compile(r"\b[A-Za-z_][A-Za-z0-9_]*\b")


def _bind_marking(source: str, marking: Marking) -> str:
    """Substitute place names in a rate expression with token counts."""
    places = marking.as_dict()

    def replace(match: "re.Match[str]") -> str:
        name = match.group(0)
        if name in places:
            return str(places[name])
        return name

    return _IDENTIFIER.sub(replace, source)


def orbit_model(queue_depth: int, orbit_size: int) -> MarkovModel:
    """The orbit net compiled to a symbolic Markov model, lattice-wide.

    Replays :func:`orbit_net`'s public firing semantics over every
    ``(queue, orbit)`` marking and binds the marking-dependent rate
    expressions per state, keeping ``Lambda``, ``Mu``, ``Delta`` and
    ``p_retry`` symbolic — ready for the compiled batch engines to
    sweep whole (load × retry-policy) grids in one stacked solve.

    State rewards encode *serving capacity*: reward 1 while the queue
    has room (new work is admitted), 0 while it sheds — so the model's
    "availability" is the probability an arrival is not shed.
    """
    net = orbit_net(queue_depth, orbit_size)
    model = MarkovModel(
        net.name,
        f"retry-orbit feedback loop (queue {queue_depth}, "
        f"orbit {orbit_size})",
    )
    markings = [
        orbit_marking(queue_depth, orbit_size, q, o)
        for q, o in orbit_states(queue_depth, orbit_size)
    ]
    for marking in markings:
        model.add_state(
            marking.label(),
            reward=1.0 if marking.tokens("Queue") < queue_depth else 0.0,
        )
    for marking in markings:
        # Competing transitions may share a marking change (shed_retry
        # and timeout both move one client into orbit at a full
        # queue); CTMC edges are unique, so merge their rates.
        edges: Dict[str, List[str]] = {}
        order: List[str] = []
        for transition in net.timed_transitions:
            if not net.is_enabled(transition.name, marking):
                continue
            target = net.fire(transition.name, marking).label()
            if target not in edges:
                edges[target] = []
                order.append(target)
            edges[target].append(
                _bind_marking(transition.rate.source, marking)
            )
        for target in order:
            rates = edges[target]
            rate = (
                rates[0]
                if len(rates) == 1
                else " + ".join(f"({rate})" for rate in rates)
            )
            model.add_transition(marking.label(), target, rate)
    return model


def orbit_values(
    load: float,
    budget: int,
    mu: float = 1.0,
    delta: float = 4.0,
    theta: float = 0.8,
) -> Dict[str, float]:
    """Parameter bindings for one (load, retry-budget) grid cell.

    Args:
        load: Offered load ``rho = Lambda / Mu`` of *fresh* arrivals.
        budget: Client retry budget (``max_attempts``).
        mu: Service rate; rates scale freely, only ratios matter.
        delta: Per-client orbit retry rate (≈ ``2 / backoff_cap`` for a
            full-jitter policy whose mean sleep is half the cap).
        theta: Per-request saturated-queue timeout rate — the rate at
            which a client whose request waits behind a full queue
            gives up on the attempt (≈ 1 / per-attempt deadline).
    """
    if load < 0:
        raise ModelError(f"negative offered load {load}")
    if mu <= 0:
        raise ModelError(f"service rate must be positive, got {mu}")
    if delta <= 0:
        raise ModelError(f"retry rate must be positive, got {delta}")
    if theta < 0:
        raise ModelError(f"negative timeout rate {theta}")
    return {
        "Lambda": load * mu,
        "Mu": mu,
        "Delta": delta,
        "Theta": theta,
        "p_retry": retry_probability(budget),
    }


# Closed forms and the retry fixed point -----------------------------------


def mm1k_distribution(rho: float, queue_depth: int) -> List[float]:
    """Stationary queue-length distribution of the M/M/1/K queue.

    ``pi_q ∝ rho**q`` for ``q`` in ``0..K`` (uniform at ``rho == 1``).
    This is the orbit model's exact no-feedback limit
    (``p_retry = 0``): the orbit never fills and the queue column is a
    plain M/M/1/K birth–death chain.
    """
    if rho < 0:
        raise ModelError(f"negative offered load {rho}")
    if queue_depth < 1:
        raise ModelError(f"queue_depth must be >= 1, got {queue_depth}")
    weights = [rho ** q for q in range(queue_depth + 1)]
    total = sum(weights)
    return [w / total for w in weights]


def mm1k_blocking(rho: float, queue_depth: int) -> float:
    """Blocking (shed) probability of the M/M/1/K queue."""
    return mm1k_distribution(rho, queue_depth)[-1]


def retry_fixed_point(
    load: float,
    budget: int,
    queue_depth: int,
    mu: float = 1.0,
    delta: float = 4.0,
    theta: float = 0.8,
    orbit_size: int | None = None,
    tol: float = 1e-12,
    max_iterations: int = 10_000,
) -> Dict[str, float]:
    """Mean-field fixed point of the retry↔queue loop.

    Treats the total attempt stream (fresh arrivals plus orbit
    retries) as Poisson into an M/M/1/K queue and balances the orbit:
    inflow ``(Lambda + Theta * K) * B * p_retry`` — shed arrivals that
    re-orbit plus saturated-queue timeouts, both proportional to the
    blocked fraction ``B`` — against outflow
    ``Delta * E[Orbit] * (1 - B * p_retry)`` (retries admitted at rate
    ``Delta * E[Orbit] * (1 - B)`` plus collisions that abandon at
    ``Delta * E[Orbit] * B * (1 - p_retry)``), where ``B`` is the
    blocking probability at the effective load.  Damped iteration to
    the fixed point.

    In the no-feedback limit (``budget = 1``) the fixed point is the
    plain M/M/1/K queue exactly: ``effective_load == load`` and
    ``orbit_mean == 0``.

    Returns:
        Dict with ``effective_load``, ``blocking``, ``orbit_mean``,
        ``amplification`` (effective / offered attempt rate) and
        ``iterations``.
    """
    values = orbit_values(load, budget, mu=mu, delta=delta, theta=theta)
    lam, p_retry = values["Lambda"], values["p_retry"]
    if tol <= 0:
        raise ModelError(f"tolerance must be positive, got {tol}")
    orbit_mean = 0.0
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        effective = (lam + delta * orbit_mean) / mu
        blocking = mm1k_blocking(effective, queue_depth)
        inflow = (lam + theta * queue_depth) * blocking * p_retry
        drain = delta * (1.0 - blocking * p_retry)
        if drain <= 0.0:
            # p_retry == 1 with a permanently full queue: the orbit
            # never drains; report saturation at the cap.
            updated = float("inf") if orbit_size is None else float(orbit_size)
        else:
            updated = inflow / drain
        if orbit_size is not None:
            updated = min(updated, float(orbit_size))
        # Damping keeps the iteration contractive near the fold where
        # the storm branch appears.
        updated = 0.5 * (orbit_mean + updated)
        if abs(updated - orbit_mean) <= tol * max(1.0, orbit_mean):
            orbit_mean = updated
            break
        orbit_mean = updated
    effective = (lam + delta * orbit_mean) / mu
    blocking = mm1k_blocking(effective, queue_depth)
    return {
        "effective_load": effective,
        "blocking": blocking,
        "orbit_mean": orbit_mean,
        "amplification": effective / load if load > 0 else 1.0,
        "iterations": float(iterations),
    }
