"""Regime mapping: sweep (load × retry-policy) grids, classify, render.

Three regimes, decided from two congestion numbers per grid cell
(congestion = expected orbit occupancy as a fraction of the orbit
cap):

``stable``
    Neither number crosses the threshold: the retry storm is not the
    long-run behaviour, *and* a triggered storm (queue and orbit
    slammed full) dissipates before the observation horizon.
``vulnerable``
    Steady state is clear, but the triggered storm is still above the
    threshold at the horizon: the feedback loop sustains the storm
    long after the trigger ends.  The system works until something —
    a load spike, a slow restart — pushes it over, which is the
    defining signature of a metastable failure.
``metastable``
    The storm *is* the steady state: stationary congestion crosses the
    threshold, no trigger needed.

Steady-state congestion for the whole grid comes from **one**
:func:`~repro.ctmc.batch.batch_steady_state` call (the lattice model
keeps ``Lambda``/``p_retry`` symbolic); triggered congestion is a
Fox–Glynn transient solve per cell, fanned out with
:func:`~repro.parallel.pool.parallel_map`.

The artifact follows the repo's determinism idiom: everything derived
from the configuration lives in the ``"deterministic"`` sub-document
(diffed bit-for-bit by CI), wall-clock timings outside it.  A regime
map has no seed at all — same configuration, same bytes.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.ctmc.batch import batch_steady_state
from repro.ctmc.generator import build_generator
from repro.ctmc.transient import transient_distribution
from repro.exceptions import ModelError
from repro.metastable.model import (
    orbit_marking,
    orbit_model,
    orbit_states,
    orbit_values,
    retry_probability,
)
from repro.parallel.pool import parallel_map

#: Regime-map artifact schema version.
REGIME_MAP_SCHEMA = 1

#: Artifact ``kind`` discriminator.
REGIME_MAP_KIND = "metastable-regime-map"

#: The taxonomy, mildest first.
REGIMES = ("stable", "vulnerable", "metastable")

#: Default (load × retry-budget) grid — spans all three regimes under
#: the default model constants below.
DEFAULT_LOADS = (0.3, 0.45, 0.6, 0.75, 0.9)
DEFAULT_BUDGETS = (1, 2, 3, 4, 6)

#: Default model constants (rates relative to ``mu = 1``).  These
#: mirror the default live-campaign knobs exactly:
#: ``queue_depth = queue_limit``, ``delta = (2 / backoff_cap) / mu``,
#: ``theta = (1 / deadline) / mu``.
DEFAULT_QUEUE_DEPTH = 6
DEFAULT_ORBIT_SIZE = 8
DEFAULT_DELTA = 4.0
DEFAULT_THETA = 0.8

#: Default transient horizon (time units of ``1 / mu``) and the orbit
#: fill fraction counted as a storm.
DEFAULT_HORIZON = 10.0
DEFAULT_THRESHOLD = 0.3

#: Digits kept in artifact floats — well above solver noise, stable
#: across re-runs of the same configuration.
_ARTIFACT_DIGITS = 12


def classify(
    congestion_steady: float,
    congestion_triggered: float,
    threshold: float = DEFAULT_THRESHOLD,
) -> str:
    """One cell's regime from its two congestion numbers."""
    if congestion_steady >= threshold:
        return "metastable"
    if congestion_triggered >= threshold:
        return "vulnerable"
    return "stable"


def predicted_outcome(regime: str) -> str:
    """Live-campaign outcome a regime predicts after a trigger.

    A stable cell sheds the storm within the horizon (``"recovered"``);
    vulnerable and metastable cells are still storming when the
    observation window closes (``"pinned"``).
    """
    if regime not in REGIMES:
        raise ModelError(f"unknown regime {regime!r}; expected {REGIMES}")
    return "recovered" if regime == "stable" else "pinned"


def _round(value: float) -> float:
    return round(float(value), _ARTIFACT_DIGITS)


def map_regimes(
    loads: Sequence[float] = DEFAULT_LOADS,
    budgets: Sequence[int] = DEFAULT_BUDGETS,
    queue_depth: int = DEFAULT_QUEUE_DEPTH,
    orbit_size: int = DEFAULT_ORBIT_SIZE,
    mu: float = 1.0,
    delta: float = DEFAULT_DELTA,
    theta: float = DEFAULT_THETA,
    horizon: float = DEFAULT_HORIZON,
    threshold: float = DEFAULT_THRESHOLD,
    method: str = "auto",
    n_jobs: int = 1,
) -> Dict[str, Any]:
    """Sweep the (load × retry-budget) grid and classify every cell.

    Args:
        loads: Offered loads ``rho = Lambda / Mu`` (grid columns).
        budgets: Client retry budgets (grid rows).
        queue_depth / orbit_size: Lattice dimensions.
        mu / delta / theta: Service, orbit-retry and timeout rates.
        horizon: Transient horizon for the triggered solve, in units
            of ``1 / mu`` when ``mu = 1``.
        threshold: Orbit fill fraction counted as a storm.
        method: Batch engine — ``"auto"``, ``"direct"``, ``"gth"``,
            ``"banded"`` or ``"sparse"``.
        n_jobs: Workers for the per-cell transient fan-out.

    Returns:
        The regime-map artifact (see module docstring).
    """
    started = time.perf_counter()
    loads = [float(load) for load in loads]
    budgets = [int(budget) for budget in budgets]
    if not loads or not budgets:
        raise ModelError("regime grid needs at least one load and budget")
    if sorted(loads) != loads or len(set(loads)) != len(loads):
        raise ModelError(f"loads must be strictly increasing, got {loads}")
    if sorted(budgets) != budgets or len(set(budgets)) != len(budgets):
        raise ModelError(
            f"budgets must be strictly increasing, got {budgets}"
        )
    if threshold <= 0 or threshold >= 1:
        raise ModelError(f"threshold must be in (0, 1), got {threshold}")
    if horizon <= 0:
        raise ModelError(f"horizon must be positive, got {horizon}")

    model = orbit_model(queue_depth, orbit_size)
    coords = orbit_states(queue_depth, orbit_size)
    orbit_counts = np.array([o for _, o in coords], dtype=float)
    served_reward = np.array(
        [1.0 if q < queue_depth else 0.0 for q, _ in coords]
    )
    points: List[Tuple[float, int]] = [
        (load, budget) for budget in budgets for load in loads
    ]

    # Steady state for the whole grid: one stacked solve.
    columns = {
        "Lambda": np.array([load * mu for load, _ in points]),
        "p_retry": np.array(
            [retry_probability(budget) for _, budget in points]
        ),
        "Mu": mu,
        "Delta": delta,
        "Theta": theta,
    }
    pis = batch_steady_state(
        model, columns, n_samples=len(points), method=method
    )

    # Triggered transient per cell, fanned out over forked workers.
    trigger_label = orbit_marking(
        queue_depth, orbit_size, queue_depth, orbit_size
    ).label()
    orbit_of_label = {
        orbit_marking(queue_depth, orbit_size, q, o).label(): o
        for q, o in coords
    }

    def triggered_congestion(point: Tuple[float, int]) -> float:
        load, budget = point
        values = orbit_values(
            load, budget, mu=mu, delta=delta, theta=theta
        )
        generator = build_generator(model, values)
        distribution = transient_distribution(
            generator, horizon, initial=trigger_label
        )
        mean_orbit = sum(
            probability * orbit_of_label[state]
            for state, probability in distribution.items()
        )
        return mean_orbit / orbit_size

    triggered = parallel_map(triggered_congestion, points, n_jobs=n_jobs)

    cells: List[Dict[str, Any]] = []
    for i, (load, budget) in enumerate(points):
        congestion_steady = float(pis[i] @ orbit_counts) / orbit_size
        congestion_triggered = float(triggered[i])
        regime = classify(
            congestion_steady, congestion_triggered, threshold
        )
        cells.append(
            {
                "load": load,
                "budget": budget,
                "p_retry": _round(retry_probability(budget)),
                "congestion_steady": _round(congestion_steady),
                "congestion_triggered": _round(congestion_triggered),
                "availability": _round(float(pis[i] @ served_reward)),
                "regime": regime,
                "predicted_outcome": predicted_outcome(regime),
            }
        )

    # Trigger boundary: per budget row, the lowest load whose cell has
    # left the stable regime (None when the whole row is stable).
    boundary: List[Dict[str, Any]] = []
    for budget in budgets:
        row = [cell for cell in cells if cell["budget"] == budget]
        unstable = [
            cell["load"] for cell in row if cell["regime"] != "stable"
        ]
        boundary.append(
            {
                "budget": budget,
                "trigger_load": min(unstable) if unstable else None,
            }
        )

    counts = {regime: 0 for regime in REGIMES}
    for cell in cells:
        counts[cell["regime"]] += 1

    elapsed = time.perf_counter() - started
    return {
        "schema": REGIME_MAP_SCHEMA,
        "kind": REGIME_MAP_KIND,
        "deterministic": {
            "schema": REGIME_MAP_SCHEMA,
            "kind": REGIME_MAP_KIND,
            "model": {
                "queue_depth": queue_depth,
                "orbit_size": orbit_size,
                "n_states": len(coords),
                "mu": mu,
                "delta": delta,
                "theta": theta,
            },
            "grid": {
                "loads": loads,
                "budgets": budgets,
                "horizon": horizon,
                "congestion_threshold": threshold,
                "method": method,
            },
            "cells": cells,
            "boundary": boundary,
            "regime_counts": counts,
        },
        "timing": {"elapsed_seconds": elapsed, "n_jobs": n_jobs},
    }


def find_cell(
    artifact: Mapping[str, Any],
    load: float,
    budget: int,
    tolerance: float = 1e-9,
) -> Optional[Dict[str, Any]]:
    """The grid cell at ``(load, budget)``, or None if unmapped."""
    for cell in artifact["deterministic"]["cells"]:
        if (
            cell["budget"] == int(budget)
            and abs(cell["load"] - float(load)) <= tolerance
        ):
            return dict(cell)
    return None


def render_regime_map(artifact: Mapping[str, Any]) -> List[str]:
    """ASCII rendering: budgets down, loads across, one letter a cell."""
    det = artifact["deterministic"]
    loads = det["grid"]["loads"]
    budgets = det["grid"]["budgets"]
    by_key = {
        (cell["budget"], cell["load"]): cell for cell in det["cells"]
    }
    symbol = {"stable": ".", "vulnerable": "v", "metastable": "M"}
    lines = [
        "regime map (rows: retry budget, cols: offered load)",
        "  . stable   v vulnerable   M metastable",
        "budget | " + " ".join(f"{load:>5.2f}" for load in loads),
    ]
    lines.append("-" * len(lines[-1]))
    for budget in reversed(budgets):
        row = " ".join(
            f"{symbol[by_key[(budget, load)]['regime']]:>5}"
            for load in loads
        )
        lines.append(f"{budget:>6} | {row}")
    boundary = {
        entry["budget"]: entry["trigger_load"]
        for entry in det["boundary"]
    }
    edge = ", ".join(
        f"budget {budget}: "
        + (
            f"load >= {boundary[budget]:g}"
            if boundary[budget] is not None
            else "never"
        )
        for budget in budgets
    )
    lines.append(f"trigger boundary: {edge}")
    return lines


def write_regime_map(
    artifact: Mapping[str, Any], path: "str | Path"
) -> Path:
    """Write the artifact as stable, sorted-key JSON."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(
        json.dumps(artifact, indent=2, sort_keys=True) + "\n"
    )
    return target


def load_regime_map(path: "str | Path") -> Dict[str, Any]:
    """Read an artifact back, validating schema and kind."""
    artifact = json.loads(Path(path).read_text())
    if artifact.get("kind") != REGIME_MAP_KIND:
        raise ModelError(
            f"{path}: expected kind {REGIME_MAP_KIND!r}, "
            f"got {artifact.get('kind')!r}"
        )
    if artifact.get("schema") != REGIME_MAP_SCHEMA:
        raise ModelError(
            f"{path}: unsupported regime-map schema "
            f"{artifact.get('schema')!r}"
        )
    return artifact
