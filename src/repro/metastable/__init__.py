"""repro.metastable — the retry↔queue feedback loop, mapped and lived.

A load-shedding server with retrying clients hides a second stable
operating point: a storm where the queue stays pinned full and almost
all service capacity goes to *zombie work* — requests whose clients
have already timed out and re-orbited.  This package models that loop,
maps where it bites, and validates the map against the live service
under seeded chaos load:

* :mod:`repro.metastable.model` — the orbit GSPN (queue × retry
  orbit) compiled to a symbolic CTMC lattice, plus the M/M/1/K and
  mean-field closed forms it must agree with in the no-feedback limit;
* :mod:`repro.metastable.regimes` — sweep (offered load × retry
  budget) grids with one batched steady-state solve plus a Fox–Glynn
  transient per cell; classify stable / vulnerable / metastable and
  emit the schema-versioned regime-map artifact;
* :mod:`repro.metastable.campaign` — drive the real
  :mod:`repro.service` server through a seeded load-spike trigger
  (burst → sustain → release) and let monitor probes decide
  recovered vs pinned;
* :mod:`repro.metastable.validate` — join the two artifacts and
  render the predicted-vs-observed verdict.

CLI: ``repro-avail metastable map | campaign | validate``.  The guide at
``docs/metastable_guide.md`` walks the whole loop.
"""

from __future__ import annotations

from repro.metastable.campaign import (
    CAMPAIGN_KIND,
    CAMPAIGN_SCHEMA,
    DEFAULT_CELLS,
    OUTCOMES,
    CampaignCell,
    load_campaign,
    parse_cells,
    run_trigger_campaign,
    write_campaign,
)
from repro.metastable.model import (
    ORBIT_PARAMETERS,
    mm1k_blocking,
    mm1k_distribution,
    orbit_marking,
    orbit_model,
    orbit_net,
    orbit_states,
    orbit_values,
    retry_fixed_point,
    retry_probability,
)
from repro.metastable.regimes import (
    REGIME_MAP_KIND,
    REGIME_MAP_SCHEMA,
    REGIMES,
    classify,
    find_cell,
    load_regime_map,
    map_regimes,
    predicted_outcome,
    render_regime_map,
    write_regime_map,
)
from repro.metastable.validate import (
    VALIDATION_KIND,
    VALIDATION_SCHEMA,
    VERDICTS,
    render_validation,
    validate_boundary,
)

__all__ = [
    "CAMPAIGN_KIND",
    "CAMPAIGN_SCHEMA",
    "DEFAULT_CELLS",
    "ORBIT_PARAMETERS",
    "OUTCOMES",
    "REGIMES",
    "REGIME_MAP_KIND",
    "REGIME_MAP_SCHEMA",
    "VALIDATION_KIND",
    "VALIDATION_SCHEMA",
    "VERDICTS",
    "CampaignCell",
    "classify",
    "find_cell",
    "load_campaign",
    "load_regime_map",
    "map_regimes",
    "mm1k_blocking",
    "mm1k_distribution",
    "orbit_marking",
    "orbit_model",
    "orbit_net",
    "orbit_states",
    "orbit_values",
    "parse_cells",
    "predicted_outcome",
    "render_regime_map",
    "render_validation",
    "retry_fixed_point",
    "retry_probability",
    "run_trigger_campaign",
    "validate_boundary",
    "write_campaign",
    "write_regime_map",
]
