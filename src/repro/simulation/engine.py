"""A minimal, deterministic discrete-event simulation engine.

Design points:

* a binary-heap event calendar keyed by ``(time, sequence)`` so
  simultaneous events fire in schedule order — runs are exactly
  reproducible for a given seed;
* events carry a callback and optional payload; callbacks may schedule
  further events and may cancel pending ones;
* the engine never moves time backwards and refuses to schedule into the
  past, turning subtle model bugs into immediate errors.
"""

from __future__ import annotations

import heapq
import itertools
import math
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from repro import obs
from repro.exceptions import SimulationError

EventCallback = Callable[["SimulationEngine", Any], None]


@dataclass(order=True)
class Event:
    """A scheduled event; ordering is by (time, sequence number)."""

    time: float
    sequence: int
    callback: EventCallback = field(compare=False)
    payload: Any = field(compare=False, default=None)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped."""
        self.cancelled = True


class SimulationEngine:
    """An event calendar with a clock.

    Example::

        engine = SimulationEngine()
        engine.schedule(1.5, lambda eng, _: print("fired at", eng.now))
        engine.run_until(10.0)
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._calendar: list = []
        self._sequence = itertools.count()
        self._events_fired = 0

    @property
    def now(self) -> float:
        """Current simulation time (hours, by library convention)."""
        return self._now

    @property
    def events_fired(self) -> int:
        return self._events_fired

    @property
    def pending_events(self) -> int:
        return sum(1 for e in self._calendar if not e.cancelled)

    def schedule(
        self,
        delay: float,
        callback: EventCallback,
        payload: Any = None,
        label: str = "",
    ) -> Event:
        """Schedule a callback ``delay`` time units from now.

        Returns the :class:`Event`, which the caller may later cancel.
        """
        if not math.isfinite(delay) or delay < 0.0:
            raise SimulationError(
                f"event delay must be finite and non-negative, got {delay} "
                f"(label={label!r})"
            )
        event = Event(
            time=self._now + delay,
            sequence=next(self._sequence),
            callback=callback,
            payload=payload,
            label=label,
        )
        heapq.heappush(self._calendar, event)
        return event

    def run_until(self, end_time: float, max_events: Optional[int] = None) -> None:
        """Fire events in order until the calendar empties or time is up.

        The clock is left at ``end_time`` even if the calendar empties
        earlier, so time-average statistics cover the full horizon.

        Args:
            end_time: Simulation horizon.
            max_events: Optional safety cap; exceeding it raises, which
                catches accidental event storms (e.g. a zero-delay
                self-rescheduling loop).
        """
        if end_time < self._now:
            raise SimulationError(
                f"cannot run until {end_time}; clock is already at {self._now}"
            )
        # Observability bookkeeping stays outside the event loop: one
        # enabled() check up front, one gauge/counter update at the end.
        instrumented = obs.enabled()
        if instrumented:
            fired_before = self._events_fired
            wall_before = time.perf_counter()
        while self._calendar:
            event = self._calendar[0]
            if event.time > end_time:
                break
            heapq.heappop(self._calendar)
            if event.cancelled:
                continue
            if event.time < self._now:  # pragma: no cover - defensive
                raise SimulationError("event calendar went backwards")
            self._now = event.time
            self._events_fired += 1
            if max_events is not None and self._events_fired > max_events:
                raise SimulationError(
                    f"exceeded {max_events} events before reaching "
                    f"t={end_time}; runaway event loop?"
                )
            event.callback(self, event.payload)
        self._now = end_time
        if instrumented:
            fired = self._events_fired - fired_before
            elapsed = time.perf_counter() - wall_before
            obs.counter("sim_events_total").inc(fired)
            if elapsed > 0.0 and fired:
                obs.gauge("sim_events_per_second").set(fired / elapsed)

    def run_all(self, max_events: int = 10_000_000) -> None:
        """Drain the calendar completely (for terminating workloads)."""
        while self._calendar:
            # Advance to the next pending event; callbacks may schedule
            # more, so re-check the calendar each pass.
            self.run_until(self._calendar[0].time, max_events=max_events)


class StateTimeAccumulator:
    """Tracks time spent per named state (up/down accounting).

    Feed it state changes; read time totals at the end.  Used both by the
    CTMC simulator and the testbed's availability bookkeeping.
    """

    def __init__(self, initial_state: str, start_time: float = 0.0) -> None:
        self._state = initial_state
        self._since = start_time
        self._totals: Dict[str, float] = {}

    @property
    def state(self) -> str:
        return self._state

    def change(self, new_state: str, at_time: float) -> None:
        if at_time < self._since:
            raise SimulationError(
                f"state change at {at_time} precedes last change at "
                f"{self._since}"
            )
        self._totals[self._state] = (
            self._totals.get(self._state, 0.0) + at_time - self._since
        )
        self._state = new_state
        self._since = at_time

    def finalize(self, end_time: float) -> Dict[str, float]:
        """Close the open interval and return total time per state."""
        if end_time < self._since:
            raise SimulationError("end time precedes last state change")
        totals = dict(self._totals)
        totals[self._state] = (
            totals.get(self._state, 0.0) + end_time - self._since
        )
        return totals
