"""Discrete-event simulation: the library's "measurement" substrate.

Two layers:

* a generic event-calendar engine (:mod:`repro.simulation.engine`) with
  random-variate distributions (:mod:`repro.simulation.distributions`),
  used by the simulated testbed in :mod:`repro.testbed`;
* a Monte Carlo CTMC simulator (:mod:`repro.simulation.ctmc_sim`) that
  replays any :class:`~repro.core.model.MarkovModel` stochastically and
  accounts uptime/downtime — the independent cross-check for the
  analytic solvers, with replication statistics in
  :mod:`repro.simulation.replication`.
"""

from repro.simulation.engine import Event, SimulationEngine
from repro.simulation.distributions import (
    Deterministic,
    Exponential,
    LogNormal,
    RandomVariate,
    Weibull,
)
from repro.simulation.ctmc_sim import CtmcSimulationResult, simulate_ctmc
from repro.simulation.replication import (
    ReplicationSummary,
    run_replications,
)

__all__ = [
    "Event",
    "SimulationEngine",
    "RandomVariate",
    "Exponential",
    "Deterministic",
    "LogNormal",
    "Weibull",
    "CtmcSimulationResult",
    "simulate_ctmc",
    "ReplicationSummary",
    "run_replications",
]
