"""Monte Carlo simulation of a CTMC with availability accounting.

Replays a bound :class:`~repro.ctmc.generator.GeneratorMatrix`
stochastically (Gillespie-style: exponential sojourn, categorical jump)
and accumulates time per state.  This is the independent cross-check for
the analytic steady-state solvers: for an irreducible chain the simulated
time-average availability converges to the analytic value, and the
benchmark `test_bench_sim_vs_analytic` quantifies the agreement.

Rare-event caveat, documented rather than hidden: the paper's models have
unavailabilities around 1e-6, so a *naive* simulation needs ~1e9 hours of
simulated time for a handful of down events.  The simulator is therefore
exercised on (a) the paper's models over very long horizons, and (b)
rescaled variants, in the validation benches.  Importance sampling is out
of scope; the analytic engine is the headline result, the simulator the
auditor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Union

import numpy as np

from repro.core.model import MarkovModel
from repro.ctmc.generator import GeneratorMatrix, build_generator
from repro.exceptions import SimulationError
from repro.simulation.engine import StateTimeAccumulator


@dataclass(frozen=True)
class CtmcSimulationResult:
    """Outcome of one simulated trajectory.

    Attributes:
        horizon: Simulated time span (hours).
        time_in_state: Hours accumulated per state.
        availability: Fraction of the horizon spent in up states.
        n_transitions: Jumps taken.
        n_failures: Entries into the down set.
        downtime_events: Durations of completed down periods (hours).
    """

    horizon: float
    time_in_state: Dict[str, float]
    availability: float
    n_transitions: int
    n_failures: int
    downtime_events: tuple

    @property
    def unavailability(self) -> float:
        return 1.0 - self.availability

    @property
    def mean_downtime_hours(self) -> float:
        if not self.downtime_events:
            return 0.0
        return float(np.mean(self.downtime_events))


def simulate_ctmc(
    model_or_generator: Union[MarkovModel, GeneratorMatrix],
    horizon: float,
    values: Optional[Mapping[str, float]] = None,
    initial_state: Optional[str] = None,
    seed: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
    max_transitions: int = 50_000_000,
) -> CtmcSimulationResult:
    """Simulate one trajectory of the chain for ``horizon`` hours.

    Args:
        model_or_generator: Model (with ``values``) or bound generator.
        horizon: Simulated time (hours).
        initial_state: Starting state; defaults to the first state.
        seed / rng: Reproducibility controls (pass exactly one).
        max_transitions: Guard against accidentally stiff chains.

    Returns:
        A :class:`CtmcSimulationResult`.
    """
    if isinstance(model_or_generator, GeneratorMatrix):
        generator = model_or_generator
    else:
        if values is None:
            raise SimulationError(
                "parameter values are required when passing a MarkovModel"
            )
        generator = build_generator(model_or_generator, values)
    if horizon <= 0.0:
        raise SimulationError(f"horizon must be positive, got {horizon}")
    if rng is not None and seed is not None:
        raise SimulationError("pass either seed or rng, not both")
    rng = rng or np.random.default_rng(seed)

    q = generator.dense()
    n = generator.n_states
    exit_rates = -np.diag(q)
    # Jump distributions per state (empty row = absorbing).
    jump_targets = []
    jump_probabilities = []
    for i in range(n):
        row = q[i].copy()
        row[i] = 0.0
        total = row.sum()
        if total <= 0.0:
            jump_targets.append(np.array([], dtype=int))
            jump_probabilities.append(np.array([]))
        else:
            targets = np.nonzero(row)[0]
            jump_targets.append(targets)
            jump_probabilities.append(row[targets] / total)

    up = generator.up_mask()
    state = (
        generator.index_of(initial_state)
        if initial_state is not None
        else 0
    )
    accumulator = StateTimeAccumulator(generator.state_names[state])
    clock = 0.0
    n_transitions = 0
    n_failures = 0
    downtime_events = []
    down_since: Optional[float] = None

    while True:
        rate = exit_rates[state]
        if rate <= 0.0:
            break  # absorbing: sit here until the horizon
        sojourn = rng.exponential(1.0 / rate)
        if clock + sojourn >= horizon:
            break
        clock += sojourn
        next_state = int(
            rng.choice(jump_targets[state], p=jump_probabilities[state])
        )
        was_up = bool(up[state])
        now_up = bool(up[next_state])
        if was_up and not now_up:
            n_failures += 1
            down_since = clock
        elif not was_up and now_up and down_since is not None:
            downtime_events.append(clock - down_since)
            down_since = None
        state = next_state
        accumulator.change(generator.state_names[state], clock)
        n_transitions += 1
        if n_transitions > max_transitions:
            raise SimulationError(
                f"exceeded {max_transitions} transitions before t={horizon}"
            )

    time_in_state = accumulator.finalize(horizon)
    up_time = sum(
        time_in_state.get(name, 0.0)
        for name, is_up in zip(generator.state_names, up)
        if is_up
    )
    return CtmcSimulationResult(
        horizon=horizon,
        time_in_state=time_in_state,
        availability=up_time / horizon,
        n_transitions=n_transitions,
        n_failures=n_failures,
        downtime_events=tuple(downtime_events),
    )
