"""Replication statistics for simulation experiments.

Independent replications with per-replication seeds derived from a master
seed; summary includes a t-based confidence interval on the mean, so the
simulation-vs-analytic benchmarks can make calibrated agreement claims
("the analytic value lies inside the simulation's 99% CI").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.estimation.intervals import mean_confidence_interval
from repro.exceptions import SimulationError

#: A replication: seed -> scalar outcome.
ReplicationFunction = Callable[[int], float]


@dataclass(frozen=True)
class ReplicationSummary:
    """Aggregate of independent replications of a stochastic experiment."""

    values: Tuple[float, ...]
    mean: float
    ci_low: float
    ci_high: float
    confidence: float

    @property
    def n(self) -> int:
        return len(self.values)

    @property
    def half_width(self) -> float:
        return (self.ci_high - self.ci_low) / 2.0

    def contains(self, value: float) -> bool:
        """Is a reference value inside the confidence interval?"""
        return self.ci_low <= value <= self.ci_high

    def summary(self) -> str:
        return (
            f"mean={self.mean:.6g} over {self.n} replications, "
            f"{self.confidence:.0%} CI=({self.ci_low:.6g}, {self.ci_high:.6g})"
        )


def run_replications(
    experiment: ReplicationFunction,
    n_replications: int,
    master_seed: Optional[int] = None,
    confidence: float = 0.95,
    n_jobs: Optional[int] = 1,
) -> ReplicationSummary:
    """Run an experiment under independent seeds and summarize.

    Seeds are drawn from ``numpy``'s ``SeedSequence`` spawned off the
    master seed, guaranteeing independent streams.

    Args:
        n_jobs: Number of worker processes.  ``1`` (default) runs
            sequentially in-process; ``None`` uses one worker per CPU.
            Parallel runs fan out through
            :func:`repro.parallel.parallel_map` on forked workers, so
            lambdas and closures work — only the returned floats cross
            the process boundary.  The seeds and the order of
            ``values`` are identical regardless of ``n_jobs``, so a
            seeded summary does not depend on the worker count.
    """
    if n_replications < 2:
        raise SimulationError(
            f"need at least 2 replications for a CI, got {n_replications}"
        )
    if n_jobs is not None and n_jobs < 1:
        raise SimulationError(f"n_jobs must be >= 1 or None, got {n_jobs}")
    sequence = np.random.SeedSequence(master_seed)
    children = sequence.spawn(n_replications)
    seeds = [int(child.generate_state(1)[0]) for child in children]
    with obs.span(
        "simulation.replications",
        n_replications=n_replications,
        n_jobs=n_jobs if n_jobs is not None else 0,
    ):
        if n_jobs == 1:
            instrumented = obs.enabled()
            values = []
            for i, seed in enumerate(seeds):
                values.append(float(experiment(seed)))
                if instrumented:
                    obs.event(
                        "simulation.replication_done",
                        replication=i,
                        of=n_replications,
                    )
        else:
            from repro.exceptions import ParallelError
            from repro.parallel import parallel_map

            try:
                values = [
                    float(v)
                    for v in parallel_map(experiment, seeds, n_jobs=n_jobs)
                ]
            except ParallelError as exc:
                raise SimulationError(
                    f"parallel replications failed: {exc}"
                ) from exc
    mean, low, high = mean_confidence_interval(values, confidence)
    return ReplicationSummary(
        values=tuple(values),
        mean=mean,
        ci_low=low,
        ci_high=high,
        confidence=confidence,
    )
