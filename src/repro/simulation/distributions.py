"""Random variates for the discrete-event simulator.

The analytic models are exponential throughout (Markov assumption), but
the *measured* world is not: restart times are near-deterministic and
repair times are skewed.  The testbed therefore draws from a family of
distributions so the simulation-vs-analytic benchmarks can quantify how
much the exponential assumption matters (one of the ablations).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.exceptions import SimulationError


class RandomVariate:
    """Interface: draw positive durations from a distribution."""

    def sample(self, rng: np.random.Generator) -> float:
        raise NotImplementedError

    @property
    def mean(self) -> float:
        raise NotImplementedError


@dataclass(frozen=True)
class Exponential(RandomVariate):
    """Exponential with the given rate (per hour)."""

    rate: float

    def __post_init__(self) -> None:
        if self.rate <= 0.0 or not math.isfinite(self.rate):
            raise SimulationError(
                f"exponential rate must be positive and finite, got {self.rate}"
            )

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(1.0 / self.rate))

    @property
    def mean(self) -> float:
        return 1.0 / self.rate


@dataclass(frozen=True)
class Deterministic(RandomVariate):
    """A fixed duration — restart timers are close to this in practice."""

    value: float

    def __post_init__(self) -> None:
        if self.value <= 0.0 or not math.isfinite(self.value):
            raise SimulationError(
                f"deterministic duration must be positive, got {self.value}"
            )

    def sample(self, rng: np.random.Generator) -> float:
        return self.value

    @property
    def mean(self) -> float:
        return self.value


@dataclass(frozen=True)
class LogNormal(RandomVariate):
    """Log-normal parameterized by its mean and coefficient of variation.

    Convenient for skewed repair times: ``LogNormal(mean=0.5, cv=0.8)``.
    """

    mean_value: float
    cv: float

    def __post_init__(self) -> None:
        if self.mean_value <= 0.0:
            raise SimulationError(
                f"log-normal mean must be positive, got {self.mean_value}"
            )
        if self.cv <= 0.0:
            raise SimulationError(
                f"log-normal cv must be positive, got {self.cv}"
            )

    def _params(self) -> tuple:
        sigma2 = math.log(1.0 + self.cv**2)
        mu = math.log(self.mean_value) - sigma2 / 2.0
        return mu, math.sqrt(sigma2)

    def sample(self, rng: np.random.Generator) -> float:
        mu, sigma = self._params()
        return float(rng.lognormal(mu, sigma))

    @property
    def mean(self) -> float:
        return self.mean_value


@dataclass(frozen=True)
class Weibull(RandomVariate):
    """Weibull with shape k and scale lambda (hours).

    Shape < 1 gives infant-mortality behaviour, shape > 1 wear-out —
    useful for the non-exponential failure ablation.
    """

    shape: float
    scale: float

    def __post_init__(self) -> None:
        if self.shape <= 0.0 or self.scale <= 0.0:
            raise SimulationError(
                f"Weibull shape and scale must be positive, got "
                f"({self.shape}, {self.scale})"
            )

    def sample(self, rng: np.random.Generator) -> float:
        return float(self.scale * rng.weibull(self.shape))

    @property
    def mean(self) -> float:
        return self.scale * math.gamma(1.0 + 1.0 / self.shape)
