"""Generalized stochastic Petri nets (GSPN) compiled to CTMCs.

The paper notes that stochastic Petri nets are the standard higher-level
front-end for specifying Markov availability models (citing SPNP [2] and
UltraSAN [14]).  This package provides that layer:

* build a :class:`~repro.spn.net.PetriNet` from places, timed/immediate
  transitions and arcs (including inhibitor arcs); timed rates may
  reference place names for marking-dependent rates (e.g. the paper's
  workload-acceleration law as ``"Up * La * 2 ** Down"``);
* generate its reachability graph, eliminating vanishing markings;
* compile the tangible reachability graph into a
  :class:`~repro.core.model.MarkovModel` with a caller-supplied reward
  function over markings, ready for every solver in :mod:`repro.ctmc`.
"""

from repro.spn.net import (
    ImmediateTransition,
    PetriNet,
    Place,
    TimedTransition,
)
from repro.spn.marking import Marking
from repro.spn.reachability import (
    ExplorationStats,
    ReachabilityGraph,
    build_reachability_graph,
)
from repro.spn.analysis import (
    petri_net_to_generator,
    petri_net_to_markov_model,
    solve_petri_net,
)

__all__ = [
    "PetriNet",
    "Place",
    "TimedTransition",
    "ImmediateTransition",
    "Marking",
    "ExplorationStats",
    "ReachabilityGraph",
    "build_reachability_graph",
    "petri_net_to_generator",
    "petri_net_to_markov_model",
    "solve_petri_net",
]
