"""GSPN structure: places, transitions, arcs.

Supported features (the subset needed for availability modeling, matching
the common core of SPNP):

* timed transitions with symbolic rates and single- or infinite-server
  semantics (infinite-server multiplies the rate by the enabling degree);
* immediate transitions with weights and priorities (fired instantly,
  resolved during reachability analysis by vanishing-marking
  elimination);
* input, output and inhibitor arcs with integer multiplicities.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.expressions import Expression, RateLike, compile_expression
from repro.exceptions import PetriNetError
from repro.spn.marking import Marking

SERVER_SEMANTICS = ("single", "infinite")


@dataclass(frozen=True)
class Place:
    """A token holder."""

    name: str
    initial_tokens: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise PetriNetError("place name must be non-empty")
        if self.initial_tokens < 0:
            raise PetriNetError(
                f"place {self.name!r} has negative initial tokens"
            )


@dataclass(frozen=True)
class TimedTransition:
    """An exponentially-timed transition with a symbolic base rate."""

    name: str
    rate: Expression
    server: str = "single"

    def __post_init__(self) -> None:
        if self.server not in SERVER_SEMANTICS:
            raise PetriNetError(
                f"transition {self.name!r} has unknown server semantics "
                f"{self.server!r}; expected one of {SERVER_SEMANTICS}"
            )


@dataclass(frozen=True)
class ImmediateTransition:
    """A zero-delay transition with a weight and a priority.

    When several immediate transitions are enabled in a marking, the
    highest priority wins; ties fire probabilistically by normalized
    weight.
    """

    name: str
    weight: float = 1.0
    priority: int = 1

    def __post_init__(self) -> None:
        if self.weight <= 0.0:
            raise PetriNetError(
                f"immediate transition {self.name!r} needs positive weight"
            )
        if self.priority < 1:
            raise PetriNetError(
                f"immediate transition {self.name!r} needs priority >= 1"
            )


@dataclass
class _Arcs:
    inputs: Dict[str, int] = field(default_factory=dict)
    outputs: Dict[str, int] = field(default_factory=dict)
    inhibitors: Dict[str, int] = field(default_factory=dict)


class PetriNet:
    """A generalized stochastic Petri net under construction."""

    def __init__(self, name: str) -> None:
        if not name:
            raise PetriNetError("net name must be non-empty")
        self.name = name
        self._places: Dict[str, Place] = {}
        self._timed: Dict[str, TimedTransition] = {}
        self._immediate: Dict[str, ImmediateTransition] = {}
        self._arcs: Dict[str, _Arcs] = {}

    # Construction -------------------------------------------------------

    def add_place(self, name: str, initial_tokens: int = 0) -> Place:
        if name in self._places:
            raise PetriNetError(f"duplicate place {name!r}")
        place = Place(name, initial_tokens)
        self._places[name] = place
        return place

    def add_timed_transition(
        self, name: str, rate: RateLike, server: str = "single"
    ) -> TimedTransition:
        self._check_new_transition(name)
        transition = TimedTransition(
            name, compile_expression(rate), server=server
        )
        self._timed[name] = transition
        self._arcs[name] = _Arcs()
        return transition

    def add_immediate_transition(
        self, name: str, weight: float = 1.0, priority: int = 1
    ) -> ImmediateTransition:
        self._check_new_transition(name)
        transition = ImmediateTransition(name, weight, priority)
        self._immediate[name] = transition
        self._arcs[name] = _Arcs()
        return transition

    def _check_new_transition(self, name: str) -> None:
        if not name:
            raise PetriNetError("transition name must be non-empty")
        if name in self._timed or name in self._immediate:
            raise PetriNetError(f"duplicate transition {name!r}")

    def _check_arc(self, transition: str, place: str, multiplicity: int) -> None:
        if transition not in self._arcs:
            raise PetriNetError(f"unknown transition {transition!r}")
        if place not in self._places:
            raise PetriNetError(f"unknown place {place!r}")
        if multiplicity < 1:
            raise PetriNetError(
                f"arc multiplicity must be >= 1, got {multiplicity}"
            )

    def add_input_arc(
        self, place: str, transition: str, multiplicity: int = 1
    ) -> None:
        """Tokens consumed from ``place`` when ``transition`` fires."""
        self._check_arc(transition, place, multiplicity)
        self._arcs[transition].inputs[place] = multiplicity

    def add_output_arc(
        self, transition: str, place: str, multiplicity: int = 1
    ) -> None:
        """Tokens deposited into ``place`` when ``transition`` fires."""
        self._check_arc(transition, place, multiplicity)
        self._arcs[transition].outputs[place] = multiplicity

    def add_inhibitor_arc(
        self, place: str, transition: str, multiplicity: int = 1
    ) -> None:
        """Disable ``transition`` while ``place`` holds >= multiplicity."""
        self._check_arc(transition, place, multiplicity)
        self._arcs[transition].inhibitors[place] = multiplicity

    # Introspection -------------------------------------------------------

    @property
    def places(self) -> Tuple[Place, ...]:
        return tuple(self._places.values())

    @property
    def timed_transitions(self) -> Tuple[TimedTransition, ...]:
        return tuple(self._timed.values())

    @property
    def immediate_transitions(self) -> Tuple[ImmediateTransition, ...]:
        return tuple(self._immediate.values())

    def initial_marking(self) -> Marking:
        return Marking(
            {p.name: p.initial_tokens for p in self._places.values()}
        )

    def required_parameters(self) -> set:
        names = set()
        for transition in self._timed.values():
            names |= set(transition.rate.variables)
        return names

    # Firing semantics ----------------------------------------------------

    def is_enabled(self, transition: str, marking: Marking) -> bool:
        """Token-level enablement (inputs available, inhibitors clear)."""
        arcs = self._arcs[transition]
        for place, need in arcs.inputs.items():
            if marking.tokens(place) < need:
                return False
        for place, cap in arcs.inhibitors.items():
            if marking.tokens(place) >= cap:
                return False
        return True

    def enabling_degree(self, transition: str, marking: Marking) -> int:
        """How many times the transition could fire back-to-back.

        Used for infinite-server timed transitions.  Transitions with no
        input arcs have degree 1 (a source transition fires at base rate).
        """
        arcs = self._arcs[transition]
        if not self.is_enabled(transition, marking):
            return 0
        if not arcs.inputs:
            return 1
        return min(
            marking.tokens(place) // need
            for place, need in arcs.inputs.items()
        )

    def fire(self, transition: str, marking: Marking) -> Marking:
        """The marking after one firing.

        Raises:
            PetriNetError: If the transition is not enabled.
        """
        if not self.is_enabled(transition, marking):
            raise PetriNetError(
                f"transition {transition!r} is not enabled in "
                f"marking {marking.label()!r}"
            )
        arcs = self._arcs[transition]
        deltas: Dict[str, int] = {}
        for place, need in arcs.inputs.items():
            deltas[place] = deltas.get(place, 0) - need
        for place, give in arcs.outputs.items():
            deltas[place] = deltas.get(place, 0) + give
        return marking.updated(deltas)

    def enabled_immediate(self, marking: Marking) -> List[ImmediateTransition]:
        """Enabled immediate transitions at the highest enabled priority."""
        enabled = [
            t
            for t in self._immediate.values()
            if self.is_enabled(t.name, marking)
        ]
        if not enabled:
            return []
        top = max(t.priority for t in enabled)
        return [t for t in enabled if t.priority == top]

    def enabled_timed(self, marking: Marking) -> List[TimedTransition]:
        return [
            t
            for t in self._timed.values()
            if self.is_enabled(t.name, marking)
        ]

    def validate(self) -> None:
        """Structural checks: nonempty, every transition has some arc."""
        if not self._places:
            raise PetriNetError(f"net {self.name!r} has no places")
        if not self._timed and not self._immediate:
            raise PetriNetError(f"net {self.name!r} has no transitions")
        for name, arcs in self._arcs.items():
            if not arcs.inputs and not arcs.outputs:
                raise PetriNetError(
                    f"transition {name!r} has no arcs; it would either "
                    "never change the marking or fire unboundedly"
                )
