"""Compile a reachability graph into a Markov model and solve it."""

from __future__ import annotations

from typing import Callable, Mapping, Optional

from repro.core.model import MarkovModel
from repro.ctmc.rewards import AvailabilityResult, steady_state_availability
from repro.exceptions import PetriNetError
from repro.spn.marking import Marking
from repro.spn.net import PetriNet
from repro.spn.reachability import build_reachability_graph

#: Maps a marking to its reward rate (1.0 = up, 0.0 = down, or any
#: non-negative performability reward).
RewardFunction = Callable[[Marking], float]


def petri_net_to_markov_model(
    net: PetriNet,
    values: Mapping[str, float],
    reward: Optional[RewardFunction] = None,
    max_markings: int = 100_000,
) -> MarkovModel:
    """Build the CTMC over tangible markings.

    Args:
        net: The Petri net.
        values: Parameter values for symbolic rates.
        reward: Reward rate per marking; defaults to "everything is up",
            which is rarely what an availability study wants — supply the
            predicate encoding the paper's system-up definition.
        max_markings: Reachability exploration cap.

    Returns:
        A :class:`~repro.core.model.MarkovModel` whose state names are
        marking labels (``"Down=0,Up=2"``), with the initial marking as
        the first state, ready for any :mod:`repro.ctmc` solver.
    """
    graph = build_reachability_graph(net, values, max_markings=max_markings)
    reward = reward or (lambda marking: 1.0)
    model = MarkovModel(
        f"spn:{net.name}",
        f"CTMC compiled from Petri net {net.name!r} "
        f"({graph.n_markings} tangible markings)",
    )
    # Insert the initial marking first so solvers default to it.
    order = [graph.initial_index] + [
        i for i in range(graph.n_markings) if i != graph.initial_index
    ]
    names = {}
    for i in order:
        marking = graph.markings[i]
        value = float(reward(marking))
        if value < 0.0:
            raise PetriNetError(
                f"reward function returned negative value {value} for "
                f"marking {marking.label()!r}"
            )
        names[i] = marking.label()
        model.add_state(names[i], reward=value)
    for (source, target), rate in sorted(graph.edges.items()):
        model.add_transition(names[source], names[target], rate)
    return model


def solve_petri_net(
    net: PetriNet,
    values: Mapping[str, float],
    reward: Optional[RewardFunction] = None,
    method: str = "direct",
) -> AvailabilityResult:
    """One-call GSPN availability solve (compile + steady state)."""
    model = petri_net_to_markov_model(net, values, reward=reward)
    return steady_state_availability(model, values={}, method=method)
