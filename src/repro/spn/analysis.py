"""Compile a reachability graph into a Markov model and solve it."""

from __future__ import annotations

from typing import Callable, Mapping, Optional

import numpy as np
import scipy.sparse as sp

from repro.core.model import MarkovModel
from repro.ctmc.generator import SPARSE_THRESHOLD, GeneratorMatrix
from repro.ctmc.rewards import AvailabilityResult, steady_state_availability
from repro.exceptions import PetriNetError
from repro.spn.marking import Marking
from repro.spn.net import PetriNet
from repro.spn.reachability import build_reachability_graph

#: Maps a marking to its reward rate (1.0 = up, 0.0 = down, or any
#: non-negative performability reward).
RewardFunction = Callable[[Marking], float]


def petri_net_to_markov_model(
    net: PetriNet,
    values: Mapping[str, float],
    reward: Optional[RewardFunction] = None,
    max_markings: int = 100_000,
) -> MarkovModel:
    """Build the CTMC over tangible markings.

    Args:
        net: The Petri net.
        values: Parameter values for symbolic rates.
        reward: Reward rate per marking; defaults to "everything is up",
            which is rarely what an availability study wants — supply the
            predicate encoding the paper's system-up definition.
        max_markings: Reachability exploration cap.

    Returns:
        A :class:`~repro.core.model.MarkovModel` whose state names are
        marking labels (``"Down=0,Up=2"``), with the initial marking as
        the first state, ready for any :mod:`repro.ctmc` solver.
    """
    graph = build_reachability_graph(net, values, max_markings=max_markings)
    reward = reward or (lambda marking: 1.0)
    model = MarkovModel(
        f"spn:{net.name}",
        f"CTMC compiled from Petri net {net.name!r} "
        f"({graph.n_markings} tangible markings)",
    )
    # Insert the initial marking first so solvers default to it.
    order = [graph.initial_index] + [
        i for i in range(graph.n_markings) if i != graph.initial_index
    ]
    names = {}
    for i in order:
        marking = graph.markings[i]
        value = float(reward(marking))
        if value < 0.0:
            raise PetriNetError(
                f"reward function returned negative value {value} for "
                f"marking {marking.label()!r}"
            )
        names[i] = marking.label()
        model.add_state(names[i], reward=value)
    for (source, target), rate in sorted(graph.edges.items()):
        model.add_transition(names[source], names[target], rate)
    return model


def petri_net_to_generator(
    net: PetriNet,
    values: Mapping[str, float],
    reward: Optional[RewardFunction] = None,
    max_markings: int = 100_000,
    sparse: Optional[bool] = None,
) -> GeneratorMatrix:
    """Build the generator matrix over tangible markings directly.

    Skips the :class:`~repro.core.model.MarkovModel` round-trip (which
    re-parses every numeric rate into an expression and re-validates the
    model) and assembles the generator straight from the reachability
    graph's edge list.  For SPN-derived chains with 10^4–10^5 markings
    this is the only practical route: the model round-trip is quadratic
    in bookkeeping, the direct assembly is linear in edges.

    Args:
        net: The Petri net.
        values: Parameter values for symbolic rates.
        reward: Reward rate per marking; defaults to "everything is up".
        max_markings: Reachability exploration cap.
        sparse: Force sparse (True) or dense (False) assembly; by default
            sparse at or above :data:`~repro.ctmc.generator.SPARSE_THRESHOLD`
            states, matching ``build_generator``.

    Returns:
        A :class:`~repro.ctmc.generator.GeneratorMatrix` with the initial
        marking as state 0 and marking labels as state names, ready for
        any :mod:`repro.ctmc` solver (the structured/sparse steady-state
        methods and uniformization included).
    """
    graph = build_reachability_graph(net, values, max_markings=max_markings)
    reward = reward or (lambda marking: 1.0)
    n = graph.n_markings
    # The explorer interns the initial tangible marking first, so the
    # "initial marking is state 0" convention holds by construction.
    order = [graph.initial_index] + [
        i for i in range(n) if i != graph.initial_index
    ]
    position = {old: new for new, old in enumerate(order)}
    names = []
    rewards = np.empty(n, dtype=float)
    for new, old in enumerate(order):
        marking = graph.markings[old]
        value = float(reward(marking))
        if value < 0.0:
            raise PetriNetError(
                f"reward function returned negative value {value} for "
                f"marking {marking.label()!r}"
            )
        names.append(marking.label())
        rewards[new] = value
    rows = np.empty(len(graph.edges), dtype=np.intp)
    cols = np.empty(len(graph.edges), dtype=np.intp)
    data = np.empty(len(graph.edges), dtype=float)
    for k, ((source, target), rate) in enumerate(graph.edges.items()):
        rows[k] = position[source]
        cols[k] = position[target]
        data[k] = rate
    use_sparse = n >= SPARSE_THRESHOLD if sparse is None else sparse
    if use_sparse:
        off = sp.coo_matrix(
            (data, (rows, cols)), shape=(n, n)
        ).tocsr()
        matrix = off - sp.diags(np.asarray(off.sum(axis=1)).ravel())
        matrix = matrix.tocsr()
    else:
        matrix = np.zeros((n, n), dtype=float)
        np.add.at(matrix, (rows, cols), data)
        matrix[np.arange(n), np.arange(n)] = -matrix.sum(axis=1)
    return GeneratorMatrix(
        matrix=matrix,
        state_names=tuple(names),
        rewards=rewards,
        model_name=f"spn:{net.name}",
    )


def solve_petri_net(
    net: PetriNet,
    values: Mapping[str, float],
    reward: Optional[RewardFunction] = None,
    method: str = "direct",
) -> AvailabilityResult:
    """One-call GSPN availability solve (compile + steady state)."""
    model = petri_net_to_markov_model(net, values, reward=reward)
    return steady_state_availability(model, values={}, method=method)
