"""Markings: immutable token-count vectors over a net's places."""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

from repro.exceptions import PetriNetError


class Marking:
    """An immutable assignment of token counts to places.

    Markings are hashable (used as reachability-graph keys) and render
    compactly: ``"Up=2, Down=0"``.
    """

    __slots__ = ("_counts",)

    def __init__(self, counts: Dict[str, int]) -> None:
        for place, tokens in counts.items():
            if tokens < 0:
                raise PetriNetError(
                    f"negative token count {tokens} in place {place!r}"
                )
        self._counts: Tuple[Tuple[str, int], ...] = tuple(
            sorted(counts.items())
        )

    def tokens(self, place: str) -> int:
        """Token count in a place (0 if the place is absent)."""
        for name, count in self._counts:
            if name == place:
                return count
        return 0

    def __getitem__(self, place: str) -> int:
        return self.tokens(place)

    def as_dict(self) -> Dict[str, int]:
        return dict(self._counts)

    def updated(self, deltas: Dict[str, int]) -> "Marking":
        """New marking with token deltas applied (validated >= 0)."""
        counts = dict(self._counts)
        for place, delta in deltas.items():
            counts[place] = counts.get(place, 0) + delta
            if counts[place] < 0:
                raise PetriNetError(
                    f"firing would drive place {place!r} negative"
                )
        return Marking(counts)

    def label(self) -> str:
        """Canonical state name used in the compiled Markov model."""
        return ",".join(f"{place}={count}" for place, count in self._counts)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Marking) and other._counts == self._counts

    def __hash__(self) -> int:
        return hash(self._counts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Marking({self.label()})"
