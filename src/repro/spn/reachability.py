"""Reachability-graph generation with vanishing-marking elimination.

A marking is *vanishing* if any immediate transition is enabled there —
the net leaves it in zero time — and *tangible* otherwise.  The CTMC is
defined over tangible markings only; rates through vanishing markings
are redistributed along the immediate-transition branching probabilities
(on-the-fly elimination, with cycle detection so nets with immediate
loops fail loudly instead of recursing forever).

The explorer is built for reachability sets with 10^4–10^5 markings:

* markings are explored as plain integer tuples over a frozen place
  ordering (hashable, cheap to intern in one dict lookup) and only
  wrapped back into :class:`~repro.spn.marking.Marking` objects for the
  public graph;
* transitions are compiled once per exploration into index-based
  enablement/firing records, with parameter-only rates evaluated a
  single time up front (marking-dependent rates re-evaluate per
  marking, as they must);
* the frontier is processed in breadth-first batches, and the tangible
  closure of every fired marking is memoized, so a vanishing hub shared
  by many timed firings is eliminated once instead of once per
  predecessor (no quadratic rework);
* an :class:`ExplorationStats` record reports what the exploration did.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro import obs
from repro.exceptions import PetriNetError
from repro.spn.marking import Marking
from repro.spn.net import PetriNet

#: Safety cap on reachability exploration.
DEFAULT_MAX_MARKINGS = 100_000

#: Cap on chained vanishing markings between two tangible ones.
_MAX_VANISHING_DEPTH = 1_000


@dataclass
class ExplorationStats:
    """Counters from one reachability exploration.

    Attributes:
        n_tangible: Tangible markings discovered.
        n_vanishing: Fired markings that required vanishing elimination.
        n_timed_firings: Timed-transition firings evaluated.
        n_immediate_firings: Immediate-transition firings evaluated
            during vanishing elimination (cache misses only).
        closure_cache_hits: Fired markings whose tangible closure was
            answered from the memo instead of re-eliminated.
        frontier_batches: Breadth-first levels processed.
    """

    n_tangible: int = 0
    n_vanishing: int = 0
    n_timed_firings: int = 0
    n_immediate_firings: int = 0
    closure_cache_hits: int = 0
    frontier_batches: int = 0


@dataclass
class ReachabilityGraph:
    """Tangible markings and the rate-labelled edges between them.

    Attributes:
        net_name: Source net.
        markings: Tangible markings in discovery order.
        edges: ``{(source_index, target_index): rate}``.
        initial_index: Index of the tangible marking the net starts in
            (after flushing any initial vanishing markings).
        stats: Exploration counters (None for hand-built graphs).
    """

    net_name: str
    markings: List[Marking] = field(default_factory=list)
    edges: Dict[Tuple[int, int], float] = field(default_factory=dict)
    initial_index: int = 0
    stats: Optional[ExplorationStats] = None
    _index: Optional[Dict[Marking, int]] = field(
        default=None, repr=False, compare=False
    )

    @property
    def n_markings(self) -> int:
        return len(self.markings)

    def index_of(self, marking: Marking) -> int:
        if self._index is None or len(self._index) != len(self.markings):
            self._index = {m: i for i, m in enumerate(self.markings)}
        try:
            return self._index[marking]
        except KeyError:
            raise PetriNetError(
                f"marking {marking.label()!r} is not tangible-reachable"
            ) from None


class _CompiledTransition:
    """Index-based enablement and firing data for one transition."""

    __slots__ = ("name", "inputs", "inhibitors", "deltas")

    def __init__(
        self,
        name: str,
        place_index: Dict[str, int],
        inputs: Mapping[str, int],
        outputs: Mapping[str, int],
        inhibitors: Mapping[str, int],
    ) -> None:
        self.name = name
        self.inputs: Tuple[Tuple[int, int], ...] = tuple(
            (place_index[p], need) for p, need in inputs.items()
        )
        self.inhibitors: Tuple[Tuple[int, int], ...] = tuple(
            (place_index[p], cap) for p, cap in inhibitors.items()
        )
        deltas: Dict[int, int] = {}
        for p, need in inputs.items():
            deltas[place_index[p]] = deltas.get(place_index[p], 0) - need
        for p, give in outputs.items():
            deltas[place_index[p]] = deltas.get(place_index[p], 0) + give
        self.deltas: Tuple[Tuple[int, int], ...] = tuple(
            (i, d) for i, d in deltas.items() if d != 0
        )

    def enabled(self, tokens: Tuple[int, ...]) -> bool:
        for i, need in self.inputs:
            if tokens[i] < need:
                return False
        for i, cap in self.inhibitors:
            if tokens[i] >= cap:
                return False
        return True

    def degree(self, tokens: Tuple[int, ...]) -> int:
        if not self.inputs:
            return 1
        return min(tokens[i] // need for i, need in self.inputs)

    def fire(self, tokens: Tuple[int, ...]) -> Tuple[int, ...]:
        out = list(tokens)
        for i, d in self.deltas:
            out[i] += d
        return tuple(out)


class _CompiledNet:
    """One-exploration compilation of a net over a frozen place order."""

    def __init__(self, net: PetriNet, values: Mapping[str, float]) -> None:
        self.net = net
        self.place_names: Tuple[str, ...] = tuple(
            p.name for p in net.places
        )
        place_index = {name: i for i, name in enumerate(self.place_names)}
        self.initial: Tuple[int, ...] = tuple(
            p.initial_tokens for p in net.places
        )
        place_set = set(self.place_names)
        # Timed transitions: (compiled, rate_expr or None, const_rate,
        # infinite_server).  rate_expr is None when the rate does not
        # reference place names and was evaluated once up front.
        self.timed = []
        for t in net.timed_transitions:
            arcs = net._arcs[t.name]
            compiled = _CompiledTransition(
                t.name, place_index, arcs.inputs, arcs.outputs,
                arcs.inhibitors,
            )
            if t.rate.variables & place_set:
                self.timed.append((compiled, t.rate, 0.0, t.server == "infinite"))
            else:
                rate = t.rate(values)
                if rate < 0.0:
                    raise PetriNetError(
                        f"transition {t.name!r} has negative rate {rate}"
                    )
                if rate == 0.0:
                    continue  # never contributes an edge
                self.timed.append((compiled, None, rate, t.server == "infinite"))
        # Immediate transitions sorted by descending priority so the
        # highest enabled priority class is the first non-empty group.
        self.immediate = []
        for t in sorted(
            net.immediate_transitions, key=lambda t: -t.priority
        ):
            arcs = net._arcs[t.name]
            compiled = _CompiledTransition(
                t.name, place_index, arcs.inputs, arcs.outputs,
                arcs.inhibitors,
            )
            self.immediate.append((compiled, t.weight, t.priority))

    def marking_of(self, tokens: Tuple[int, ...]) -> Marking:
        return Marking(dict(zip(self.place_names, tokens)))

    def enabled_immediate(self, tokens: Tuple[int, ...]):
        """Enabled immediate transitions at the highest enabled priority."""
        winners = []
        top: Optional[int] = None
        for compiled, weight, priority in self.immediate:
            if top is not None and priority < top:
                break  # sorted by priority: lower classes cannot win
            if compiled.enabled(tokens):
                winners.append((compiled, weight))
                top = priority
        return winners


def build_reachability_graph(
    net: PetriNet,
    values: Mapping[str, float],
    max_markings: int = DEFAULT_MAX_MARKINGS,
) -> ReachabilityGraph:
    """Explore the tangible reachability set and its transition rates.

    Args:
        net: The Petri net.
        values: Parameter values for the timed transitions' symbolic
            rates.
        max_markings: Exploration cap; exceeding it raises (nets with
            unbounded places would otherwise loop forever).

    Raises:
        PetriNetError: On unbounded exploration, rate errors, or
            immediate-transition cycles.
    """
    with obs.span("spn.reachability", net=net.name) as span:
        graph = _build_reachability_graph(net, values, max_markings)
        stats = graph.stats
        span.set(
            n_tangible=stats.n_tangible,
            n_vanishing=stats.n_vanishing,
        )
        if obs.enabled():
            obs.event(
                "spn.exploration_stats",
                net=net.name,
                n_tangible=stats.n_tangible,
                n_vanishing=stats.n_vanishing,
                n_timed_firings=stats.n_timed_firings,
                n_immediate_firings=stats.n_immediate_firings,
                closure_cache_hits=stats.closure_cache_hits,
                frontier_batches=stats.frontier_batches,
            )
    return graph


def _build_reachability_graph(
    net: PetriNet,
    values: Mapping[str, float],
    max_markings: int = DEFAULT_MAX_MARKINGS,
) -> ReachabilityGraph:
    net.validate()
    # Rate expressions may reference place names: the token count of the
    # current marking is substituted, enabling marking-dependent rates
    # like the paper's workload-acceleration law ("La * 2 ** Down").
    place_names = {place.name for place in net.places}
    collisions = place_names & set(values)
    if collisions:
        raise PetriNetError(
            f"parameter name(s) {sorted(collisions)} collide with place "
            "names; marking-dependent rates would be ambiguous — rename "
            "one side"
        )
    missing = net.required_parameters() - set(values) - place_names
    if missing:
        raise PetriNetError(
            f"net {net.name!r} is missing parameter(s) {sorted(missing)}"
        )
    compiled = _CompiledNet(net, values)
    stats = ExplorationStats()
    graph = ReachabilityGraph(net_name=net.name, stats=stats)
    index: Dict[Tuple[int, ...], int] = {}
    frontier: List[Tuple[int, ...]] = []
    # Tangible closure of a fired marking, memoized so a vanishing hub
    # reached by many timed firings is eliminated exactly once.
    closure_cache: Dict[
        Tuple[int, ...], Tuple[Tuple[Tuple[int, ...], float], ...]
    ] = {}

    def intern(tokens: Tuple[int, ...]) -> int:
        slot = index.get(tokens)
        if slot is None:
            if len(index) >= max_markings:
                raise PetriNetError(
                    f"reachability exploration exceeded {max_markings} "
                    f"tangible markings for net {net.name!r}; the net may "
                    "be unbounded"
                )
            slot = len(index)
            index[tokens] = slot
            graph.markings.append(compiled.marking_of(tokens))
            frontier.append(tokens)
        return slot

    def tangible_closure(
        tokens: Tuple[int, ...]
    ) -> Tuple[Tuple[Tuple[int, ...], float], ...]:
        cached = closure_cache.get(tokens)
        if cached is not None:
            stats.closure_cache_hits += 1
            return cached
        out: Dict[Tuple[int, ...], float] = {}
        worklist: List[Tuple[Tuple[int, ...], float]] = [(tokens, 1.0)]
        expansions = 0
        while worklist:
            current, mass = worklist.pop()
            if current != tokens:
                nested = closure_cache.get(current)
                if nested is not None:
                    stats.closure_cache_hits += 1
                    for tangible, probability in nested:
                        out[tangible] = (
                            out.get(tangible, 0.0) + mass * probability
                        )
                    continue
            enabled = compiled.enabled_immediate(current)
            if not enabled:
                out[current] = out.get(current, 0.0) + mass
                continue
            expansions += 1
            if expansions > _MAX_VANISHING_DEPTH:
                raise PetriNetError(
                    f"net {net.name!r} expanded over {_MAX_VANISHING_DEPTH} "
                    "vanishing markings between tangible ones (immediate-"
                    "transition loop?)"
                )
            if current == tokens:
                stats.n_vanishing += 1
            total = sum(weight for _, weight in enabled)
            for transition, weight in enabled:
                stats.n_immediate_firings += 1
                worklist.append(
                    (transition.fire(current), mass * weight / total)
                )
        result = tuple(out.items())
        closure_cache[tokens] = result
        return result

    initial_tangibles = tangible_closure(compiled.initial)
    if len(initial_tangibles) != 1:
        raise PetriNetError(
            f"net {net.name!r} branches immediately from its initial "
            "marking; give it a deterministic tangible start"
        )
    graph.initial_index = intern(initial_tangibles[0][0])

    place_tuple = compiled.place_names
    while frontier:
        stats.frontier_batches += 1
        batch, frontier = frontier, []
        for tokens in batch:
            source = index[tokens]
            marking_values = None
            for transition, rate_expr, const_rate, infinite in compiled.timed:
                if not transition.enabled(tokens):
                    continue
                if rate_expr is not None:
                    if marking_values is None:
                        marking_values = dict(values)
                        marking_values.update(zip(place_tuple, tokens))
                    else:
                        marking_values.update(zip(place_tuple, tokens))
                    base_rate = rate_expr(marking_values)
                    if base_rate < 0.0:
                        raise PetriNetError(
                            f"transition {transition.name!r} has negative "
                            f"rate {base_rate}"
                        )
                    if base_rate == 0.0:
                        continue
                else:
                    base_rate = const_rate
                if infinite:
                    base_rate *= transition.degree(tokens)
                stats.n_timed_firings += 1
                fired = transition.fire(tokens)
                for tangible, probability in tangible_closure(fired):
                    target = intern(tangible)
                    if target == source:
                        continue  # rate back to self cancels in the generator
                    key = (source, target)
                    graph.edges[key] = (
                        graph.edges.get(key, 0.0) + base_rate * probability
                    )
    stats.n_tangible = len(graph.markings)
    return graph
