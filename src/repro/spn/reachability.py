"""Reachability-graph generation with vanishing-marking elimination.

A marking is *vanishing* if any immediate transition is enabled there —
the net leaves it in zero time — and *tangible* otherwise.  The CTMC is
defined over tangible markings only; rates through vanishing markings
are redistributed along the immediate-transition branching probabilities
(on-the-fly elimination, with cycle detection so nets with immediate
loops fail loudly instead of recursing forever).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Set, Tuple

from repro.exceptions import PetriNetError
from repro.spn.marking import Marking
from repro.spn.net import PetriNet

#: Safety cap on reachability exploration.
DEFAULT_MAX_MARKINGS = 100_000

#: Cap on chained vanishing markings between two tangible ones.
_MAX_VANISHING_DEPTH = 1_000


@dataclass
class ReachabilityGraph:
    """Tangible markings and the rate-labelled edges between them.

    Attributes:
        net_name: Source net.
        markings: Tangible markings in discovery order.
        edges: ``{(source_index, target_index): rate}``.
        initial_index: Index of the tangible marking the net starts in
            (after flushing any initial vanishing markings).
    """

    net_name: str
    markings: List[Marking] = field(default_factory=list)
    edges: Dict[Tuple[int, int], float] = field(default_factory=dict)
    initial_index: int = 0

    @property
    def n_markings(self) -> int:
        return len(self.markings)

    def index_of(self, marking: Marking) -> int:
        try:
            return self.markings.index(marking)
        except ValueError:
            raise PetriNetError(
                f"marking {marking.label()!r} is not tangible-reachable"
            ) from None


def _immediate_branching(
    net: PetriNet, marking: Marking
) -> List[Tuple[Marking, float]]:
    """Successor markings and probabilities after one immediate firing."""
    enabled = net.enabled_immediate(marking)
    total = sum(t.weight for t in enabled)
    return [
        (net.fire(t.name, marking), t.weight / total) for t in enabled
    ]


def _flush_vanishing(
    net: PetriNet, marking: Marking, probability: float
) -> List[Tuple[Marking, float]]:
    """Follow immediate firings until tangible markings are reached.

    Iterative worklist so deep vanishing chains cannot blow the Python
    stack; an explicit expansion counter turns immediate-transition
    loops into a clear error instead of an endless walk.
    """
    out: List[Tuple[Marking, float]] = []
    worklist: List[Tuple[Marking, float]] = [(marking, probability)]
    expansions = 0
    while worklist:
        current, mass = worklist.pop()
        if not net.enabled_immediate(current):
            out.append((current, mass))
            continue
        expansions += 1
        if expansions > _MAX_VANISHING_DEPTH:
            raise PetriNetError(
                f"net {net.name!r} expanded over {_MAX_VANISHING_DEPTH} "
                "vanishing markings between tangible ones (immediate-"
                "transition loop?)"
            )
        for successor, branch_probability in _immediate_branching(net, current):
            worklist.append((successor, mass * branch_probability))
    return out


def build_reachability_graph(
    net: PetriNet,
    values: Mapping[str, float],
    max_markings: int = DEFAULT_MAX_MARKINGS,
) -> ReachabilityGraph:
    """Explore the tangible reachability set and its transition rates.

    Args:
        net: The Petri net.
        values: Parameter values for the timed transitions' symbolic
            rates.
        max_markings: Exploration cap; exceeding it raises (nets with
            unbounded places would otherwise loop forever).

    Raises:
        PetriNetError: On unbounded exploration, rate errors, or
            immediate-transition cycles.
    """
    net.validate()
    # Rate expressions may reference place names: the token count of the
    # current marking is substituted, enabling marking-dependent rates
    # like the paper's workload-acceleration law ("La * 2 ** Down").
    place_names = {place.name for place in net.places}
    collisions = place_names & set(values)
    if collisions:
        raise PetriNetError(
            f"parameter name(s) {sorted(collisions)} collide with place "
            "names; marking-dependent rates would be ambiguous — rename "
            "one side"
        )
    missing = net.required_parameters() - set(values) - place_names
    if missing:
        raise PetriNetError(
            f"net {net.name!r} is missing parameter(s) {sorted(missing)}"
        )
    graph = ReachabilityGraph(net_name=net.name)
    index: Dict[Marking, int] = {}

    def intern(marking: Marking) -> int:
        if marking not in index:
            if len(index) >= max_markings:
                raise PetriNetError(
                    f"reachability exploration exceeded {max_markings} "
                    f"tangible markings for net {net.name!r}; the net may "
                    "be unbounded"
                )
            index[marking] = len(graph.markings)
            graph.markings.append(marking)
            frontier.append(marking)
        return index[marking]

    frontier: List[Marking] = []
    initial_tangibles = _flush_vanishing(net, net.initial_marking(), 1.0)
    if len(initial_tangibles) != 1:
        raise PetriNetError(
            f"net {net.name!r} branches immediately from its initial "
            "marking; give it a deterministic tangible start"
        )
    graph.initial_index = intern(initial_tangibles[0][0])

    while frontier:
        marking = frontier.pop()
        source = index[marking]
        marking_values = None
        for transition in net.enabled_timed(marking):
            if transition.rate.variables & place_names:
                if marking_values is None:
                    marking_values = dict(values)
                    marking_values.update(marking.as_dict())
                base_rate = transition.rate(marking_values)
            else:
                base_rate = transition.rate(values)
            if base_rate < 0.0:
                raise PetriNetError(
                    f"transition {transition.name!r} has negative rate "
                    f"{base_rate}"
                )
            if base_rate == 0.0:
                continue
            if transition.server == "infinite":
                base_rate *= net.enabling_degree(transition.name, marking)
            fired = net.fire(transition.name, marking)
            for tangible, probability in _flush_vanishing(net, fired, 1.0):
                target = intern(tangible)
                if target == source:
                    continue  # rate back to self cancels in the generator
                key = (source, target)
                graph.edges[key] = (
                    graph.edges.get(key, 0.0) + base_rate * probability
                )
    return graph
