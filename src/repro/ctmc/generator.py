"""Assembly of the infinitesimal generator matrix Q.

Q is the |S| x |S| matrix with ``Q[i, j]`` (i != j) the transition rate
from state i to state j and ``Q[i, i] = -sum_j Q[i, j]`` so that rows sum
to zero.  The steady-state distribution pi solves ``pi Q = 0`` with
``sum(pi) = 1``.

The :class:`GeneratorMatrix` wrapper keeps the state ordering, the reward
vector and the source model name together with the numeric matrix, so
downstream code never has to guess which row is which state.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro.core.model import MarkovModel
from repro.exceptions import ModelError

#: Above this state count we assemble a sparse matrix by default.
SPARSE_THRESHOLD = 200


@dataclass
class GeneratorMatrix:
    """A generator matrix bound to its state ordering and rewards.

    Attributes:
        matrix: Dense ``numpy.ndarray`` or ``scipy.sparse.csr_matrix`` of
            shape (n, n) with zero row sums.
        state_names: State names in row/column order.
        rewards: Reward rate per state, same order.
        model_name: Name of the model the matrix came from.
    """

    matrix: object
    state_names: Tuple[str, ...]
    rewards: np.ndarray
    model_name: str = ""
    _index: Dict[str, int] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if not self._index:
            self._index = {name: i for i, name in enumerate(self.state_names)}
        self.rewards = np.asarray(self.rewards, dtype=float)
        n = len(self.state_names)
        if self.matrix.shape != (n, n):
            raise ModelError(
                f"generator shape {self.matrix.shape} does not match "
                f"{n} states"
            )
        if self.rewards.shape != (n,):
            raise ModelError("reward vector length does not match state count")

    @property
    def n_states(self) -> int:
        return len(self.state_names)

    @property
    def is_sparse(self) -> bool:
        return sp.issparse(self.matrix)

    def index_of(self, name: str) -> int:
        """Row index of a state name."""
        try:
            return self._index[name]
        except KeyError:
            raise ModelError(f"unknown state {name!r}") from None

    def dense(self) -> np.ndarray:
        """The generator as a dense array (copy if already dense)."""
        if self.is_sparse:
            return np.asarray(self.matrix.todense())
        return np.array(self.matrix, dtype=float, copy=True)

    def up_mask(self) -> np.ndarray:
        """Boolean vector marking reward-positive (up) states."""
        return self.rewards > 0.0

    def rate(self, source: str, target: str) -> float:
        """The numeric rate of one arc (0.0 if absent)."""
        i, j = self.index_of(source), self.index_of(target)
        if i == j:
            raise ModelError("diagonal entries are not transition rates")
        if self.is_sparse:
            return float(self.matrix[i, j])
        return float(self.matrix[i][j])

    def exit_rates(self) -> np.ndarray:
        """Total outgoing rate per state (the negated diagonal)."""
        if self.is_sparse:
            diag = self.matrix.diagonal()
        else:
            diag = np.diag(self.matrix)
        return -np.asarray(diag, dtype=float)

    def restricted(self, names: Sequence[str]) -> "GeneratorMatrix":
        """Submatrix over a subset of states (rows/cols sliced, not re-balanced).

        Note the result's rows generally do *not* sum to zero — the mass
        flowing to removed states is simply dropped.  This is exactly what
        absorption analysis needs (the transient-part matrix).
        """
        idx = [self.index_of(name) for name in names]
        if self.is_sparse:
            sub = self.matrix[idx, :][:, idx]
        else:
            sub = self.dense()[np.ix_(idx, idx)]
        return GeneratorMatrix(
            matrix=sub,
            state_names=tuple(names),
            rewards=self.rewards[idx],
            model_name=f"{self.model_name}[restricted]",
        )


def build_generator(
    model: MarkovModel,
    values: Mapping[str, float],
    sparse: Optional[bool] = None,
    drop_zero_rates: bool = True,
) -> GeneratorMatrix:
    """Evaluate all symbolic rates and assemble the generator matrix.

    Args:
        model: The Markov reward model.
        values: Parameter values for the symbolic rates (a plain dict or a
            :class:`~repro.core.parameters.ParameterSet`).
        sparse: Force sparse/dense assembly; by default dense below
            :data:`SPARSE_THRESHOLD` states and sparse above.
        drop_zero_rates: If True (default), transitions whose rate
            evaluates to exactly 0.0 are silently omitted — this is what
            lets one model template cover parameterizations where an arc
            vanishes (e.g. FIR = 0).  Negative or non-finite rates are
            always an error.

    Returns:
        A :class:`GeneratorMatrix`.
    """
    model.validate()
    missing = model.required_parameters() - set(values)
    if missing:
        raise ModelError(
            f"model {model.name!r} is missing parameter(s) {sorted(missing)}"
        )
    names = model.state_names
    n = len(names)
    index = {name: i for i, name in enumerate(names)}
    if sparse is None:
        sparse = n >= SPARSE_THRESHOLD

    rows, cols, rates = [], [], []
    for transition in model.transitions:
        rate = transition.rate_value(values)
        if not math.isfinite(rate) or rate < 0.0:
            raise ModelError(
                f"transition {transition.source!r} -> {transition.target!r} "
                f"evaluates to invalid rate {rate!r} "
                f"(expression {transition.rate.source!r})"
            )
        if rate == 0.0:
            if drop_zero_rates:
                continue
            raise ModelError(
                f"transition {transition.source!r} -> {transition.target!r} "
                f"has zero rate and drop_zero_rates=False"
            )
        rows.append(index[transition.source])
        cols.append(index[transition.target])
        rates.append(rate)

    if sparse:
        off = sp.coo_matrix((rates, (rows, cols)), shape=(n, n)).tocsr()
        diagonal = -np.asarray(off.sum(axis=1)).ravel()
        matrix = off + sp.diags(diagonal)
        matrix = matrix.tocsr()
    else:
        matrix = np.zeros((n, n), dtype=float)
        for i, j, r in zip(rows, cols, rates):
            matrix[i, j] += r
        np.fill_diagonal(matrix, 0.0)
        np.fill_diagonal(matrix, -matrix.sum(axis=1))

    return GeneratorMatrix(
        matrix=matrix,
        state_names=names,
        rewards=np.asarray(model.reward_vector(), dtype=float),
        model_name=model.name,
    )
