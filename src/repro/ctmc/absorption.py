"""Absorption analysis: mean time to failure and hitting probabilities.

Availability models in this library are irreducible, but two absorption
questions still arise constantly:

* **MTTF-style questions** — "starting from all-up, how long until the
  system first enters a down state?"  Answered by making the down states
  absorbing and computing the mean time to absorption.
* **Hitting probabilities** — "from a degraded state, is the next terminal
  event a repair or a second failure?"

Both reduce to linear systems over the transient (non-target) block of
the generator.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence, Union

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.core.model import MarkovModel
from repro.ctmc.generator import GeneratorMatrix, build_generator
from repro.ctmc.structure import reachable_from
from repro.exceptions import SolverError, StructureError


def _as_generator(model_or_generator, values):
    if isinstance(model_or_generator, GeneratorMatrix):
        return model_or_generator
    if values is None:
        raise SolverError("parameter values are required when passing a MarkovModel")
    return build_generator(model_or_generator, values)


def mean_time_to_absorption(
    model_or_generator: Union[MarkovModel, GeneratorMatrix],
    target_states: Sequence[str],
    values: Optional[Mapping[str, float]] = None,
) -> Dict[str, float]:
    """Expected time to first reach any target state, from every other state.

    The target states are treated as absorbing; the function solves
    ``Q_TT m = -1`` over the transient block T (all non-target states).

    Returns:
        ``{state_name: mean_hitting_time}`` for every non-target state.

    Raises:
        StructureError: If some non-target state cannot reach any target
            (its hitting time would be infinite).
    """
    generator = _as_generator(model_or_generator, values)
    targets = set(target_states)
    unknown = targets - set(generator.state_names)
    if unknown:
        raise SolverError(f"unknown target state(s) {sorted(unknown)}")
    if not targets:
        raise SolverError("at least one target state is required")
    transient = [n for n in generator.state_names if n not in targets]
    if not transient:
        return {}
    _require_targets_reachable(generator, transient, targets)

    block = generator.restricted(transient)
    n = block.n_states
    rhs = -np.ones(n)
    if block.is_sparse:
        try:
            m = spla.spsolve(block.matrix.tocsr(), rhs)
        except Exception as exc:  # pragma: no cover
            raise SolverError(f"sparse MTTA solve failed: {exc}") from exc
    else:
        try:
            m = np.linalg.solve(block.dense(), rhs)
        except np.linalg.LinAlgError as exc:
            raise SolverError(
                f"MTTA system is singular for model "
                f"{generator.model_name!r}: {exc}"
            ) from exc
    m = np.asarray(m, dtype=float)
    if not np.all(np.isfinite(m)) or m.min() < 0.0:
        raise SolverError(
            f"MTTA solve produced invalid times for model "
            f"{generator.model_name!r}"
        )
    return dict(zip(transient, m.tolist()))


def mean_time_to_failure(
    model_or_generator: Union[MarkovModel, GeneratorMatrix],
    values: Optional[Mapping[str, float]] = None,
    from_state: Optional[str] = None,
) -> float:
    """Mean time until the chain first enters a down (reward-0) state.

    Args:
        from_state: Starting state; defaults to the first state (the
            conventional all-up state).
    """
    generator = _as_generator(model_or_generator, values)
    down = [
        name
        for name, reward in zip(generator.state_names, generator.rewards)
        if reward == 0.0
    ]
    if not down:
        raise StructureError(
            f"model {generator.model_name!r} has no down states; "
            "MTTF is infinite"
        )
    start = from_state or generator.state_names[0]
    if start in down:
        raise SolverError(f"starting state {start!r} is itself a down state")
    times = mean_time_to_absorption(generator, down)
    return times[start]


def absorption_probabilities(
    model_or_generator: Union[MarkovModel, GeneratorMatrix],
    target_states: Sequence[str],
    values: Optional[Mapping[str, float]] = None,
) -> Dict[str, Dict[str, float]]:
    """Probability of hitting each target first, from every other state.

    All target states are made absorbing simultaneously; the function
    returns, for each non-target state s, the distribution over which
    target is reached first: ``result[s][target] = P(hit target first | start s)``.
    """
    generator = _as_generator(model_or_generator, values)
    targets = list(dict.fromkeys(target_states))
    unknown = set(targets) - set(generator.state_names)
    if unknown:
        raise SolverError(f"unknown target state(s) {sorted(unknown)}")
    transient = [n for n in generator.state_names if n not in set(targets)]
    if not transient:
        return {}
    _require_targets_reachable(generator, transient, set(targets))

    block = generator.restricted(transient)
    # R[i, k] = rate from transient state i into target k.
    r = np.zeros((len(transient), len(targets)))
    for i, source in enumerate(transient):
        for k, target in enumerate(targets):
            r[i, k] = generator.rate(source, target)
    if block.is_sparse:
        a = block.matrix.tocsc()
        try:
            x = spla.spsolve(a, -r)
        except Exception as exc:  # pragma: no cover
            raise SolverError(f"sparse absorption solve failed: {exc}") from exc
        x = np.asarray(x, dtype=float).reshape(len(transient), len(targets))
    else:
        try:
            x = np.linalg.solve(block.dense(), -r)
        except np.linalg.LinAlgError as exc:
            raise SolverError(f"absorption system is singular: {exc}") from exc
    out: Dict[str, Dict[str, float]] = {}
    for i, source in enumerate(transient):
        row = np.clip(x[i], 0.0, None)
        total = row.sum()
        if not np.isfinite(total) or abs(total - 1.0) > 1e-6:
            raise SolverError(
                f"absorption probabilities from {source!r} sum to {total!r}"
            )
        out[source] = dict(zip(targets, (row / total).tolist()))
    return out


def _require_targets_reachable(
    generator: GeneratorMatrix, transient: Sequence[str], targets: set
) -> None:
    for name in transient:
        reachable = set(reachable_from(generator, [name]))
        if not (reachable & targets):
            raise StructureError(
                f"state {name!r} cannot reach any target state "
                f"{sorted(targets)}; hitting time is infinite"
            )
