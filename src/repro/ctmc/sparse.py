"""Structure-exploiting steady-state solvers for large chains.

The dense solvers in :mod:`repro.ctmc.steady_state` are O(n^3) time and
O(n^2) memory per sample — fine for the paper's 5-6 state models,
hopeless for the generalized N-instance AS model (3N - 1 states) or for
SPN reachability graphs with 10^4-10^5 tangible markings.  This module
provides the two structure-exploiting paths the batch engine routes such
models through:

* **Banded GTH** — the generalized AS model (and every birth-death-like
  availability chain) has a *banded* generator: all transitions connect
  states within a few indices of each other, except the global repair
  arc back into the all-up state (``N_Down -> All_Work``), which lands
  in column 0.  GTH elimination preserves that shape: eliminating state
  ``k`` adds fill only at ``(i, j)`` with ``i in [k-u, k)`` and
  ``j in [k-l, k)`` — offsets that stay inside the ``(l, u)`` band — and
  at ``(i, 0)``, which stays in column 0.  So the whole subtraction-free
  elimination runs on a band of width ``l + u + 1`` plus one spike
  column: O(n b^2) per sample instead of O(n^3), vectorized over all
  samples of a batch at once.

* **Sparse LU with symbolic-pattern reuse** — the augmented system
  ``A x = e_n`` (``A = Q^T`` with the last row replaced by ones) has a
  sparsity pattern that depends only on the model's transition topology,
  not on the sampled rates.  :class:`CsrPattern` computes the CSR
  symbolic structure (indices, indptr, and a scatter map from transition
  rates to data slots) exactly once per compiled model; each sample then
  only fills the data array and factorizes with ``splu``.  ILU-
  preconditioned GMRES and matrix-free power iteration serve as
  fallbacks for samples where the direct factorization misbehaves.

Both paths are exercised against the dense reference solvers by the
property tests in ``tests/ctmc/test_sparse.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro import obs
from repro.exceptions import SolverError

#: Widest (lower + upper + 1) band the banded eliminator accepts; beyond
#: this the O(n b^2) cost loses to the general sparse path anyway.
MAX_BANDWIDTH = 16

#: Scalar-path cutover: below this many states a single dense LU solve
#: beats one banded GTH elimination pass (plan setup and the per-state
#: elimination loop cannot amortize over a lone sample), so scalar
#: ``method="auto"`` stays dense under it.
BANDED_MIN_STATES = 48

#: Batch-path cutover: vectorizing the elimination across the whole
#: sample block amortizes the per-state overhead, so the banded engine
#: overtakes the dense stacked LU at a much smaller size (measured
#: crossover ~12 states on both the compiled and numpy backends; the
#: dense stack is O(n^2) per sample and falls behind fast).  Held at 32
#: rather than the raw crossover because every Table 3 paper model
#: (largest AS submodel: 29 states at ``n_instances=10``) is pinned
#: bit-identical between the compiled/batch and scalar engines, and the
#: banded elimination is algebraically distinct from the dense LU; the
#: generalized sweeps the cutover targets start at 47 states (N=16).
BANDED_BATCH_MIN_STATES = 32


@dataclass(frozen=True)
class BandedStructure:
    """Symbolic banded-plus-spike shape of a model's generator.

    Attributes:
        n: Number of states.
        lower: Lower bandwidth ``l`` (max of ``source - target`` over
            non-spike transitions).
        upper: Upper bandwidth ``u`` (max of ``target - source``).
        band_slots: Per-transition flat index into the ``(n, l+u+1)``
            band storage, or -1 for spike (column-0) transitions.
        spike_rows: Per-transition source row for spike transitions, or
            -1 for banded ones.
    """

    n: int
    lower: int
    upper: int
    band_slots: np.ndarray = field(repr=False)
    spike_rows: np.ndarray = field(repr=False)

    @property
    def width(self) -> int:
        return self.lower + self.upper + 1


def detect_banded_structure(
    n: int,
    sources: np.ndarray,
    targets: np.ndarray,
    max_bandwidth: int = MAX_BANDWIDTH,
) -> Optional[BandedStructure]:
    """Detect a banded-plus-spike generator shape, or return ``None``.

    Transitions entering state 0 (the conventional all-up state) are
    exempt from the band check — they form the spike column that GTH
    elimination keeps isolated.  Everything else must fit in a band of
    total width ``<= max_bandwidth``.
    """
    if n < 3 or sources.size == 0:
        return None
    sources = np.asarray(sources, dtype=np.intp)
    targets = np.asarray(targets, dtype=np.intp)
    spike = targets == 0
    banded = ~spike
    if not banded.any():
        return None
    offsets = sources[banded] - targets[banded]
    lower = int(max(offsets.max(), 1))
    upper = int(max(-offsets.min(), 1))
    width = lower + upper + 1
    if width > max_bandwidth:
        return None
    band_slots = np.full(sources.shape, -1, dtype=np.intp)
    band_slots[banded] = (
        targets[banded] * width + upper + sources[banded] - targets[banded]
    )
    spike_rows = np.where(spike, sources, -1).astype(np.intp)
    return BandedStructure(
        n=n,
        lower=lower,
        upper=upper,
        band_slots=band_slots,
        spike_rows=spike_rows,
    )


def gth_banded_batch(
    structure: BandedStructure, rates: np.ndarray
) -> np.ndarray:
    """Batched GTH elimination on a banded-plus-spike generator.

    Args:
        structure: Output of :func:`detect_banded_structure` for the
            model whose transitions produced ``rates``.
        rates: ``(n_samples, n_transitions)`` non-negative rate matrix.

    Returns:
        ``(n_samples, n)`` stationary vectors (non-negative by
        construction; normalized).

    Raises:
        SolverError: When elimination hits a state with no flow back
            into the remaining block (the chain is reducible for some
            sample).
    """
    rates = np.asarray(rates, dtype=float)
    if rates.ndim == 1:
        rates = rates[None, :]
    k_samples = rates.shape[0]
    n, w, u, l = (
        structure.n,
        structure.width,
        structure.upper,
        structure.lower,
    )
    # Band storage: entry a[i, j] lives at flat slot j*w + u + (i - j);
    # column j's above-diagonal entries are then contiguous.  The spike
    # column S holds every a[i, 0].
    band = np.zeros((k_samples, n * w))
    spike = np.zeros((k_samples, n))
    in_band = structure.band_slots >= 0
    if in_band.any():
        np.add.at(
            band,
            (slice(None), structure.band_slots[in_band]),
            rates[:, in_band],
        )
    if (~in_band).any():
        np.add.at(
            spike,
            (slice(None), structure.spike_rows[~in_band]),
            rates[:, ~in_band],
        )
    band3 = band.reshape(k_samples, n, w)

    for k in range(n - 1, 0, -1):
        lo_row = max(1, k - l)  # banded columns of row k (j < k)
        lo_col = max(0, k - u)  # rows of column k above the diagonal
        # Row k entries a[k, j] at flat slots j*w + u + k - j.
        j_arr = np.arange(lo_row, k)
        row = band[:, u + k + (w - 1) * j_arr] if j_arr.size else None
        total = spike[:, k].copy()
        if row is not None:
            total += row.sum(axis=1)
        if (total <= 0.0).any():
            raise SolverError(
                "GTH elimination failed: no transition from eliminated "
                "state back into the remaining block (reducible chain?)"
            )
        col = band3[:, k, u - (k - lo_col): u]  # view: a[lo_col:k, k]
        col /= total[:, None]
        if row is not None and col.size:
            # a[i, j] += a[i, k] * a[k, j]; the (i, j) pairs are unique,
            # so fancy-indexed += is safe.
            i_arr = np.arange(lo_col, k)
            tgt = (u + i_arr)[:, None] + ((w - 1) * j_arr)[None, :]
            band[:, tgt] += col[:, :, None] * row[:, None, :]
        # Spike column: a[i, 0] += a[i, k] * a[k, 0].
        if col.size:
            spike[:, lo_col:k] += col * spike[:, k][:, None]

    pis = np.zeros((k_samples, n))
    pis[:, 0] = 1.0
    for k in range(1, n):
        lo_col = max(0, k - u)
        col = band3[:, k, u - (k - lo_col): u]
        if col.size:
            pis[:, k] = (pis[:, lo_col:k] * col).sum(axis=1)
    sums = pis.sum(axis=1)
    if not np.isfinite(sums).all() or (sums <= 0.0).any():
        raise SolverError(
            "banded GTH elimination produced a non-normalizable vector"
        )
    pis /= sums[:, None]
    return pis


# Symbolic CSR patterns ------------------------------------------------------


class CsrPattern:
    """A CSR sparsity pattern with a per-sample rate scatter map.

    The pattern is built once from symbolic ``(row, col)`` coordinate
    lists; :meth:`assemble` then produces a CSR matrix for one sample by
    scattering its transition rates into the fixed data layout —
    entries at ``plus`` coordinates accumulate ``+rate``, entries at
    ``minus`` coordinates accumulate ``-rate`` (the diagonal's exit
    rates), and ``const`` coordinates hold fixed values (the
    normalization row of ones).
    """

    def __init__(
        self,
        shape: Tuple[int, int],
        plus: Tuple[np.ndarray, np.ndarray, np.ndarray],
        minus: Tuple[np.ndarray, np.ndarray, np.ndarray],
        const: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None,
    ) -> None:
        n_rows, n_cols = shape
        self.shape = shape
        rows = [np.asarray(plus[0], np.intp), np.asarray(minus[0], np.intp)]
        cols = [np.asarray(plus[1], np.intp), np.asarray(minus[1], np.intp)]
        if const is not None:
            rows.append(np.asarray(const[0], np.intp))
            cols.append(np.asarray(const[1], np.intp))
        all_rows = np.concatenate(rows)
        all_cols = np.concatenate(cols)
        keys = all_rows * n_cols + all_cols
        unique, inverse = np.unique(keys, return_inverse=True)
        inverse = np.asarray(inverse).reshape(-1)
        self.nnz = unique.size
        self.indices = (unique % n_cols).astype(np.int32)
        self.indptr = np.searchsorted(
            unique // n_cols, np.arange(n_rows + 1), side="left"
        ).astype(np.int32)
        np_, nm_ = plus[0].size, minus[0].size
        self._plus_slots = inverse[:np_]
        self._plus_take = np.asarray(plus[2], np.intp)
        self._minus_slots = inverse[np_: np_ + nm_]
        self._minus_take = np.asarray(minus[2], np.intp)
        if const is not None:
            self._const_slots = inverse[np_ + nm_:]
            self._const_vals = np.asarray(const[2], dtype=float)
        else:
            self._const_slots = np.empty(0, np.intp)
            self._const_vals = np.empty(0, float)

    def assemble(self, rates_row: np.ndarray) -> sp.csr_matrix:
        """CSR matrix for one sample's transition rates."""
        data = np.zeros(self.nnz)
        if self._const_slots.size:
            data[self._const_slots] = self._const_vals
        if self._plus_slots.size:
            np.add.at(data, self._plus_slots, rates_row[self._plus_take])
        if self._minus_slots.size:
            np.add.at(data, self._minus_slots, -rates_row[self._minus_take])
        return sp.csr_matrix(
            (data, self.indices, self.indptr), shape=self.shape
        )


class SparseSteadyStateSolver:
    """Steady-state solves through one reusable symbolic CSR pattern.

    Solves ``pi Q = 0, sum(pi) = 1`` as the augmented system
    ``A pi = e_{n-1}`` with ``A = Q^T`` and the last row replaced by
    ones.  The pattern (and the transition-to-slot scatter maps) are
    computed once; each sample costs one data fill plus one ``splu``
    factorization.  :meth:`solve` falls back to ILU-preconditioned GMRES
    and then matrix-free power iteration when the direct factorization
    fails or returns an invalid vector.
    """

    def __init__(
        self, n: int, sources: np.ndarray, targets: np.ndarray
    ) -> None:
        self.n = n
        sources = np.asarray(sources, dtype=np.intp)
        targets = np.asarray(targets, dtype=np.intp)
        keep = targets != n - 1  # the ones row replaces row n-1 of Q^T
        diag = sources != n - 1
        self._pattern = CsrPattern(
            shape=(n, n),
            plus=(targets[keep], sources[keep], np.flatnonzero(keep)),
            minus=(sources[diag], sources[diag], np.flatnonzero(diag)),
            const=(
                np.full(n, n - 1, dtype=np.intp),
                np.arange(n, dtype=np.intp),
                np.ones(n),
            ),
        )
        # Plain Q (for the matrix-free power fallback), built lazily.
        self._q_pattern: Optional[CsrPattern] = None
        self._sources = sources
        self._targets = targets
        self._rhs = np.zeros(n)
        self._rhs[n - 1] = 1.0

    def _generator_pattern(self) -> CsrPattern:
        if self._q_pattern is None:
            n, src, tgt = self.n, self._sources, self._targets
            all_t = np.arange(src.size, dtype=np.intp)
            self._q_pattern = CsrPattern(
                shape=(n, n),
                plus=(src, tgt, all_t),
                minus=(src, src, all_t),
            )
        return self._q_pattern

    def solve(self, rates_row: np.ndarray, tol: float = 1e-10) -> np.ndarray:
        """Stationary vector for one sample (splu -> GMRES -> power)."""
        a = self._pattern.assemble(rates_row)
        stage = "splu"
        pi = self._try_splu(a)
        if pi is None:
            stage = "gmres"
            obs.counter(
                "ctmc_sparse_fallbacks_total", escalated_to="gmres"
            ).inc()
            pi = self._try_gmres(a, tol)
        if pi is None:
            stage = "power"
            obs.counter(
                "ctmc_sparse_fallbacks_total", escalated_to="power"
            ).inc()
            pi = self._try_power(rates_row, tol)
        if pi is None:
            obs.event("ctmc.sparse_ladder_exhausted", n_states=self.n)
            raise SolverError(
                "sparse steady-state solve failed: splu, preconditioned "
                "GMRES and power iteration all diverged"
            )
        obs.counter("ctmc_sparse_solves_total", stage=stage).inc()
        return pi

    def solve_gmres(
        self, rates_row: np.ndarray, tol: float = 1e-10
    ) -> np.ndarray:
        """Stationary vector via ILU-preconditioned GMRES only."""
        a = self._pattern.assemble(rates_row)
        pi = self._try_gmres(a, tol)
        if pi is None:
            raise SolverError(
                "GMRES steady-state solve did not converge to a "
                "probability vector"
            )
        return pi

    def _valid(self, pi: np.ndarray) -> Optional[np.ndarray]:
        pi = np.asarray(pi, dtype=float).ravel()
        if (
            pi.shape == (self.n,)
            and np.isfinite(pi).all()
            and pi.min() >= -1e-8
            and abs(pi.sum() - 1.0) <= 1e-6
        ):
            return pi
        return None

    def _try_splu(self, a: sp.csr_matrix) -> Optional[np.ndarray]:
        try:
            lu = spla.splu(a.tocsc())
            return self._valid(lu.solve(self._rhs))
        except (RuntimeError, ValueError):
            return None

    def _try_gmres(
        self, a: sp.csr_matrix, tol: float
    ) -> Optional[np.ndarray]:
        iterations = [0] if obs.enabled() else None

        def _count(_residual) -> None:
            iterations[0] += 1

        try:
            ilu = spla.spilu(a.tocsc(), drop_tol=1e-12, fill_factor=30.0)
            preconditioner = spla.LinearOperator(a.shape, ilu.solve)
            x, info = spla.gmres(
                a,
                self._rhs,
                M=preconditioner,
                rtol=tol,
                atol=0.0,
                maxiter=200,
                callback=_count if iterations is not None else None,
                callback_type="pr_norm",
            )
        except (RuntimeError, ValueError):
            return None
        if iterations is not None:
            obs.histogram(
                "ctmc_gmres_iterations",
                buckets=(1, 2, 5, 10, 20, 50, 100, 200),
            ).observe(iterations[0])
        if info != 0:
            return None
        return self._valid(x)

    def _try_power(
        self, rates_row: np.ndarray, tol: float, max_iterations: int = 200_000
    ) -> Optional[np.ndarray]:
        q = self._generator_pattern().assemble(rates_row)
        exit_rates = -q.diagonal()
        lam = float(exit_rates.max()) * 1.05
        if lam <= 0.0:
            return None
        n = self.n
        p = sp.identity(n, format="csr") + q / lam
        pi = np.full(n, 1.0 / n)
        for _ in range(max_iterations):
            nxt = np.asarray(pi @ p).ravel()
            nxt /= nxt.sum()
            if np.abs(nxt - pi).max() < tol:
                return self._valid(nxt)
            pi = nxt
        return None


class SparseUpBlockSolver:
    """Sparse MTTA solves over the up block, pattern reused per sample.

    Solves ``Q_UU m = -1`` (down states absorbing) and returns the mean
    hitting time from the initial state — the quantity the MTTF
    abstraction inverts.  The up-block pattern is symbolic: ``+rate`` at
    up->up transitions, ``-rate`` on the diagonal for *every* transition
    leaving an up state (including those into the down set).
    """

    def __init__(
        self,
        n: int,
        sources: np.ndarray,
        targets: np.ndarray,
        up_idx: np.ndarray,
    ) -> None:
        sources = np.asarray(sources, dtype=np.intp)
        targets = np.asarray(targets, dtype=np.intp)
        up_mask = np.zeros(n, dtype=bool)
        up_mask[up_idx] = True
        position = np.full(n, -1, dtype=np.intp)
        position[up_idx] = np.arange(up_idx.size)
        uu = up_mask[sources] & up_mask[targets]
        leaving = up_mask[sources]
        self.n_up = int(up_idx.size)
        self._pattern = CsrPattern(
            shape=(self.n_up, self.n_up),
            plus=(
                position[sources[uu]],
                position[targets[uu]],
                np.flatnonzero(uu),
            ),
            minus=(
                position[sources[leaving]],
                position[sources[leaving]],
                np.flatnonzero(leaving),
            ),
        )
        self._rhs = -np.ones(self.n_up)

    def mtta_initial(self, rates_row: np.ndarray) -> Optional[float]:
        """Mean time from state 0 into the down set, or ``None`` on
        failure (the caller falls back to the flow abstraction, exactly
        like the dense path)."""
        a = self._pattern.assemble(rates_row)
        try:
            m = spla.splu(a.tocsc()).solve(self._rhs)
        except (RuntimeError, ValueError):
            return None
        m = np.asarray(m, dtype=float).ravel()
        if not np.isfinite(m).all() or m.min() < 0.0:
            return None
        # The initial state (canonical index 0) is the first up state.
        return float(m[0])


# Scalar-path adapters -------------------------------------------------------


def _generator_coo(generator) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Off-diagonal (sources, targets, rates) of a bound generator."""
    if generator.is_sparse:
        coo = generator.matrix.tocoo()
        mask = (coo.row != coo.col) & (coo.data != 0.0)
        return (
            coo.row[mask].astype(np.intp),
            coo.col[mask].astype(np.intp),
            np.asarray(coo.data[mask], dtype=float),
        )
    dense = generator.dense()
    np.fill_diagonal(dense, 0.0)
    src, tgt = np.nonzero(dense)
    return src.astype(np.intp), tgt.astype(np.intp), dense[src, tgt]


def solve_banded_generator(generator) -> np.ndarray:
    """Scalar banded-GTH solve of one bound generator.

    Raises:
        SolverError: If the generator has no banded-plus-spike shape.
    """
    src, tgt, rates = _generator_coo(generator)
    structure = detect_banded_structure(generator.n_states, src, tgt)
    if structure is None:
        raise SolverError(
            f"model {generator.model_name!r} has no banded-plus-spike "
            f"structure (bandwidth over {MAX_BANDWIDTH} or too few "
            "states); use method='direct', 'gth' or 'gmres'"
        )
    return gth_banded_batch(structure, rates[None, :])[0]


def solve_gmres_generator(generator, tol: float = 1e-10) -> np.ndarray:
    """Scalar matrix-free-style GMRES solve of one bound generator."""
    src, tgt, rates = _generator_coo(generator)
    solver = SparseSteadyStateSolver(generator.n_states, src, tgt)
    return solver.solve_gmres(rates, tol=tol)


def generator_banded_structure(generator) -> Optional[BandedStructure]:
    """Banded-structure detection for a bound generator (or ``None``)."""
    src, tgt, _ = _generator_coo(generator)
    return detect_banded_structure(generator.n_states, src, tgt)
