"""Steady-state (stationary) distribution solvers.

Three algorithms are provided:

* ``"direct"`` — replace one balance equation with the normalization
  constraint and solve the dense/sparse linear system with LU.  Fast and
  accurate for the model sizes in this library.
* ``"gth"`` — the Grassmann–Taksar–Heyman elimination, which avoids
  subtractions entirely and is numerically robust for *stiff* chains where
  rates span many orders of magnitude (availability models routinely mix
  per-year failure rates with per-minute repair rates — eight orders of
  magnitude in this paper's models).
* ``"power"`` — power iteration on the uniformized DTMC; mostly useful as
  an independent cross-check and for very large sparse chains.

Two structure-exploiting methods (see :mod:`repro.ctmc.sparse`) extend
the reach to large state spaces:

* ``"banded"`` — subtraction-free GTH elimination restricted to the
  generator's band plus the column-0 repair spike; O(n b^2) instead of
  O(n^3).  Only valid for banded-plus-spike chains (the generalized
  N-instance AS model, birth-death chains).
* ``"gmres"`` — ILU-preconditioned GMRES on the sparse augmented
  system; the iterative fallback for large unstructured chains.

``"auto"`` picks for you: banded when the structure is detected on a
large enough chain, otherwise direct.  All methods agree to tight
tolerances on the paper's models; the property tests in
``tests/ctmc/test_steady_state.py`` and ``tests/ctmc/test_sparse.py``
enforce this on random chains.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Union

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro import obs
from repro.core.model import MarkovModel
from repro.ctmc.generator import GeneratorMatrix, build_generator
from repro.ctmc.sparse import (
    BANDED_MIN_STATES,
    generator_banded_structure,
    solve_banded_generator,
    solve_gmres_generator,
)
from repro.ctmc.structure import classify_states
from repro.exceptions import SolverError, StructureError

Method = str  # "direct" | "gth" | "power" | "banded" | "gmres" | "auto"

_DEFAULT_TOL = 1e-12


def steady_state_vector(
    generator: GeneratorMatrix,
    method: Method = "direct",
    tol: float = _DEFAULT_TOL,
    max_iterations: int = 200_000,
    check_structure: bool = True,
) -> np.ndarray:
    """Solve ``pi Q = 0``, ``sum(pi) = 1`` for an irreducible generator.

    Args:
        generator: The bound generator matrix.
        method: One of ``"direct"``, ``"gth"``, ``"power"``, ``"banded"``,
            ``"gmres"`` or ``"auto"``.
        tol: Residual tolerance (used by the iterative method and the
            final sanity check).
        max_iterations: Iteration cap for ``"power"``.
        check_structure: Verify the chain has a single recurrent class
            covering all states before solving.  Disable only when the
            caller has already checked.

    Returns:
        The stationary probability vector, in ``generator.state_names``
        order.

    Raises:
        StructureError: If the chain is reducible (no unique stationary
            distribution over the full state space).
        SolverError: If the linear algebra fails or the result is not a
            probability vector.
    """
    if check_structure:
        classification = classify_states(generator)
        if not classification.has_single_recurrent_class:
            raise StructureError(
                f"model {generator.model_name!r} has "
                f"{len(classification.recurrent_classes)} recurrent "
                "classes; the stationary distribution is not unique"
            )
        if classification.transient_states:
            # A unique stationary distribution still exists: zero mass on
            # the transient states, solve within the recurrent class.
            # This arises naturally when a parameterization switches off
            # a feature (e.g. a maintenance rate of zero makes the
            # Maintenance state unreachable).
            recurrent = list(classification.recurrent_classes[0])
            if len(recurrent) == 1:
                pi = np.zeros(generator.n_states)
                pi[generator.index_of(recurrent[0])] = 1.0
                return pi
            block = generator.restricted(recurrent)
            block_pi = steady_state_vector(
                block,
                method=method,
                tol=tol,
                max_iterations=max_iterations,
                check_structure=False,
            )
            pi = np.zeros(generator.n_states)
            for name, mass in zip(recurrent, block_pi):
                pi[generator.index_of(name)] = mass
            return pi
    requested = method
    if method == "auto":
        method = "direct"
        if generator.n_states >= BANDED_MIN_STATES:
            if generator_banded_structure(generator) is not None:
                method = "banded"
    if obs.enabled():
        obs.counter("ctmc_steady_state_solves_total", method=method).inc()
        if requested == "auto":
            obs.event(
                "ctmc.method_auto",
                model=generator.model_name,
                chosen=method,
                n_states=generator.n_states,
            )
    if method == "direct":
        pi = _solve_direct(generator)
    elif method == "gth":
        pi = _solve_gth(generator)
    elif method == "power":
        pi = _solve_power(generator, tol=tol, max_iterations=max_iterations)
    elif method == "banded":
        pi = solve_banded_generator(generator)
    elif method == "gmres":
        pi = solve_gmres_generator(generator, tol=max(tol, 1e-12))
    else:
        raise SolverError(
            f"unknown steady-state method {method!r}; "
            "expected 'direct', 'gth', 'power', 'banded', 'gmres' or 'auto'"
        )
    _check_probability_vector(pi, generator, tol=1e-8)
    return pi


def solve_steady_state(
    model_or_generator: Union[MarkovModel, GeneratorMatrix],
    values: Optional[Mapping[str, float]] = None,
    method: Method = "direct",
    **kwargs,
) -> Dict[str, float]:
    """Convenience wrapper returning ``{state_name: probability}``.

    Accepts either a :class:`~repro.core.model.MarkovModel` plus parameter
    values, or an already-built :class:`GeneratorMatrix`.
    """
    if isinstance(model_or_generator, GeneratorMatrix):
        generator = model_or_generator
    else:
        if values is None:
            raise SolverError(
                "parameter values are required when passing a MarkovModel"
            )
        generator = build_generator(model_or_generator, values)
    pi = steady_state_vector(generator, method=method, **kwargs)
    return dict(zip(generator.state_names, pi.tolist()))


# Implementations ----------------------------------------------------------


def _solve_direct(generator: GeneratorMatrix) -> np.ndarray:
    """Replace the last balance equation with normalization and LU-solve."""
    n = generator.n_states
    if generator.is_sparse:
        a = sp.lil_matrix(generator.matrix.T)
        a[n - 1, :] = 1.0
        b = np.zeros(n)
        b[n - 1] = 1.0
        try:
            pi = spla.spsolve(a.tocsr(), b)
        except Exception as exc:  # pragma: no cover - scipy error paths vary
            raise SolverError(f"sparse steady-state solve failed: {exc}") from exc
    else:
        a = generator.dense().T
        a[n - 1, :] = 1.0
        b = np.zeros(n)
        b[n - 1] = 1.0
        try:
            pi = np.linalg.solve(a, b)
        except np.linalg.LinAlgError as exc:
            raise SolverError(
                f"steady-state system is singular for model "
                f"{generator.model_name!r}: {exc}"
            ) from exc
    return np.asarray(pi, dtype=float)


def _solve_gth(generator: GeneratorMatrix) -> np.ndarray:
    """Grassmann–Taksar–Heyman elimination (subtraction-free, O(n^3)).

    The classic formulation works on dense matrices; availability models
    are small enough (tens to hundreds of states) that densifying is fine.
    """
    return _gth_reference(generator.dense())


def _gth_reference(q: np.ndarray) -> np.ndarray:
    """Textbook GTH on a dense generator; returns the stationary vector."""
    n = q.shape[0]
    a = q.copy().astype(float)
    np.fill_diagonal(a, 0.0)
    for k in range(n - 1, 0, -1):
        total = a[k, :k].sum()
        if total <= 0.0:
            raise SolverError(
                "GTH elimination failed: no transition from eliminated "
                "state back into the remaining block (reducible chain?)"
            )
        # Scale the column entering state k (not the row): the update then
        # adds the exact probability flow through the eliminated state,
        # and the scaled column is what back substitution needs.
        a[:k, k] /= total
        a[:k, :k] += np.outer(a[:k, k], a[k, :k])
    pi = np.zeros(n)
    pi[0] = 1.0
    for k in range(1, n):
        pi[k] = float(np.dot(pi[:k], a[:k, k]))
    pi /= pi.sum()
    return pi


def _solve_power(
    generator: GeneratorMatrix, tol: float, max_iterations: int
) -> np.ndarray:
    """Power iteration on the uniformized DTMC ``P = I + Q/Lambda``."""
    exit_rates = generator.exit_rates()
    lam = float(exit_rates.max()) * 1.05
    if lam <= 0.0:
        raise SolverError("generator has no transitions; chain is degenerate")
    n = generator.n_states
    if generator.is_sparse:
        p = sp.identity(n, format="csr") + generator.matrix / lam
    else:
        p = np.eye(n) + generator.dense() / lam
    pi = np.full(n, 1.0 / n)
    for _ in range(max_iterations):
        if generator.is_sparse:
            nxt = np.asarray(pi @ p).ravel()
        else:
            nxt = pi @ p
        nxt /= nxt.sum()
        if np.abs(nxt - pi).max() < tol:
            return nxt
        pi = nxt
    raise SolverError(
        f"power iteration did not converge within {max_iterations} "
        f"iterations (model {generator.model_name!r}); the chain may be "
        "periodic after uniformization or extremely stiff — use 'gth'"
    )


def _check_probability_vector(
    pi: np.ndarray, generator: GeneratorMatrix, tol: float
) -> None:
    if not np.all(np.isfinite(pi)):
        raise SolverError(
            f"steady-state solve produced non-finite probabilities for "
            f"model {generator.model_name!r}"
        )
    if pi.min() < -tol:
        raise SolverError(
            f"steady-state solve produced negative probability "
            f"{pi.min():.3e} for model {generator.model_name!r}"
        )
    if abs(pi.sum() - 1.0) > 1e-6:
        raise SolverError(
            f"steady-state probabilities sum to {pi.sum()!r}, not 1, for "
            f"model {generator.model_name!r}"
        )
    np.clip(pi, 0.0, None, out=pi)
    pi /= pi.sum()
