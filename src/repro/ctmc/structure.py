"""Structural analysis of CTMC state spaces.

Availability models are usually irreducible (every failure is eventually
repaired), while reliability models deliberately contain absorbing failure
states.  The steady-state and absorption solvers use these helpers to fail
loudly when handed a chain of the wrong shape, instead of returning a
numerically-plausible nonsense vector.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np
import scipy.sparse as sp
import scipy.sparse.csgraph as csgraph

from repro.ctmc.generator import GeneratorMatrix


def _adjacency(generator: GeneratorMatrix) -> sp.csr_matrix:
    """Boolean adjacency matrix of the transition graph (no diagonal)."""
    if generator.is_sparse:
        matrix = generator.matrix.tocoo()
        mask = (matrix.data > 0.0) & (matrix.row != matrix.col)
        return sp.coo_matrix(
            (np.ones(mask.sum()), (matrix.row[mask], matrix.col[mask])),
            shape=matrix.shape,
        ).tocsr()
    dense = generator.dense()
    np.fill_diagonal(dense, 0.0)
    return sp.csr_matrix(dense > 0.0)


def communicating_classes(generator: GeneratorMatrix) -> List[Tuple[str, ...]]:
    """Strongly connected components of the transition graph.

    Returns one tuple of state names per class, ordered by the smallest
    state index they contain.
    """
    adjacency = _adjacency(generator)
    n_components, labels = csgraph.connected_components(
        adjacency, directed=True, connection="strong"
    )
    classes: Dict[int, List[str]] = {}
    for index, label in enumerate(labels):
        classes.setdefault(int(label), []).append(generator.state_names[index])
    ordered = sorted(
        classes.values(), key=lambda names: generator.index_of(names[0])
    )
    return [tuple(names) for names in ordered]


def is_irreducible(generator: GeneratorMatrix) -> bool:
    """True if every state communicates with every other state."""
    return len(communicating_classes(generator)) == 1


@dataclass(frozen=True)
class StateClassification:
    """Partition of states into transient and recurrent (per class)."""

    recurrent_classes: Tuple[Tuple[str, ...], ...]
    transient_states: Tuple[str, ...]
    absorbing_states: Tuple[str, ...]

    @property
    def has_single_recurrent_class(self) -> bool:
        return len(self.recurrent_classes) == 1


def classify_states(generator: GeneratorMatrix) -> StateClassification:
    """Classify each state as transient or member of a recurrent class.

    A communicating class is recurrent iff no transition leaves it.  A
    recurrent singleton with no outgoing arcs at all is an absorbing state.
    """
    classes = communicating_classes(generator)
    membership = {
        name: k for k, names in enumerate(classes) for name in names
    }
    leaks = [False] * len(classes)
    adjacency = _adjacency(generator).tocoo()
    for i, j in zip(adjacency.row, adjacency.col):
        source = generator.state_names[i]
        target = generator.state_names[j]
        if membership[source] != membership[target]:
            leaks[membership[source]] = True

    recurrent: List[Tuple[str, ...]] = []
    transient: List[str] = []
    absorbing: List[str] = []
    exit_rates = generator.exit_rates()
    for k, names in enumerate(classes):
        if leaks[k]:
            transient.extend(names)
        else:
            recurrent.append(names)
            if len(names) == 1:
                index = generator.index_of(names[0])
                if exit_rates[index] == 0.0:
                    absorbing.append(names[0])
    return StateClassification(
        recurrent_classes=tuple(recurrent),
        transient_states=tuple(transient),
        absorbing_states=tuple(absorbing),
    )


def reachable_from(
    generator: GeneratorMatrix, sources: Sequence[str]
) -> Tuple[str, ...]:
    """All states reachable (in >= 0 steps) from the given source states."""
    adjacency = _adjacency(generator)
    n = generator.n_states
    seen = np.zeros(n, dtype=bool)
    stack = [generator.index_of(name) for name in sources]
    for index in stack:
        seen[index] = True
    while stack:
        i = stack.pop()
        row = adjacency.getrow(i)
        for j in row.indices:
            if not seen[j]:
                seen[j] = True
                stack.append(int(j))
    return tuple(
        name for index, name in enumerate(generator.state_names) if seen[index]
    )
