"""Numerical engine for continuous-time Markov chains (CTMCs).

The public surface of this package:

* :func:`~repro.ctmc.generator.build_generator` — assemble the infinitesimal
  generator matrix Q from a :class:`~repro.core.model.MarkovModel` and a
  parameter mapping.
* :func:`~repro.ctmc.steady_state.solve_steady_state` — stationary
  distribution, with selectable algorithm (direct LU, GTH elimination,
  power iteration).
* :func:`~repro.ctmc.transient.transient_distribution` — state
  probabilities at time t (uniformization, matrix exponential, or ODE).
* :func:`~repro.ctmc.absorption.mean_time_to_absorption` and friends.
* :func:`~repro.ctmc.rewards.steady_state_availability` and the other
  reward measures.
"""

from repro.ctmc.batch import (
    BATCH_METHODS,
    BatchAvailability,
    batch_availability,
    batch_steady_state,
)
from repro.ctmc.generator import GeneratorMatrix, build_generator
from repro.ctmc.sparse import (
    BandedStructure,
    SparseSteadyStateSolver,
    detect_banded_structure,
    generator_banded_structure,
)
from repro.ctmc.steady_state import solve_steady_state, steady_state_vector
from repro.ctmc.transient import (
    transient_distribution,
    transient_reward,
    interval_availability,
)
from repro.ctmc.absorption import (
    absorption_probabilities,
    mean_time_to_absorption,
    mean_time_to_failure,
)
from repro.ctmc.rewards import (
    AvailabilityResult,
    equivalent_failure_recovery_rates,
    expected_steady_state_reward,
    steady_state_availability,
)
from repro.ctmc.structure import (
    classify_states,
    communicating_classes,
    is_irreducible,
)
from repro.ctmc.passage import (
    outage_duration_cdf,
    passage_time_cdf,
    passage_time_quantile,
    passage_time_survival,
)
from repro.ctmc.mfpt import (
    expected_visits,
    kemeny_constant,
    mean_first_passage_matrix,
    mean_return_times,
)

__all__ = [
    "BATCH_METHODS",
    "BatchAvailability",
    "batch_availability",
    "batch_steady_state",
    "GeneratorMatrix",
    "build_generator",
    "BandedStructure",
    "SparseSteadyStateSolver",
    "detect_banded_structure",
    "generator_banded_structure",
    "solve_steady_state",
    "steady_state_vector",
    "transient_distribution",
    "transient_reward",
    "interval_availability",
    "absorption_probabilities",
    "mean_time_to_absorption",
    "mean_time_to_failure",
    "AvailabilityResult",
    "equivalent_failure_recovery_rates",
    "expected_steady_state_reward",
    "steady_state_availability",
    "classify_states",
    "communicating_classes",
    "is_irreducible",
    "outage_duration_cdf",
    "passage_time_cdf",
    "passage_time_quantile",
    "passage_time_survival",
    "expected_visits",
    "kemeny_constant",
    "mean_first_passage_matrix",
    "mean_return_times",
]
