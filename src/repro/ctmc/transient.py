"""Transient analysis: state probabilities and rewards at finite times.

Two complementary algorithms:

* **Uniformization** (a.k.a. Jensen's method / randomization): expresses
  ``pi(t) = pi(0) e^{Qt}`` as a Poisson-weighted mixture of DTMC powers.
  Numerically robust (all quantities non-negative) with a computable
  truncation error; the default.
* **Matrix exponential** via ``scipy.linalg.expm``; an independent
  implementation used to cross-check uniformization in the tests.

Also provides *interval availability* — the expected fraction of [0, t]
spent in up states — computed by integrating the transient reward with
the standard augmented-uniformization recurrence.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Optional, Sequence, Union

import numpy as np
import scipy.linalg
import scipy.special

from repro.core.model import MarkovModel
from repro.ctmc.generator import GeneratorMatrix, build_generator
from repro.exceptions import SolverError

Method = str  # "uniformization" | "expm"


def _as_generator(
    model_or_generator: Union[MarkovModel, GeneratorMatrix],
    values: Optional[Mapping[str, float]],
) -> GeneratorMatrix:
    if isinstance(model_or_generator, GeneratorMatrix):
        return model_or_generator
    if values is None:
        raise SolverError("parameter values are required when passing a MarkovModel")
    return build_generator(model_or_generator, values)


def _initial_vector(
    generator: GeneratorMatrix,
    initial: Union[str, Mapping[str, float], Sequence[float], None],
) -> np.ndarray:
    """Normalize the many accepted initial-distribution spellings."""
    n = generator.n_states
    if initial is None:
        # Default: start in the first state (conventionally the all-up state).
        vec = np.zeros(n)
        vec[0] = 1.0
        return vec
    if isinstance(initial, str):
        vec = np.zeros(n)
        vec[generator.index_of(initial)] = 1.0
        return vec
    if isinstance(initial, Mapping):
        vec = np.zeros(n)
        for name, mass in initial.items():
            vec[generator.index_of(name)] = float(mass)
    else:
        vec = np.asarray(initial, dtype=float)
        if vec.shape != (n,):
            raise SolverError(
                f"initial distribution has length {vec.shape}, expected {n}"
            )
    if vec.min() < 0.0 or abs(vec.sum() - 1.0) > 1e-9:
        raise SolverError(
            "initial distribution must be non-negative and sum to 1"
        )
    return vec


def transient_distribution(
    model_or_generator: Union[MarkovModel, GeneratorMatrix],
    t: float,
    values: Optional[Mapping[str, float]] = None,
    initial: Union[str, Mapping[str, float], Sequence[float], None] = None,
    method: Method = "uniformization",
    tol: float = 1e-12,
) -> Dict[str, float]:
    """State probabilities at time ``t``.

    Args:
        model_or_generator: Model (with ``values``) or bound generator.
        t: Time horizon (hours), ``>= 0``.
        values: Parameter values if a model was passed.
        initial: Initial distribution: a state name, a mapping, a vector,
            or None for "first state with probability one".
        method: ``"uniformization"`` (default) or ``"expm"``.
        tol: Truncation error bound for uniformization.

    Returns:
        ``{state_name: probability}`` at time ``t``.
    """
    generator = _as_generator(model_or_generator, values)
    if t < 0.0:
        raise SolverError(f"time must be non-negative, got {t}")
    p0 = _initial_vector(generator, initial)
    if t == 0.0:
        return dict(zip(generator.state_names, p0.tolist()))
    if method == "uniformization":
        pt = _uniformization(generator, p0, t, tol)
    elif method == "expm":
        pt = p0 @ scipy.linalg.expm(generator.dense() * t)
    else:
        raise SolverError(
            f"unknown transient method {method!r}; "
            "expected 'uniformization' or 'expm'"
        )
    pt = np.clip(pt, 0.0, None)
    pt /= pt.sum()
    return dict(zip(generator.state_names, pt.tolist()))


def transient_reward(
    model_or_generator: Union[MarkovModel, GeneratorMatrix],
    t: float,
    values: Optional[Mapping[str, float]] = None,
    initial: Union[str, Mapping[str, float], Sequence[float], None] = None,
    method: Method = "uniformization",
) -> float:
    """Expected instantaneous reward rate at time ``t``.

    For a pure availability model (rewards in {0, 1}) this is the
    *point availability* A(t).
    """
    generator = _as_generator(model_or_generator, values)
    distribution = transient_distribution(
        generator, t, initial=initial, method=method
    )
    return float(
        sum(
            distribution[name] * reward
            for name, reward in zip(generator.state_names, generator.rewards)
        )
    )


def interval_availability(
    model_or_generator: Union[MarkovModel, GeneratorMatrix],
    t: float,
    values: Optional[Mapping[str, float]] = None,
    initial: Union[str, Mapping[str, float], Sequence[float], None] = None,
    tol: float = 1e-12,
) -> float:
    """Expected fraction of [0, t] spent earning reward.

    Computed as ``(1/t) * E[∫_0^t r(X_s) ds]`` using the uniformization
    integral recurrence.  For rewards in {0, 1} this is the classic
    interval availability studied in the RAScad companion paper [18].
    """
    generator = _as_generator(model_or_generator, values)
    if t <= 0.0:
        raise SolverError(f"interval length must be positive, got {t}")
    p0 = _initial_vector(generator, initial)
    accumulated = _uniformization_integral(generator, p0, t, tol)
    reward = float(np.dot(accumulated, generator.rewards))
    return reward / t


# Uniformization internals ---------------------------------------------------


def _uniformized_dtmc(generator: GeneratorMatrix):
    exit_rates = generator.exit_rates()
    lam = float(exit_rates.max())
    if lam <= 0.0:
        raise SolverError("generator has no transitions; chain is degenerate")
    lam *= 1.02  # slack keeps diagonal entries strictly positive (aperiodic)
    n = generator.n_states
    if generator.is_sparse:
        import scipy.sparse as sp

        p = sp.identity(n, format="csr") + generator.matrix / lam
    else:
        p = np.eye(n) + generator.dense() / lam
    return p, lam


#: Uniformization cost is O(lambda * t) matrix-vector products; beyond
#: this many terms a transient question is better answered by the
#: steady-state solver (the chain has long since mixed).
MAX_UNIFORMIZATION_TERMS = 20_000_000


def _poisson_truncation(rate: float, tol: float) -> int:
    """Truncation point with Poisson(rate) tail mass far below tol.

    ``rate + 8 sqrt(rate) + 20`` puts the tail at ~1e-15 for any rate
    (8-sigma normal tail plus slack for small rates), comfortably below
    the default 1e-12 tolerance.
    """
    if rate <= 0.0:
        return 0
    k_max = int(rate + 8.0 * math.sqrt(rate) + 20.0)
    if k_max > MAX_UNIFORMIZATION_TERMS:
        raise SolverError(
            f"uniformization would need ~{k_max:.2e} terms "
            f"(lambda*t = {rate:.2e}); the horizon is far past the "
            "chain's mixing time — use the steady-state solver instead, "
            "or split the horizon"
        )
    return k_max


def _poisson_window(rate: float, tol: float):
    """Fox–Glynn-style Poisson weight window.

    Returns ``(left, right, weights)`` where ``weights[k - left]`` is the
    Poisson(rate) pmf at ``k`` for ``k`` in ``[left, right]``.  The mass
    outside the window is below ~1e-15 on each side (8-sigma bounds), so
    the uniformization loop can skip accumulation below ``left`` and stop
    at ``right``.  Weights are evaluated in one vectorized ``gammaln``
    pass instead of a per-term log/exp recurrence.
    """
    right = _poisson_truncation(rate, tol)
    left = max(0, int(rate - 8.0 * math.sqrt(rate) - 20.0))
    ks = np.arange(left, right + 1, dtype=float)
    log_weights = ks * math.log(rate) - rate - scipy.special.gammaln(ks + 1.0)
    with np.errstate(under="ignore"):
        weights = np.exp(log_weights)
    return left, right, weights


def _uniformization(
    generator: GeneratorMatrix, p0: np.ndarray, t: float, tol: float
) -> np.ndarray:
    p, lam = _uniformized_dtmc(generator)
    rate = lam * t
    left, right, weights = _poisson_window(rate, tol)
    cum_weights = np.cumsum(weights)
    vector = p0.copy()
    result = np.zeros_like(vector)
    cumulative = 0.0
    if left == 0:
        result += weights[0] * vector
        cumulative = cum_weights[0]
    # Run to the analytic truncation point; stop early once the Poisson
    # mass is accounted for.  Floating-point summation of ~1e3 weights can
    # plateau a hair below 1 - tol, so the window's right edge (tail <
    # 1e-15) is the authoritative stop, not the cumulative check.  Below
    # the window's left edge only the DTMC powers advance — the weights
    # there are negligible by construction.
    for k in range(1, right + 1):
        vector = vector @ p
        if hasattr(vector, "ravel"):
            vector = np.asarray(vector).ravel()
        if k < left:
            continue
        weight = weights[k - left]
        if weight > 0.0:
            result = result + weight * vector
            cumulative = cum_weights[k - left]
            if cumulative >= 1.0 - tol and k >= rate:
                break
    # Renormalize the truncated mixture so truncation error cannot leak
    # probability mass.
    if cumulative > 0.0:
        result = result / cumulative
    return np.asarray(result, dtype=float)


def _uniformization_integral(
    generator: GeneratorMatrix, p0: np.ndarray, t: float, tol: float
) -> np.ndarray:
    """``∫_0^t p(s) ds`` via the standard augmented recurrence.

    Uses the identity
    ``∫_0^t p(s) ds = (1/lam) * sum_{k>=0} P_tail(k) * p0 P^k``
    where ``P_tail(k) = P(Poisson(lam t) > k)``.  Below the Fox–Glynn
    window the tail is 1 to within the truncation error, so those terms
    add the DTMC power unweighted.
    """
    p, lam = _uniformized_dtmc(generator)
    rate = lam * t
    left, right, weights = _poisson_window(rate, tol)
    cum_weights = np.cumsum(weights)
    vector = p0.copy()
    tail0 = 1.0 if left > 0 else max(0.0, 1.0 - cum_weights[0])
    integral = tail0 * vector
    for k in range(1, right + 1):
        vector = vector @ p
        if hasattr(vector, "ravel"):
            vector = np.asarray(vector).ravel()
        if k < left:
            tail = 1.0
        else:
            tail = max(0.0, 1.0 - cum_weights[k - left])
        if tail == 0.0 and k >= rate:
            break
        integral = integral + tail * vector
    return np.asarray(integral, dtype=float) / lam
