"""Batched CTMC solvers: many parameter samples, one compiled model.

This is the numerical half of the compile-once / evaluate-many engine
(:mod:`repro.core.compiled` is the symbolic half).  Given a compiled
model and parameter columns it:

* evaluates the ``(n_samples, n_transitions)`` rate matrix in one
  vectorized program,
* assembles all generators as one ``(n_samples, n, n)`` stack,
* classifies the state space **once per transition zero-pattern** (not
  once per sample) with results cached on the compiled model — a sampled
  rate hitting exactly 0 changes the pattern and therefore gets its own
  classification, so feature-switch-off parameterizations stay correct,
* solves all steady-state systems with one stacked LU
  (``numpy.linalg.solve`` on the whole batch), falling back to the
  subtraction-free GTH elimination per sample for stiff chains when
  ``method="auto"`` is selected,
* mirrors the scalar reward pipeline (availability, equivalent
  (Lambda, Mu) rates, yearly downtime, MTBF/MTTR) element-wise.

For ``method="direct"`` the arithmetic is *bit-identical* to the scalar
path on arithmetic-only rate expressions: the stacked LAPACK solves and
reductions perform the same operations per sample as the scalar solver.
The property tests in ``tests/ctmc/test_batch.py`` enforce exact
equality on random chains and on the paper's models.

**Large state spaces.**  The dense stack is O(n^2) memory per sample, so
models at or above :data:`~repro.ctmc.generator.SPARSE_THRESHOLD` states
are routed through the structure-exploiting engines in
:mod:`repro.ctmc.sparse` instead: batched banded GTH when the generator
is banded-plus-spike (the generalized N-instance AS model), sparse LU
with symbolic-pattern reuse otherwise.  ``method="auto"`` additionally
picks the banded engine for banded models at or above
:data:`~repro.ctmc.sparse.BANDED_BATCH_MIN_STATES` states — the batch
crossover is far below the scalar one because the elimination is
vectorized over the whole sample block.  The bit-parity contract applies
to the dense paths; the structured engines match the dense reference to
~1e-12.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple, Union

import numpy as np
import scipy.sparse as sp
import scipy.sparse.csgraph as csgraph

from repro import obs
from repro.core.compiled import ColumnLike, CompiledModel, compile_model
from repro.core.model import MarkovModel
from repro.ctmc.generator import SPARSE_THRESHOLD, GeneratorMatrix
from repro.ctmc.sparse import (
    BANDED_BATCH_MIN_STATES,
    MAX_BANDWIDTH,
    BandedStructure,
    SparseSteadyStateSolver,
    SparseUpBlockSolver,
    detect_banded_structure,
)
from repro.kernels.banded import banded_steady_state
from repro.ctmc.steady_state import _gth_reference, steady_state_vector
from repro.ctmc.structure import classify_states
from repro.exceptions import SolverError, StructureError
from repro.units import unavailability_to_yearly_downtime_minutes

ModelLike = Union[MarkovModel, CompiledModel]

#: Methods accepted by the batch solvers.  "direct", "gth" and "auto"
#: keep their dense-path semantics below SPARSE_THRESHOLD; "banded" and
#: "sparse" force a structured engine at any size.
BATCH_METHODS = ("direct", "gth", "auto", "banded", "sparse")


@dataclass(frozen=True)
class PatternStructure:
    """Cached structural classification for one transition zero-pattern.

    Attributes:
        n_recurrent_classes: Number of recurrent communicating classes.
        recurrent_idx: State indices of the (single) recurrent class, in
            classification order (matching the scalar solver's block
            restriction order); ``None`` when classes != 1.
        covers_all: True when the single recurrent class spans the whole
            state space (the common irreducible case).
        mtta_error: Error message when some up state cannot reach the
            down set (the MTTF abstraction would raise); ``None`` if the
            mean-time-to-absorption system is well posed or irrelevant.
    """

    n_recurrent_classes: int
    recurrent_idx: Optional[np.ndarray]
    covers_all: bool
    mtta_error: Optional[str]


def _pattern_generator(
    compiled: CompiledModel, pattern: np.ndarray
) -> GeneratorMatrix:
    """A unit-rate generator with the pattern's adjacency (for structure)."""
    n = compiled.n_states
    if n >= SPARSE_THRESHOLD:
        src = compiled.transition_sources[pattern]
        tgt = compiled.transition_targets[pattern]
        off = sp.coo_matrix(
            (np.ones(src.size), (src, tgt)), shape=(n, n)
        ).tocsr()
        diagonal = -np.asarray(off.sum(axis=1)).ravel()
        matrix = (off + sp.diags(diagonal)).tocsr()
    else:
        matrix = np.zeros((n, n), dtype=float)
        if compiled.n_transitions:
            src = compiled.transition_sources[pattern]
            tgt = compiled.transition_targets[pattern]
            matrix[src, tgt] = 1.0
        np.fill_diagonal(matrix, -matrix.sum(axis=1))
    return GeneratorMatrix(
        matrix=matrix,
        state_names=compiled.state_names,
        rewards=compiled.rewards.copy(),
        model_name=compiled.model_name,
    )


def _first_mtta_offender(
    compiled: CompiledModel, pattern: np.ndarray
) -> Optional[int]:
    """Lowest-index up state that cannot reach the down set, or ``None``.

    One reverse BFS from the whole down set (via a virtual super-source)
    replaces the old per-up-state forward search — O(E) instead of
    O(n_up * E), which matters once SPN-derived chains reach 10^4+
    states.
    """
    n = compiled.n_states
    src = compiled.transition_sources[pattern]
    tgt = compiled.transition_targets[pattern]
    down = compiled.down_idx
    # Reverse edges (tgt -> src) plus a virtual root n feeding every
    # down state; everything BFS reaches from the root can reach down.
    rows = np.concatenate([tgt, np.full(down.size, n, dtype=np.intp)])
    cols = np.concatenate([src, down])
    adjacency = sp.coo_matrix(
        (np.ones(rows.size), (rows, cols)), shape=(n + 1, n + 1)
    ).tocsr()
    order = csgraph.breadth_first_order(
        adjacency, n, directed=True, return_predecessors=False
    )
    can_reach = np.zeros(n + 1, dtype=bool)
    can_reach[order] = True
    blocked = np.flatnonzero(~can_reach[compiled.up_idx])
    if blocked.size:
        return int(compiled.up_idx[blocked[0]])
    return None


def pattern_structure(
    compiled: CompiledModel, pattern: np.ndarray
) -> PatternStructure:
    """Classify (and cache) the state space for one zero-pattern.

    Classification depends only on which transition rates are non-zero,
    so the (comparatively expensive) reachability analysis runs once per
    distinct pattern across an entire batch.
    """
    key = np.asarray(pattern, dtype=bool).tobytes()
    cached = compiled.structure_cache.get(key)
    if cached is not None:
        obs.counter("ctmc_pattern_cache_total", outcome="hit").inc()
        return cached  # type: ignore[return-value]
    obs.counter("ctmc_pattern_cache_total", outcome="miss").inc()

    generator = _pattern_generator(compiled, pattern)
    classification = classify_states(generator)
    if classification.has_single_recurrent_class:
        recurrent_names = classification.recurrent_classes[0]
        recurrent_idx = np.array(
            [compiled.index[name] for name in recurrent_names], dtype=np.intp
        )
        covers_all = len(recurrent_names) == compiled.n_states
    else:
        recurrent_idx = None
        covers_all = False

    mtta_error: Optional[str] = None
    if compiled.down_idx.size and compiled.up_idx.size:
        offender = _first_mtta_offender(compiled, np.asarray(pattern, bool))
        if offender is not None:
            targets = {compiled.state_names[i] for i in compiled.down_idx}
            name = compiled.state_names[offender]
            mtta_error = (
                f"state {name!r} cannot reach any target state "
                f"{sorted(targets)}; hitting time is infinite"
            )

    info = PatternStructure(
        n_recurrent_classes=len(classification.recurrent_classes),
        recurrent_idx=recurrent_idx,
        covers_all=covers_all,
        mtta_error=mtta_error,
    )
    compiled.structure_cache[key] = info
    return info


def _pattern_groups(
    n_transitions: int, rates: np.ndarray
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Group samples by transition zero-pattern.

    Returns ``(pattern, member_indices)`` pairs in first-seen order.
    Replaces ``np.unique(patterns, axis=0)``, whose lexicographic sort
    costs more than the entire banded solve on wide models; the
    overwhelmingly common all-positive batch takes the O(k·T) fast path
    (one vectorized comparison, no per-row hashing).
    """
    k = rates.shape[0]
    if not n_transitions:
        return [(np.zeros(0, dtype=bool), np.arange(k, dtype=np.intp))]
    patterns = rates > 0.0
    first = patterns[0]
    if not (patterns != first).any():
        return [(first, np.arange(k, dtype=np.intp))]
    # Mixed batch: hash packed pattern bytes per row.
    packed = np.packbits(patterns, axis=1)
    members: Dict[bytes, List[int]] = {}
    rows: Dict[bytes, int] = {}
    for s in range(k):
        key = packed[s].tobytes()
        group = members.get(key)
        if group is None:
            members[key] = [s]
            rows[key] = s
        else:
            group.append(s)
    return [
        (patterns[rows[key]], np.asarray(idx, dtype=np.intp))
        for key, idx in members.items()
    ]


# Stacked linear algebra ----------------------------------------------------


def _stacked_direct(mats: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Solve ``pi Q = 0, sum(pi) = 1`` for a stack of dense generators.

    Returns ``(pis, solved)`` where ``solved`` marks samples whose LU
    factorization succeeded (a singular sample never aborts the batch).
    """
    k, n, _ = mats.shape
    a = mats.transpose(0, 2, 1).copy()
    a[:, n - 1, :] = 1.0
    b = np.zeros(n)
    b[n - 1] = 1.0
    solved = np.ones(k, dtype=bool)
    try:
        pis = np.linalg.solve(a, b)
    except np.linalg.LinAlgError:
        # At least one sample is singular; redo sample-by-sample so the
        # healthy ones still get their exact stacked-equivalent solution.
        pis = np.zeros((k, n))
        for s in range(k):
            try:
                pis[s] = np.linalg.solve(a[s], b)
            except np.linalg.LinAlgError:
                solved[s] = False
    return np.asarray(pis, dtype=float), solved


def _finalize_block(
    pis: np.ndarray,
    mats: np.ndarray,
    solved: np.ndarray,
    method: str,
    model_name: str,
    sample_ids: np.ndarray,
) -> np.ndarray:
    """Validate, clip and renormalize a block of solved vectors.

    Mirrors the scalar ``_check_probability_vector`` checks per sample;
    with ``method="auto"`` a failing sample is re-solved with the
    subtraction-free GTH elimination instead of raising.
    """
    tol = 1e-8
    finite = np.isfinite(pis).all(axis=1)
    sums = pis.sum(axis=1)
    ok = (
        solved
        & finite
        & (pis.min(axis=1) >= -tol)
        & (np.abs(sums - 1.0) <= 1e-6)
    )
    bad = np.flatnonzero(~ok)
    if bad.size:
        if method == "auto":
            if obs.enabled():
                obs.counter("ctmc_gth_fallbacks_total").inc(int(bad.size))
                obs.event(
                    "ctmc.gth_fallback",
                    model=model_name,
                    n_samples=int(bad.size),
                )
            for s in bad:
                pis[s] = _gth_reference(mats[s])
        elif not solved[bad[0]]:
            raise SolverError(
                f"steady-state system is singular for model {model_name!r} "
                f"(sample {int(sample_ids[bad[0]])})"
            )
        else:
            raise SolverError(
                f"steady-state solve produced an invalid probability "
                f"vector for model {model_name!r} "
                f"(sample {int(sample_ids[bad[0]])})"
            )
    np.clip(pis, 0.0, None, out=pis)
    pis /= pis.sum(axis=1, keepdims=True)
    return pis


def _solve_group(
    compiled: CompiledModel,
    mats: np.ndarray,
    info: PatternStructure,
    method: str,
    sample_ids: np.ndarray,
) -> np.ndarray:
    """Steady-state vectors for one zero-pattern group of samples."""
    k, n, _ = mats.shape
    if info.n_recurrent_classes != 1:
        raise StructureError(
            f"model {compiled.model_name!r} has "
            f"{info.n_recurrent_classes} recurrent classes; the "
            f"stationary distribution is not unique "
            f"(sample {int(sample_ids[0])})"
        )
    if info.covers_all:
        if method == "gth":
            pis = np.stack([_gth_reference(mats[s]) for s in range(k)])
            solved = np.ones(k, dtype=bool)
        else:
            pis, solved = _stacked_direct(mats)
        return _finalize_block(
            pis, mats, solved, method, compiled.model_name, sample_ids
        )
    # A unique stationary distribution still exists: zero mass on the
    # transient states, solve within the recurrent class.
    recurrent = info.recurrent_idx
    assert recurrent is not None
    full = np.zeros((k, n))
    if recurrent.size == 1:
        full[:, recurrent[0]] = 1.0
        return full
    blocks = mats[:, recurrent[:, None], recurrent[None, :]]
    if method == "gth":
        pis = np.stack([_gth_reference(blocks[s]) for s in range(k)])
        solved = np.ones(k, dtype=bool)
    else:
        pis, solved = _stacked_direct(blocks)
    pis = _finalize_block(
        pis, blocks, solved, method, compiled.model_name, sample_ids
    )
    full[:, recurrent] = pis
    return full


def _grouped_steady_state(
    compiled: CompiledModel,
    rates: np.ndarray,
    mats: np.ndarray,
    method: str,
) -> np.ndarray:
    """Solve every sample, grouping the batch by transition zero-pattern."""
    k = mats.shape[0]
    pis = np.empty((k, compiled.n_states))
    for pattern, members in _pattern_groups(compiled.n_transitions, rates):
        info = pattern_structure(compiled, pattern)
        pis[members] = _solve_group(
            compiled, mats[members], info, method, members
        )
    return pis


# Structured / sparse engines -----------------------------------------------


def banded_structure_of(compiled: CompiledModel) -> Optional[BandedStructure]:
    """Detect (and cache) the model's banded-plus-spike structure."""
    cache = compiled.solver_cache
    if "banded" not in cache:
        cache["banded"] = detect_banded_structure(
            compiled.n_states,
            compiled.transition_sources,
            compiled.transition_targets,
        )
    return cache["banded"]  # type: ignore[return-value]


def _sparse_solver_of(compiled: CompiledModel) -> SparseSteadyStateSolver:
    cache = compiled.solver_cache
    if "sparse_steady" not in cache:
        cache["sparse_steady"] = SparseSteadyStateSolver(
            compiled.n_states,
            compiled.transition_sources,
            compiled.transition_targets,
        )
    return cache["sparse_steady"]  # type: ignore[return-value]


def _upblock_solver_of(compiled: CompiledModel) -> SparseUpBlockSolver:
    cache = compiled.solver_cache
    if "sparse_upblock" not in cache:
        cache["sparse_upblock"] = SparseUpBlockSolver(
            compiled.n_states,
            compiled.transition_sources,
            compiled.transition_targets,
            compiled.up_idx,
        )
    return cache["sparse_upblock"]  # type: ignore[return-value]


def _resolve_engine(compiled: CompiledModel, method: str) -> str:
    """Map a requested method to the engine that will actually run.

    Returns one of ``"direct"``, ``"gth"``, ``"auto"`` (dense stacked
    paths) or ``"banded"``, ``"sparse"`` (structured engines).  Dense
    methods on models at or above SPARSE_THRESHOLD states are redirected
    to a structured engine — mirroring the scalar path, which switches
    to sparse assembly at the same size — instead of materializing an
    O(n^2)-per-sample dense stack.
    """
    if method not in BATCH_METHODS:
        raise SolverError(
            f"unknown batch steady-state method {method!r}; "
            f"expected one of {BATCH_METHODS}"
        )
    n = compiled.n_states
    if method in ("direct", "gth"):
        if n < SPARSE_THRESHOLD:
            return method
        if banded_structure_of(compiled) is not None:
            return "banded"
        return "sparse"
    if method == "auto":
        if (
            n >= BANDED_BATCH_MIN_STATES
            and banded_structure_of(compiled) is not None
        ):
            return "banded"
        if n >= SPARSE_THRESHOLD:
            return "sparse"
        return "auto"
    if method == "banded":
        if banded_structure_of(compiled) is None:
            raise SolverError(
                f"model {compiled.model_name!r} has no banded-plus-spike "
                f"structure (bandwidth over {MAX_BANDWIDTH} or too few "
                "states); use method='sparse' or 'auto'"
            )
        return "banded"
    return "sparse"


def _sample_generator(
    compiled: CompiledModel, rates_row: np.ndarray
) -> GeneratorMatrix:
    """One sample's sparse generator (zero rates dropped, as scalar)."""
    n = compiled.n_states
    mask = rates_row > 0.0
    src = compiled.transition_sources[mask]
    tgt = compiled.transition_targets[mask]
    off = sp.coo_matrix((rates_row[mask], (src, tgt)), shape=(n, n)).tocsr()
    diagonal = -np.asarray(off.sum(axis=1)).ravel()
    matrix = (off + sp.diags(diagonal)).tocsr()
    return GeneratorMatrix(
        matrix=matrix,
        state_names=compiled.state_names,
        rewards=compiled.rewards.copy(),
        model_name=compiled.model_name,
    )


def _structured_solve_block(
    compiled: CompiledModel,
    rates: np.ndarray,
    engine: str,
    sample_ids: np.ndarray,
) -> np.ndarray:
    """Solve one irreducible zero-pattern group with a structured engine."""
    if engine == "banded":
        structure = banded_structure_of(compiled)
        assert structure is not None
        # The kernel dispatch (numba / cext / block-diagonal LAPACK,
        # falling back per sample to the GTH reference) replaces the
        # interpreted Python elimination loop.
        pis = banded_steady_state(compiled, rates)
    else:
        solver = _sparse_solver_of(compiled)
        pis = np.empty((rates.shape[0], compiled.n_states))
        for i in range(rates.shape[0]):
            try:
                pis[i] = solver.solve(rates[i])
            except SolverError as exc:
                raise SolverError(
                    f"{exc} (model {compiled.model_name!r}, "
                    f"sample {int(sample_ids[i])})"
                ) from exc
    finite = np.isfinite(pis).all(axis=1)
    ok = finite & (pis.min(axis=1) >= -1e-8)
    bad = np.flatnonzero(~ok)
    if bad.size:
        raise SolverError(
            f"structured steady-state solve produced an invalid "
            f"probability vector for model {compiled.model_name!r} "
            f"(sample {int(sample_ids[bad[0]])})"
        )
    np.clip(pis, 0.0, None, out=pis)
    pis /= pis.sum(axis=1, keepdims=True)
    return pis


def _structured_steady_state(
    compiled: CompiledModel, rates: np.ndarray, engine: str
) -> np.ndarray:
    """Grouped steady-state solve through a structured engine.

    Mirrors :func:`_grouped_steady_state`: samples are grouped by
    transition zero-pattern and classified once per pattern.  Irreducible
    groups go through the batched banded GTH or the pattern-reusing
    sparse LU; the (rare) reducible-but-unique patterns fall back to the
    scalar sparse solver per sample, which handles the recurrent-class
    restriction.
    """
    k = rates.shape[0]
    pis = np.empty((k, compiled.n_states))
    for pattern, members in _pattern_groups(compiled.n_transitions, rates):
        info = pattern_structure(compiled, pattern)
        if info.n_recurrent_classes != 1:
            raise StructureError(
                f"model {compiled.model_name!r} has "
                f"{info.n_recurrent_classes} recurrent classes; the "
                f"stationary distribution is not unique "
                f"(sample {int(members[0])})"
            )
        if info.covers_all:
            pis[members] = _structured_solve_block(
                compiled, rates[members], engine, members
            )
        else:
            for s in members:
                pis[s] = steady_state_vector(
                    _sample_generator(compiled, rates[s]), method="direct"
                )
    return pis


def _structured_equivalent_rates(
    compiled: CompiledModel,
    rates: np.ndarray,
    pis: np.ndarray,
    abstraction: str,
) -> Tuple[np.ndarray, np.ndarray]:
    """Equivalent (Lambda, Mu) rates without dense generator stacks.

    Same semantics as :func:`_batch_equivalent_rates`, but all flows are
    contracted directly over the transition list (O(T) per sample) and
    the MTTF solve goes through the pattern-reusing sparse up-block
    solver.
    """
    k = rates.shape[0]
    up = compiled.up_mask
    up_idx, down_idx = compiled.up_idx, compiled.down_idx
    if not up_idx.size:
        raise StructureError(
            f"model {compiled.model_name!r} has no up states"
        )
    if not down_idx.size:
        return np.zeros(k), np.full(k, np.inf)

    p_up = np.ascontiguousarray(pis[:, up]).sum(axis=1)
    p_down = np.ascontiguousarray(pis[:, ~up]).sum(axis=1)
    never_up = np.flatnonzero(p_up <= 0.0)
    if never_up.size:
        raise StructureError(
            f"model {compiled.model_name!r} is never up in steady state "
            f"(sample {int(never_up[0])})"
        )

    src, tgt = compiled.transition_sources, compiled.transition_targets
    ud = up[src] & ~up[tgt]
    if ud.any():
        flow_down = np.einsum(
            "kt,kt->k", rates[:, ud], pis[:, src[ud]]
        )
    else:
        flow_down = np.zeros(k)

    if abstraction == "mttf":
        if not up[0]:
            raise StructureError(
                f"model {compiled.model_name!r} starts in a down state; "
                "the MTTF abstraction requires an up initial state"
            )
        lam = np.zeros(k)
        need = np.flatnonzero(flow_down > 0.0)
        if need.size:
            for s in need:
                info = pattern_structure(compiled, rates[s] > 0.0)
                if info.mtta_error is not None:
                    raise StructureError(
                        f"{info.mtta_error} (sample {int(s)})"
                    )
            solver = _upblock_solver_of(compiled)
            for s in need:
                mtta0 = solver.mtta_initial(rates[s])
                if mtta0 is not None and mtta0 > 0.0:
                    lam[s] = 1.0 / mtta0
                else:
                    # Hitting times beyond float64 reach: the flow
                    # abstraction coincides with 1/MTTF to
                    # O(unavailability), exactly the scalar fallback.
                    lam[s] = flow_down[s] / p_up[s]
    else:
        lam = flow_down / p_up

    mu = np.full(k, np.inf)
    du = ~up[src] & up[tgt]
    reachable_down = np.flatnonzero(p_down > 0.0)
    if reachable_down.size:
        if du.any():
            flow_up = np.einsum("kt,kt->k", rates[:, du], pis[:, src[du]])
        else:
            flow_up = np.zeros(k)
        mu[reachable_down] = (
            flow_up[reachable_down] / p_down[reachable_down]
        )
    return lam, mu


# Public API ----------------------------------------------------------------


def batch_steady_state(
    model: ModelLike,
    values: Mapping[str, ColumnLike],
    n_samples: Optional[int] = None,
    method: str = "direct",
) -> np.ndarray:
    """Stationary distributions for a whole batch of parameter samples.

    Args:
        model: A :class:`MarkovModel` (compiled on the fly, with the
            compilation cached on the model) or a ready
            :class:`CompiledModel`.
        values: Parameter columns — scalars broadcast, arrays supply one
            value per sample.
        n_samples: Number of samples; inferred from the first array
            column when omitted.
        method: ``"direct"`` (stacked LU; raises on failure exactly like
            the scalar solver), ``"gth"`` (per-sample subtraction-free
            elimination), ``"auto"`` (stacked LU with per-sample GTH
            fallback, switching to the banded engine for medium/large
            banded models), ``"banded"`` (force the batched banded GTH;
            raises when the model has no banded-plus-spike structure) or
            ``"sparse"`` (force the pattern-reusing sparse LU).  Dense
            methods on models at or above SPARSE_THRESHOLD states are
            transparently redirected to a structured engine.

    Returns:
        ``(n_samples, n_states)`` array of stationary vectors in the
        compiled state order.
    """
    with obs.span(
        "ctmc.batch_solve", model=_model_name(model), method=method
    ) as span:
        compiled = compile_model(model)
        n_samples = _infer_samples(values, n_samples)
        engine = _resolve_engine(compiled, method)
        span.set(engine=engine, n_samples=n_samples)
        rates = compiled.rate_matrix(values, n_samples)
        if engine in ("banded", "sparse"):
            return _structured_steady_state(compiled, rates, engine)
        mats = compiled.generator_batch(rates, allow_dense=True)
        return _grouped_steady_state(compiled, rates, mats, engine)


@dataclass(frozen=True)
class BatchAvailability:
    """Struct-of-arrays availability report for a batch of samples.

    Each attribute is a ``(n_samples,)`` array mirroring one field of the
    scalar :class:`~repro.ctmc.rewards.AvailabilityResult`; ``pis`` keeps
    the full stationary vectors for per-state reporting.
    """

    state_names: Tuple[str, ...]
    up_mask: np.ndarray
    pis: np.ndarray
    availability: np.ndarray
    unavailability: np.ndarray
    yearly_downtime_minutes: np.ndarray
    failure_rate: np.ndarray
    recovery_rate: np.ndarray
    mtbf_hours: np.ndarray
    mttr_hours: np.ndarray

    @property
    def n_samples(self) -> int:
        return self.pis.shape[0]


def batch_availability(
    model: ModelLike,
    values: Mapping[str, ColumnLike],
    n_samples: Optional[int] = None,
    method: str = "direct",
    abstraction: str = "mttf",
) -> BatchAvailability:
    """Batched equivalent of :func:`repro.ctmc.rewards.steady_state_availability`.

    Solves every sample's stationary distribution with the stacked
    solver, then derives availability, the (Lambda, Mu) equivalent-rate
    abstraction (``"mttf"`` or ``"flow"`` semantics, matching the scalar
    path branch for branch), yearly downtime and MTBF/MTTR — all as
    arrays over the batch.
    """
    if abstraction not in ("mttf", "flow"):
        raise SolverError(
            f"unknown abstraction {abstraction!r}; expected 'mttf' or 'flow'"
        )
    with obs.span(
        "ctmc.batch_availability",
        model=_model_name(model),
        method=method,
        abstraction=abstraction,
    ) as span:
        compiled = compile_model(model)
        n_samples = _infer_samples(values, n_samples)
        engine = _resolve_engine(compiled, method)
        span.set(engine=engine, n_samples=n_samples)
        rates = compiled.rate_matrix(values, n_samples)
        if engine in ("banded", "sparse"):
            pis = _structured_steady_state(compiled, rates, engine)
            lam, mu = _structured_equivalent_rates(
                compiled, rates, pis, abstraction
            )
        else:
            mats = compiled.generator_batch(rates, allow_dense=True)
            pis = _grouped_steady_state(compiled, rates, mats, engine)
            lam, mu = _batch_equivalent_rates(
                compiled, rates, mats, pis, engine, abstraction
            )
    k = n_samples

    up = compiled.up_mask
    up_idx, down_idx = compiled.up_idx, compiled.down_idx
    # ascontiguousarray before reducing: mixed basic/advanced indexing
    # returns F-ordered copies whose strided row sums accumulate in a
    # different order than the scalar path's contiguous sums (ulp drift).
    p_up = np.ascontiguousarray(pis[:, up]).sum(axis=1)
    availability = np.minimum(1.0, np.maximum(0.0, p_up))
    if down_idx.size:
        unavailability = np.ascontiguousarray(pis[:, ~up]).sum(axis=1)
    else:
        unavailability = np.zeros(k)

    with np.errstate(divide="ignore"):
        mtbf = np.where(lam > 0.0, 1.0 / lam, np.inf)
        mttr = np.where(
            mu == np.inf, 0.0, np.where(mu == 0.0, np.inf, 1.0 / mu)
        )
    return BatchAvailability(
        state_names=compiled.state_names,
        up_mask=up.copy(),
        pis=pis,
        availability=availability,
        unavailability=unavailability,
        yearly_downtime_minutes=unavailability_to_yearly_downtime_minutes(
            unavailability
        ),
        failure_rate=lam,
        recovery_rate=mu,
        mtbf_hours=mtbf,
        mttr_hours=mttr,
    )


def _batch_equivalent_rates(
    compiled: CompiledModel,
    rates: np.ndarray,
    mats: np.ndarray,
    pis: np.ndarray,
    method: str,
    abstraction: str,
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized :func:`~repro.ctmc.rewards.equivalent_failure_recovery_rates`."""
    k = mats.shape[0]
    up = compiled.up_mask
    up_idx, down_idx = compiled.up_idx, compiled.down_idx
    if not up_idx.size:
        raise StructureError(
            f"model {compiled.model_name!r} has no up states"
        )
    if not down_idx.size:
        return np.zeros(k), np.full(k, np.inf)

    p_up = np.ascontiguousarray(pis[:, up]).sum(axis=1)
    p_down = np.ascontiguousarray(pis[:, ~up]).sum(axis=1)
    never_up = np.flatnonzero(p_up <= 0.0)
    if never_up.size:
        raise StructureError(
            f"model {compiled.model_name!r} is never up in steady state "
            f"(sample {int(never_up[0])})"
        )

    # flow_down[s] = pi_up . (row sums of the up->down block), exactly
    # the scalar path's contraction (per-sample BLAS dot for bit parity;
    # the rows must be contiguous — strided ddot sums in a different
    # order and drifts by an ulp).
    pis_up = np.ascontiguousarray(pis[:, up])
    w_down = np.ascontiguousarray(
        mats[:, up_idx[:, None], down_idx[None, :]]
    ).sum(axis=2)
    flow_down = np.empty(k)
    for s in range(k):
        flow_down[s] = np.dot(pis_up[s], w_down[s])

    if abstraction == "mttf":
        if not up[0]:
            raise StructureError(
                f"model {compiled.model_name!r} starts in a down state; "
                "the MTTF abstraction requires an up initial state"
            )
        lam = np.zeros(k)
        need = np.flatnonzero(flow_down > 0.0)
        if need.size:
            patterns = rates[need] > 0.0
            for s, pattern in zip(need, patterns):
                info = pattern_structure(compiled, pattern)
                if info.mtta_error is not None:
                    raise StructureError(
                        f"{info.mtta_error} (sample {int(s)})"
                    )
            mtta0, solved = _stacked_mtta_initial(mats[need], up_idx)
            fallback = flow_down[need] / p_up[need]
            lam[need] = np.where(solved, 1.0 / mtta0, fallback)
    else:
        lam = flow_down / p_up

    mu = np.full(k, np.inf)
    reachable_down = np.flatnonzero(p_down > 0.0)
    if reachable_down.size:
        pis_down = np.ascontiguousarray(pis[:, ~up])
        w_up = np.ascontiguousarray(
            mats[:, down_idx[:, None], up_idx[None, :]]
        ).sum(axis=2)
        for s in reachable_down:
            flow_up = np.dot(pis_down[s], w_up[s])
            mu[s] = flow_up / p_down[s]
    return lam, mu


def _stacked_mtta_initial(
    mats: np.ndarray, up_idx: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Mean time from the initial state into the down set, per sample.

    Solves the stacked ``Q_UU m = -1`` systems over the up (transient)
    block.  Returns ``(m0, solved)`` where ``solved`` is False for
    samples whose system was singular or produced invalid times — the
    caller falls back to the flow abstraction for those, mirroring the
    scalar path's ``SolverError`` handling.
    """
    k = mats.shape[0]
    blocks = mats[:, up_idx[:, None], up_idx[None, :]]
    u = up_idx.size
    rhs = -np.ones(u)
    solved = np.ones(k, dtype=bool)
    try:
        m = np.linalg.solve(blocks, rhs)
    except np.linalg.LinAlgError:
        m = np.zeros((k, u))
        for s in range(k):
            try:
                m[s] = np.linalg.solve(blocks[s], rhs)
            except np.linalg.LinAlgError:
                solved[s] = False
    m = np.asarray(m, dtype=float)
    valid = np.isfinite(m).all(axis=1) & (m.min(axis=1) >= 0.0)
    solved &= valid
    # The initial state (canonical index 0) is the first up state, so
    # its position inside the up block is 0.
    m0 = m[:, 0]
    m0 = np.where(solved, m0, 1.0)  # placeholder; caller masks with `solved`
    return m0, solved


def _model_name(model: ModelLike) -> str:
    name = getattr(model, "model_name", None)
    if name is None:
        name = getattr(model, "name", "?")
    return str(name)


def _infer_samples(
    values: Mapping[str, ColumnLike], n_samples: Optional[int]
) -> int:
    if n_samples is not None:
        return int(n_samples)
    for value in values.values():
        if isinstance(value, np.ndarray) and np.asarray(value).ndim == 1:
            return int(np.asarray(value).shape[0])
    raise SolverError(
        "cannot infer the sample count: no array-valued parameter column "
        "was supplied; pass n_samples explicitly"
    )
