"""First-passage-time distributions (phase-type analysis).

Availability work needs more than mean times: an SLA cares about the
*distribution* of an outage's duration ("what fraction of outages exceed
five minutes?") and of the time to first failure.  Both are first-passage
times of the CTMC, i.e. phase-type distributed: make the target states
absorbing and evaluate the absorption probability at time t.

``P(T <= t) = 1 - alpha e^{S t} 1`` where S is the transient-block
generator and alpha the initial distribution over transient states.
Evaluated by uniformization on the modified chain, so it inherits the
robustness of the transient engine.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence, Union

import numpy as np

from repro.core.model import MarkovModel
from repro.ctmc.generator import GeneratorMatrix, build_generator
from repro.ctmc.structure import reachable_from
from repro.ctmc.transient import _initial_vector, _uniformization
from repro.exceptions import SolverError, StructureError


def _absorbing_copy(
    generator: GeneratorMatrix, targets: Sequence[str]
) -> GeneratorMatrix:
    """The chain with all target states merged conceptually: their
    outgoing rates removed (made absorbing)."""
    q = generator.dense()
    for name in targets:
        index = generator.index_of(name)
        q[index, :] = 0.0
    return GeneratorMatrix(
        matrix=q,
        state_names=generator.state_names,
        rewards=generator.rewards,
        model_name=f"{generator.model_name}[absorbing]",
    )


def passage_time_cdf(
    model_or_generator: Union[MarkovModel, GeneratorMatrix],
    targets: Sequence[str],
    t: float,
    values: Optional[Mapping[str, float]] = None,
    initial: Union[str, Mapping[str, float], None] = None,
    tol: float = 1e-12,
) -> float:
    """``P(first hit of any target within time t)``.

    Args:
        model_or_generator: Model (with ``values``) or bound generator.
        targets: Target state names (non-empty).
        t: Time horizon (hours), >= 0.
        initial: Starting state/distribution over *non-target* states;
            defaults to the model's first state.
        tol: Uniformization tolerance.
    """
    if isinstance(model_or_generator, GeneratorMatrix):
        generator = model_or_generator
    else:
        if values is None:
            raise SolverError(
                "parameter values are required when passing a MarkovModel"
            )
        generator = build_generator(model_or_generator, values)
    target_set = set(targets)
    if not target_set:
        raise SolverError("at least one target state is required")
    unknown = target_set - set(generator.state_names)
    if unknown:
        raise SolverError(f"unknown target state(s) {sorted(unknown)}")
    if t < 0.0:
        raise SolverError(f"time must be non-negative, got {t}")

    p0 = _initial_vector(generator, initial)
    for name in target_set:
        if p0[generator.index_of(name)] > 0.0:
            raise SolverError(
                f"initial distribution puts mass on target state {name!r}"
            )
    # Guard: targets must be reachable, else the CDF is identically 0 and
    # the caller almost certainly made a modeling error.
    start_states = [
        generator.state_names[i] for i in np.nonzero(p0)[0]
    ]
    reachable = set(reachable_from(generator, start_states))
    if not (reachable & target_set):
        raise StructureError(
            f"no target state is reachable from {start_states}"
        )
    if t == 0.0:
        return 0.0
    absorbed = _absorbing_copy(generator, sorted(target_set))
    pt = _uniformization(absorbed, p0, t, tol)
    mass = sum(
        pt[generator.index_of(name)] for name in target_set
    )
    return float(min(1.0, max(0.0, mass)))


def passage_time_survival(
    model_or_generator: Union[MarkovModel, GeneratorMatrix],
    targets: Sequence[str],
    t: float,
    **kwargs,
) -> float:
    """``P(no target hit by time t)`` — reliability at mission time t."""
    return 1.0 - passage_time_cdf(model_or_generator, targets, t, **kwargs)


def passage_time_quantile(
    model_or_generator: Union[MarkovModel, GeneratorMatrix],
    targets: Sequence[str],
    q: float,
    values: Optional[Mapping[str, float]] = None,
    initial: Union[str, Mapping[str, float], None] = None,
    tol: float = 1e-9,
    max_doublings: int = 200,
) -> float:
    """The q-quantile of the first-passage time (bisection on the CDF).

    Useful for statements like "95% of outages end within X minutes".
    """
    if not 0.0 < q < 1.0:
        raise SolverError(f"quantile must be in (0, 1), got {q}")

    def cdf(t: float) -> float:
        return passage_time_cdf(
            model_or_generator, targets, t, values=values, initial=initial
        )

    # Bracket by doubling.
    high = 1e-3
    for _ in range(max_doublings):
        if cdf(high) >= q:
            break
        high *= 2.0
    else:
        raise SolverError(
            f"could not bracket the {q} quantile below t={high:.3e}; "
            "the passage may have substantial defect (unreachable mass)"
        )
    low = 0.0
    while high - low > tol * max(1.0, high):
        mid = 0.5 * (low + high)
        if cdf(mid) >= q:
            high = mid
        else:
            low = mid
    return 0.5 * (low + high)


def outage_duration_cdf(
    model_or_generator: Union[MarkovModel, GeneratorMatrix],
    t: float,
    values: Optional[Mapping[str, float]] = None,
    entry_state: Optional[str] = None,
) -> float:
    """``P(an outage lasts <= t)`` for an availability model.

    The outage starts when the chain enters a down state and ends on the
    first return to any up state: a first-passage time from the down set
    into the up set.

    Args:
        entry_state: The down state the outage starts in; defaults to
            the model's single down state and must be given explicitly
            when there are several.
    """
    if isinstance(model_or_generator, GeneratorMatrix):
        generator = model_or_generator
    else:
        if values is None:
            raise SolverError(
                "parameter values are required when passing a MarkovModel"
            )
        generator = build_generator(model_or_generator, values)
    up = generator.up_mask()
    down_states = [
        name for name, is_up in zip(generator.state_names, up) if not is_up
    ]
    up_states = [
        name for name, is_up in zip(generator.state_names, up) if is_up
    ]
    if not down_states:
        raise StructureError("the model has no down states")
    if entry_state is None:
        if len(down_states) > 1:
            raise SolverError(
                f"multiple down states {down_states}; pass entry_state"
            )
        entry_state = down_states[0]
    elif entry_state not in down_states:
        raise SolverError(f"{entry_state!r} is not a down state")
    return passage_time_cdf(
        generator, up_states, t, initial=entry_state
    )
