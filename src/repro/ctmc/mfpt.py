"""Mean first-passage times and visit statistics for ergodic chains.

Classical quantities from the fundamental matrix of an irreducible CTMC:

* the **mean first-passage time matrix** ``M[i, j]`` — expected time to
  first reach state j starting from state i (diagonal = 0);
* the **mean return time** of each state (``1 / (pi_j * q_j)`` in the
  embedded sense; here the continuous-time return time
  ``E[return to j | leave j]``);
* the **Kemeny constant** — the pi-weighted mean first-passage time
  ``sum_j pi_j M[i, j]``, famously independent of the starting state i
  (which the tests verify — a stringent end-to-end check of the solver
  stack).

These are reporting/diagnostic tools: e.g. "starting from a fresh
deployment, how long until the system first visits the degraded state?"
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Union

import numpy as np

from repro.core.model import MarkovModel
from repro.ctmc.absorption import mean_time_to_absorption
from repro.ctmc.generator import GeneratorMatrix, build_generator
from repro.ctmc.steady_state import steady_state_vector
from repro.ctmc.structure import classify_states
from repro.exceptions import SolverError, StructureError


def _as_generator(model_or_generator, values):
    if isinstance(model_or_generator, GeneratorMatrix):
        return model_or_generator
    if values is None:
        raise SolverError(
            "parameter values are required when passing a MarkovModel"
        )
    return build_generator(model_or_generator, values)


def _require_irreducible(generator: GeneratorMatrix) -> None:
    classification = classify_states(generator)
    if (
        not classification.has_single_recurrent_class
        or classification.transient_states
    ):
        raise StructureError(
            f"model {generator.model_name!r} is not irreducible; "
            "first-passage matrices need every state recurrent"
        )


def mean_first_passage_matrix(
    model_or_generator: Union[MarkovModel, GeneratorMatrix],
    values: Optional[Mapping[str, float]] = None,
) -> Dict[str, Dict[str, float]]:
    """``M[i][j]`` = expected time to first hit j from i (0 on diagonal).

    Computed column by column via the absorption solver (make j
    absorbing, solve the transient block) — O(n^4) overall, fine for
    availability-model sizes and numerically robust.
    """
    generator = _as_generator(model_or_generator, values)
    _require_irreducible(generator)
    names = generator.state_names
    matrix: Dict[str, Dict[str, float]] = {name: {} for name in names}
    for target in names:
        times = mean_time_to_absorption(generator, [target])
        for source in names:
            matrix[source][target] = (
                0.0 if source == target else times[source]
            )
    return matrix


def mean_return_times(
    model_or_generator: Union[MarkovModel, GeneratorMatrix],
    values: Optional[Mapping[str, float]] = None,
) -> Dict[str, float]:
    """Expected time between successive visits to each state.

    For a CTMC the mean return cycle of state j (from entering j, through
    its sojourn, until the next entry into j) is
    ``1 / (pi_j * q_j) * E[sojourn] + ...`` — most cleanly computed as
    ``sojourn_j + sum_k P_jump(j -> k) * M[k][j]``.
    """
    generator = _as_generator(model_or_generator, values)
    _require_irreducible(generator)
    names = generator.state_names
    q = generator.dense()
    exit_rates = generator.exit_rates()
    passage = mean_first_passage_matrix(generator)
    out: Dict[str, float] = {}
    for i, name in enumerate(names):
        rate = exit_rates[i]
        if rate <= 0.0:  # pragma: no cover - irreducible chains always exit
            raise StructureError(f"state {name!r} has no exits")
        sojourn = 1.0 / rate
        expected = sojourn
        for j, other in enumerate(names):
            if j == i:
                continue
            jump_probability = q[i, j] / rate
            if jump_probability > 0.0:
                expected += jump_probability * passage[other][name]
        out[name] = expected
    return out


def kemeny_constant(
    model_or_generator: Union[MarkovModel, GeneratorMatrix],
    values: Optional[Mapping[str, float]] = None,
) -> float:
    """The pi-weighted mean first-passage time (start-state independent).

    ``K = sum_j pi_j * M[i, j]`` for any i.  A single scalar measure of
    how quickly the chain mixes; the start-state independence is
    verified by the tests from two different starting states.
    """
    generator = _as_generator(model_or_generator, values)
    _require_irreducible(generator)
    pi = steady_state_vector(generator)
    passage = mean_first_passage_matrix(generator)
    names = generator.state_names
    source = names[0]
    return float(
        sum(
            pi[j] * passage[source][target]
            for j, target in enumerate(names)
        )
    )


def expected_visits(
    model_or_generator: Union[MarkovModel, GeneratorMatrix],
    horizon: float,
    values: Optional[Mapping[str, float]] = None,
) -> Dict[str, float]:
    """Long-run expected number of *entries* into each state over a horizon.

    Steady-state entry frequency of j is ``sum_{i != j} pi_i q_ij``;
    multiplied by the horizon this estimates visit counts for long
    windows (e.g. "how many restarts per year does the model predict" —
    a number the testbed's logs can be compared against).
    """
    generator = _as_generator(model_or_generator, values)
    _require_irreducible(generator)
    if horizon <= 0.0:
        raise SolverError(f"horizon must be positive, got {horizon}")
    pi = steady_state_vector(generator)
    q = generator.dense()
    names = generator.state_names
    out: Dict[str, float] = {}
    for j, name in enumerate(names):
        inflow = float(
            sum(pi[i] * q[i, j] for i in range(len(names)) if i != j)
        )
        out[name] = inflow * horizon
    return out
