"""Markov reward measures: availability, downtime, MTBF, equivalent rates.

This module turns a stationary distribution into the metrics the paper
reports (availability, yearly downtime, MTBF) and into the (Lambda, Mu)
pair that the hierarchical composition consumes.

Equivalent-rate abstraction (RAScad's submodel interface).  Two variants
of the equivalent failure rate Lambda are supported:

* ``"mttf"`` (default, the semantics RAScad uses — reverse-engineered
  from the paper's published MTBF figures): ``Lambda = 1 / MTTF`` where
  MTTF is the mean first-passage time from the model's initial state
  (its first state, conventionally the all-up state) into the down set.
* ``"flow"``: the steady-state rate of entering the down set conditioned
  on being up::

      Lambda = (sum_{i in U} sum_{j in D} pi_i * q_ij) / (sum_{i in U} pi_i)

The equivalent recovery rate Mu is the same under both variants — the
reciprocal of the mean duration of a down period::

      Mu = (sum_{j in D} sum_{i in U} pi_j * q_ji) / (sum_{j in D} pi_j)

(by flow balance this equals ``flow_into_down / P(down)``, i.e. the
renewal-reward mean down time per visit, which is also what a
first-passage computation weighted by the down-entry distribution gives).

With the ``"flow"`` variant the identity ``A = Mu / (Lambda + Mu)`` holds
exactly; with ``"mttf"`` it is the standard hierarchical approximation,
accurate to O(unavailability) for highly available systems — the paper's
Table 2/3 values are reproduced with ``"mttf"``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple, Union

import numpy as np

from repro.core.model import MarkovModel
from repro.ctmc.generator import GeneratorMatrix, build_generator
from repro.ctmc.steady_state import steady_state_vector
from repro.exceptions import SolverError, StructureError
from repro.units import unavailability_to_yearly_downtime_minutes


def _as_generator(model_or_generator, values):
    if isinstance(model_or_generator, GeneratorMatrix):
        return model_or_generator
    if values is None:
        raise SolverError("parameter values are required when passing a MarkovModel")
    return build_generator(model_or_generator, values)


@dataclass(frozen=True)
class AvailabilityResult:
    """Steady-state availability metrics for one model.

    Attributes:
        availability: Steady-state probability of being in an up state.
        yearly_downtime_minutes: ``(1 - availability) * minutes_per_year``.
        mtbf_hours: Mean up time between entries into the down set
            (``1 / Lambda``); ``inf`` when the down set is unreachable.
        mttr_hours: Mean duration of a down period (``1 / Mu``).
        failure_rate: Equivalent failure rate Lambda (per hour).
        recovery_rate: Equivalent recovery rate Mu (per hour).
        state_probabilities: Full stationary distribution.
        downtime_by_state: Yearly downtime minutes attributed to each
            down state (sums to ``yearly_downtime_minutes``).
    """

    availability: float
    yearly_downtime_minutes: float
    mtbf_hours: float
    mttr_hours: float
    failure_rate: float
    recovery_rate: float
    state_probabilities: Dict[str, float]
    downtime_by_state: Dict[str, float]

    @property
    def unavailability(self) -> float:
        return 1.0 - self.availability

    def summary(self) -> str:
        """One-paragraph human-readable summary."""
        return (
            f"availability={self.availability:.7%}  "
            f"yearly downtime={self.yearly_downtime_minutes:.3g} min  "
            f"MTBF={self.mtbf_hours:,.0f} h  MTTR={self.mttr_hours:.3g} h"
        )


def expected_steady_state_reward(
    model_or_generator: Union[MarkovModel, GeneratorMatrix],
    values: Optional[Mapping[str, float]] = None,
    method: str = "direct",
) -> float:
    """Expected reward rate under the stationary distribution.

    For availability models (rewards in {0, 1}) this *is* the steady-state
    availability; for performability models it is the long-run average
    reward rate.
    """
    generator = _as_generator(model_or_generator, values)
    pi = steady_state_vector(generator, method=method)
    return float(np.dot(pi, generator.rewards))


def equivalent_failure_recovery_rates(
    model_or_generator: Union[MarkovModel, GeneratorMatrix],
    values: Optional[Mapping[str, float]] = None,
    pi: Optional[np.ndarray] = None,
    method: str = "direct",
    abstraction: str = "mttf",
) -> Tuple[float, float]:
    """The (Lambda, Mu) abstraction of a submodel (see module docstring).

    Args:
        abstraction: ``"mttf"`` (RAScad semantics, default) or ``"flow"``.

    Returns:
        ``(Lambda, Mu)`` in per-hour units.  If the model has no down
        states, returns ``(0.0, inf)``.

    Raises:
        StructureError: If the stationary probability of the up set is
            zero (the model is never up — Lambda is undefined).
    """
    if abstraction not in ("mttf", "flow"):
        raise SolverError(
            f"unknown abstraction {abstraction!r}; expected 'mttf' or 'flow'"
        )
    generator = _as_generator(model_or_generator, values)
    if pi is None:
        pi = steady_state_vector(generator, method=method)
    up = generator.up_mask()
    if not up.any():
        raise StructureError(
            f"model {generator.model_name!r} has no up states"
        )
    if up.all():
        return 0.0, float("inf")
    q = generator.dense()
    p_up = float(pi[up].sum())
    p_down = float(pi[~up].sum())
    if p_up <= 0.0:
        raise StructureError(
            f"model {generator.model_name!r} is never up in steady state"
        )
    flow_down = float(pi[up] @ q[np.ix_(up, ~up)].sum(axis=1))
    if abstraction == "mttf":
        # Deferred import: absorption depends on generator/structure only.
        from repro.ctmc.absorption import mean_time_to_absorption

        down_names = [
            name
            for name, is_up in zip(generator.state_names, up)
            if not is_up
        ]
        initial = generator.state_names[0]
        if initial in down_names:
            raise StructureError(
                f"model {generator.model_name!r} starts in a down state; "
                "the MTTF abstraction requires an up initial state"
            )
        if flow_down <= 0.0:
            lam = 0.0
        else:
            try:
                mttf = mean_time_to_absorption(generator, down_names)[initial]
                lam = 1.0 / mttf
            except SolverError:
                # Hitting times beyond ~1e16 hours overwhelm float64; in
                # that regime the flow abstraction coincides with 1/MTTF
                # to O(unavailability), so fall back to it.
                lam = flow_down / p_up
    else:
        lam = flow_down / p_up
    if p_down <= 0.0:
        # Down states exist but are unreachable for this parameterization.
        return lam, float("inf")
    flow_up = float(pi[~up] @ q[np.ix_(~up, up)].sum(axis=1))
    mu = flow_up / p_down
    return lam, mu


def steady_state_availability(
    model_or_generator: Union[MarkovModel, GeneratorMatrix],
    values: Optional[Mapping[str, float]] = None,
    method: str = "direct",
    abstraction: str = "mttf",
) -> AvailabilityResult:
    """Full steady-state availability report for one model.

    This is the workhorse used by every benchmark: it solves the chain
    once and derives availability, yearly downtime (with per-down-state
    attribution), MTBF and MTTR.

    Note on availability vs. reward: the *availability* reported here
    counts a state as up iff its reward is strictly positive; fractional
    rewards only affect :func:`expected_steady_state_reward`.
    """
    generator = _as_generator(model_or_generator, values)
    pi = steady_state_vector(generator, method=method)
    up = generator.up_mask()
    availability = float(pi[up].sum())
    unavailability = float(pi[~up].sum()) if (~up).any() else 0.0
    # Guard against tiny negative round-off.
    availability = min(1.0, max(0.0, availability))
    lam, mu = equivalent_failure_recovery_rates(
        generator, pi=pi, abstraction=abstraction
    )
    downtime_total = unavailability_to_yearly_downtime_minutes(unavailability)
    downtime_by_state = {
        name: unavailability_to_yearly_downtime_minutes(float(pi[i]))
        for i, name in enumerate(generator.state_names)
        if not up[i]
    }
    return AvailabilityResult(
        availability=availability,
        yearly_downtime_minutes=downtime_total,
        mtbf_hours=(1.0 / lam) if lam > 0.0 else float("inf"),
        mttr_hours=(1.0 / mu) if mu not in (0.0, float("inf")) else (
            0.0 if mu == float("inf") else float("inf")
        ),
        failure_rate=lam,
        recovery_rate=mu,
        state_probabilities=dict(zip(generator.state_names, pi.tolist())),
        downtime_by_state=downtime_by_state,
    )
