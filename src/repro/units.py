"""Time-unit conventions and conversions.

The library follows the paper's convention: **all rates are per hour and
all mean times are in hours** (the parameter boxes in the paper's Figs. 3
and 4 express rates like ``La_hadb = 2/8760``, i.e. two failures per year
converted to a per-hour rate).

Two "hours per year" constants appear in the dependability literature:

* ``HOURS_PER_YEAR = 8760`` (365 days) — used by the paper to convert
  per-year failure rates to per-hour rates.
* ``MINUTES_PER_YEAR = 525_960`` (365.25 days) — the constant consistent
  with the paper's downtime figures (e.g. Config 1's 3.49 min/yr arises
  from an unavailability of 6.63e-6 times 525,960 min).

Keeping both explicit lets us reproduce the printed numbers exactly while
making the convention auditable.
"""

from __future__ import annotations

#: Hours in a (365-day) year; used for converting per-year rates.
HOURS_PER_YEAR = 8760.0

#: Minutes in a Julian (365.25-day) year; used for yearly-downtime reports.
MINUTES_PER_YEAR = 525_960.0

#: Seconds in a Julian year.
SECONDS_PER_YEAR = MINUTES_PER_YEAR * 60.0

#: Minutes in an hour / seconds in an hour, for readability at call sites.
MINUTES_PER_HOUR = 60.0
SECONDS_PER_HOUR = 3600.0


def per_year(events: float) -> float:
    """Convert an event rate expressed per year into a per-hour rate.

    >>> per_year(2)  # the paper's La_hadb
    0.00022831050228310502
    """
    return events / HOURS_PER_YEAR


def per_day(events: float) -> float:
    """Convert an event rate expressed per day into a per-hour rate."""
    return events / 24.0


def minutes(value: float) -> float:
    """Express a duration given in minutes as hours.

    >>> minutes(90) == 1.5
    True
    """
    return value / MINUTES_PER_HOUR


def seconds(value: float) -> float:
    """Express a duration given in seconds as hours."""
    return value / SECONDS_PER_HOUR


def hours(value: float) -> float:
    """Identity helper so parameter tables read uniformly."""
    return float(value)


def days(value: float) -> float:
    """Express a duration given in days as hours."""
    return value * 24.0


def unavailability_to_yearly_downtime_minutes(unavailability: float) -> float:
    """Convert a steady-state unavailability to minutes of downtime per year.

    Uses the Julian-year constant, which is the one consistent with the
    paper's Table 2/3 figures.

    >>> round(unavailability_to_yearly_downtime_minutes(6.635e-06), 2)
    3.49
    """
    return unavailability * MINUTES_PER_YEAR


def yearly_downtime_minutes_to_unavailability(downtime_minutes: float) -> float:
    """Inverse of :func:`unavailability_to_yearly_downtime_minutes`."""
    return downtime_minutes / MINUTES_PER_YEAR


def availability_to_nines(availability: float) -> float:
    """Express availability as a (fractional) "number of nines".

    ``0.999`` -> 3.0; ``0.9999933`` -> about 5.17.  Returns ``inf`` for a
    perfect availability of 1.0.
    """
    import math

    if not 0.0 <= availability <= 1.0:
        raise ValueError(f"availability must be in [0, 1], got {availability}")
    if availability == 1.0:
        return math.inf
    return -math.log10(1.0 - availability)


def nines_to_availability(nines: float) -> float:
    """Inverse of :func:`availability_to_nines`.

    >>> nines_to_availability(5)
    0.99999
    """
    return 1.0 - 10.0 ** (-nines)
