"""Two-level hierarchical model: submodels feeding a top-level model.

The composer solves each submodel for its (Lambda, Mu) interface, binds
those values into the top model's parameters, solves the top model, and
assembles a :class:`HierarchicalResult` that also *attributes* the
system's yearly downtime to each submodel — the decomposition reported in
the paper's Table 2 ("YD due to AS Submodel" / "YD due to HADB
Submodel").

Attribution convention: each down state of the top model is associated
with the submodel whose binding feeds the transition *into* that state.
For the paper's Fig. 2 this is exact: ``AS_Fail`` is entered only via
``La_appl`` (the AS submodel) and ``HADB_Fail`` only via
``N_pair * La_hadb`` (the HADB submodel).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from repro.core.model import MarkovModel
from repro.core.parameters import ParameterSet
from repro.ctmc.rewards import AvailabilityResult, steady_state_availability
from repro.exceptions import ModelError
from repro.hierarchy.binding import RateBinding, resolve_bindings
from repro.hierarchy.interface import SubmodelInterface, abstract_submodel


@dataclass(frozen=True)
class SubmodelReport:
    """A solved submodel plus the share of system downtime it explains."""

    interface: SubmodelInterface
    downtime_minutes: float
    downtime_fraction: float


@dataclass(frozen=True)
class HierarchicalResult:
    """Complete result of a hierarchical solve.

    Attributes:
        system: Availability metrics of the top-level model.
        submodels: Per-submodel report including downtime attribution.
        bound_parameters: The parameter values injected into the top model.
    """

    system: AvailabilityResult
    submodels: Dict[str, SubmodelReport]
    bound_parameters: Dict[str, float]

    @property
    def availability(self) -> float:
        return self.system.availability

    @property
    def yearly_downtime_minutes(self) -> float:
        return self.system.yearly_downtime_minutes

    @property
    def mtbf_hours(self) -> float:
        return self.system.mtbf_hours

    def summary(self) -> str:
        lines = [f"system: {self.system.summary()}"]
        for name, report in self.submodels.items():
            lines.append(
                f"  {name}: downtime {report.downtime_minutes:.3g} min/yr "
                f"({report.downtime_fraction:.1%}), "
                f"Lambda={report.interface.failure_rate:.3e}/h, "
                f"Mu={report.interface.recovery_rate:.3e}/h"
            )
        return "\n".join(lines)


class HierarchicalModel:
    """A top-level Markov model whose rates come from solved submodels.

    Example (the paper's Fig. 2 wiring)::

        top = MarkovModel("JSAS")
        top.add_state("Ok", reward=1)
        top.add_state("AS_Fail", reward=0)
        top.add_state("HADB_Fail", reward=0)
        top.add_transition("Ok", "AS_Fail", "La_appl")
        top.add_transition("AS_Fail", "Ok", "Mu_appl")
        top.add_transition("Ok", "HADB_Fail", "N_pair * La_hadb")
        top.add_transition("HADB_Fail", "Ok", "Mu_hadb")

        hm = HierarchicalModel(top)
        hm.add_submodel(appserver_model, attribute_states=["AS_Fail"])
        hm.add_submodel(hadb_pair_model, attribute_states=["HADB_Fail"])
        hm.bind("La_appl", appserver_model.name, "failure_rate")
        hm.bind("Mu_appl", appserver_model.name, "recovery_rate")
        hm.bind("La_hadb", hadb_pair_model.name, "failure_rate")
        hm.bind("Mu_hadb", hadb_pair_model.name, "recovery_rate")
        result = hm.solve(parameters)
    """

    def __init__(self, top: MarkovModel) -> None:
        self.top = top
        self._submodels: Dict[str, MarkovModel] = {}
        self._attributions: Dict[str, Tuple[str, ...]] = {}
        self._bindings: Dict[str, RateBinding] = {}

    def add_submodel(
        self,
        model: MarkovModel,
        attribute_states: Tuple[str, ...] = (),
        name: Optional[str] = None,
    ) -> None:
        """Register a submodel.

        Args:
            model: The submodel.
            attribute_states: Down states of the *top* model whose
                stationary probability should be attributed to this
                submodel in the downtime decomposition.
            name: Override the registration name (defaults to model.name).
        """
        key = name or model.name
        if key in self._submodels:
            raise ModelError(f"duplicate submodel {key!r}")
        for state in attribute_states:
            self.top.state(state)  # validates existence
            if self.top.state(state).is_up:
                raise ModelError(
                    f"attribution state {state!r} is an up state of the "
                    "top model; downtime attribution only covers down states"
                )
        self._submodels[key] = model
        self._attributions[key] = tuple(attribute_states)

    def bind(
        self,
        parameter: str,
        submodel: str,
        output: str = "failure_rate",
        scale: float = 1.0,
    ) -> None:
        """Bind a top-model parameter to a submodel output."""
        if parameter in self._bindings:
            raise ModelError(f"parameter {parameter!r} is already bound")
        if submodel not in self._submodels:
            raise ModelError(
                f"unknown submodel {submodel!r}; add_submodel first"
            )
        self._bindings[parameter] = RateBinding(
            parameter=parameter, submodel=submodel, output=output, scale=scale
        )

    @property
    def submodel_names(self) -> Tuple[str, ...]:
        return tuple(self._submodels)

    def solve(
        self,
        values: Mapping[str, float],
        method: str = "direct",
        abstraction: str = "mttf",
    ) -> HierarchicalResult:
        """Solve submodels, bind, solve the top model, attribute downtime.

        ``values`` must cover every free parameter of every submodel and
        every top-model parameter that is not produced by a binding.
        ``values`` may be a plain dict or a
        :class:`~repro.core.parameters.ParameterSet`.

        Args:
            abstraction: Equivalent-rate semantics for the submodels,
                ``"mttf"`` (RAScad, default) or ``"flow"`` (exact
                steady-state flow).  See
                :func:`repro.ctmc.rewards.equivalent_failure_recovery_rates`.
        """
        interfaces: Dict[str, SubmodelInterface] = {}
        for key, model in self._submodels.items():
            interfaces[key] = abstract_submodel(
                model, values, method=method, name=key, abstraction=abstraction
            )
        bound = resolve_bindings(self._bindings, interfaces)
        top_values = dict(values)
        overlap = set(bound) & set(top_values)
        if overlap:
            raise ModelError(
                f"bound parameter(s) {sorted(overlap)} also appear in the "
                "supplied values; remove them from one side to avoid "
                "ambiguity"
            )
        top_values.update(bound)
        system = steady_state_availability(
            self.top, top_values, method=method, abstraction=abstraction
        )

        reports: Dict[str, SubmodelReport] = {}
        total_downtime = system.yearly_downtime_minutes
        for key in self._submodels:
            minutes = sum(
                system.downtime_by_state.get(state, 0.0)
                for state in self._attributions[key]
            )
            fraction = minutes / total_downtime if total_downtime > 0 else 0.0
            reports[key] = SubmodelReport(
                interface=interfaces[key],
                downtime_minutes=minutes,
                downtime_fraction=fraction,
            )
        return HierarchicalResult(
            system=system, submodels=reports, bound_parameters=bound
        )

    def interval_availability(
        self,
        values: Mapping[str, float],
        t: float,
        method: str = "direct",
        abstraction: str = "mttf",
    ) -> float:
        """Expected interval availability of the composed system over [0, t].

        The hierarchical analogue of the steady-state solve (and the
        capability the authors' companion DSN-2004 paper adds to
        RAScad): solve each submodel for its (Lambda, Mu) interface,
        bind, then evaluate the *top* model's interval availability
        transiently from its initial state.

        For t -> infinity this converges to the steady-state
        availability (tested); for short horizons it reflects the
        deployment starting healthy.
        """
        from repro.ctmc.transient import interval_availability

        interfaces: Dict[str, SubmodelInterface] = {}
        for key, model in self._submodels.items():
            interfaces[key] = abstract_submodel(
                model, values, method=method, name=key, abstraction=abstraction
            )
        bound = resolve_bindings(self._bindings, interfaces)
        top_values = dict(values)
        top_values.update(bound)
        return interval_availability(self.top, t, top_values)
