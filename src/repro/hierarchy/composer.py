"""Two-level hierarchical model: submodels feeding a top-level model.

The composer solves each submodel for its (Lambda, Mu) interface, binds
those values into the top model's parameters, solves the top model, and
assembles a :class:`HierarchicalResult` that also *attributes* the
system's yearly downtime to each submodel — the decomposition reported in
the paper's Table 2 ("YD due to AS Submodel" / "YD due to HADB
Submodel").

Attribution convention: each down state of the top model is associated
with the submodel whose binding feeds the transition *into* that state.
For the paper's Fig. 2 this is exact: ``AS_Fail`` is entered only via
``La_appl`` (the AS submodel) and ``HADB_Fail`` only via
``N_pair * La_hadb`` (the HADB submodel).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.core.compiled import ColumnLike, CompiledModel, compile_model
from repro.core.model import MarkovModel
from repro.core.parameters import ParameterSet
from repro.ctmc.batch import BatchAvailability, batch_availability
from repro.ctmc.rewards import AvailabilityResult, steady_state_availability
from repro.exceptions import ModelError
from repro.hierarchy.binding import RateBinding, resolve_bindings
from repro.hierarchy.interface import SubmodelInterface, abstract_submodel
from repro.units import unavailability_to_yearly_downtime_minutes


@dataclass(frozen=True)
class SubmodelReport:
    """A solved submodel plus the share of system downtime it explains."""

    interface: SubmodelInterface
    downtime_minutes: float
    downtime_fraction: float


@dataclass(frozen=True)
class HierarchicalResult:
    """Complete result of a hierarchical solve.

    Attributes:
        system: Availability metrics of the top-level model.
        submodels: Per-submodel report including downtime attribution.
        bound_parameters: The parameter values injected into the top model.
    """

    system: AvailabilityResult
    submodels: Dict[str, SubmodelReport]
    bound_parameters: Dict[str, float]

    @property
    def availability(self) -> float:
        return self.system.availability

    @property
    def yearly_downtime_minutes(self) -> float:
        return self.system.yearly_downtime_minutes

    @property
    def mtbf_hours(self) -> float:
        return self.system.mtbf_hours

    def summary(self) -> str:
        lines = [f"system: {self.system.summary()}"]
        for name, report in self.submodels.items():
            lines.append(
                f"  {name}: downtime {report.downtime_minutes:.3g} min/yr "
                f"({report.downtime_fraction:.1%}), "
                f"Lambda={report.interface.failure_rate:.3e}/h, "
                f"Mu={report.interface.recovery_rate:.3e}/h"
            )
        return "\n".join(lines)


class HierarchicalModel:
    """A top-level Markov model whose rates come from solved submodels.

    Example (the paper's Fig. 2 wiring)::

        top = MarkovModel("JSAS")
        top.add_state("Ok", reward=1)
        top.add_state("AS_Fail", reward=0)
        top.add_state("HADB_Fail", reward=0)
        top.add_transition("Ok", "AS_Fail", "La_appl")
        top.add_transition("AS_Fail", "Ok", "Mu_appl")
        top.add_transition("Ok", "HADB_Fail", "N_pair * La_hadb")
        top.add_transition("HADB_Fail", "Ok", "Mu_hadb")

        hm = HierarchicalModel(top)
        hm.add_submodel(appserver_model, attribute_states=["AS_Fail"])
        hm.add_submodel(hadb_pair_model, attribute_states=["HADB_Fail"])
        hm.bind("La_appl", appserver_model.name, "failure_rate")
        hm.bind("Mu_appl", appserver_model.name, "recovery_rate")
        hm.bind("La_hadb", hadb_pair_model.name, "failure_rate")
        hm.bind("Mu_hadb", hadb_pair_model.name, "recovery_rate")
        result = hm.solve(parameters)
    """

    def __init__(self, top: MarkovModel) -> None:
        self.top = top
        self._submodels: Dict[str, MarkovModel] = {}
        self._attributions: Dict[str, Tuple[str, ...]] = {}
        self._bindings: Dict[str, RateBinding] = {}
        self._compiled: Optional["CompiledHierarchy"] = None

    def add_submodel(
        self,
        model: MarkovModel,
        attribute_states: Tuple[str, ...] = (),
        name: Optional[str] = None,
    ) -> None:
        """Register a submodel.

        Args:
            model: The submodel.
            attribute_states: Down states of the *top* model whose
                stationary probability should be attributed to this
                submodel in the downtime decomposition.
            name: Override the registration name (defaults to model.name).
        """
        key = name or model.name
        if key in self._submodels:
            raise ModelError(f"duplicate submodel {key!r}")
        for state in attribute_states:
            self.top.state(state)  # validates existence
            if self.top.state(state).is_up:
                raise ModelError(
                    f"attribution state {state!r} is an up state of the "
                    "top model; downtime attribution only covers down states"
                )
        self._submodels[key] = model
        self._attributions[key] = tuple(attribute_states)
        self._compiled = None

    def bind(
        self,
        parameter: str,
        submodel: str,
        output: str = "failure_rate",
        scale: float = 1.0,
    ) -> None:
        """Bind a top-model parameter to a submodel output."""
        if parameter in self._bindings:
            raise ModelError(f"parameter {parameter!r} is already bound")
        if submodel not in self._submodels:
            raise ModelError(
                f"unknown submodel {submodel!r}; add_submodel first"
            )
        self._bindings[parameter] = RateBinding(
            parameter=parameter, submodel=submodel, output=output, scale=scale
        )
        self._compiled = None

    @property
    def submodel_names(self) -> Tuple[str, ...]:
        return tuple(self._submodels)

    def submodel(self, name: str) -> MarkovModel:
        """The registered submodel called ``name``."""
        try:
            return self._submodels[name]
        except KeyError:
            raise ModelError(f"unknown submodel {name!r}") from None

    @property
    def bindings(self) -> Tuple[RateBinding, ...]:
        """The rate bindings, in registration order."""
        return tuple(self._bindings.values())

    @property
    def attributions(self) -> Dict[str, Tuple[str, ...]]:
        """Downtime-attribution states per submodel (copy)."""
        return dict(self._attributions)

    def solve(
        self,
        values: Mapping[str, float],
        method: str = "auto",
        abstraction: str = "mttf",
    ) -> HierarchicalResult:
        """Solve submodels, bind, solve the top model, attribute downtime.

        ``values`` must cover every free parameter of every submodel and
        every top-model parameter that is not produced by a binding.
        ``values`` may be a plain dict or a
        :class:`~repro.core.parameters.ParameterSet`.

        Args:
            method: Steady-state method for every constituent solve.  The
                default ``"auto"`` behaves exactly like ``"direct"`` on
                small submodels and switches to the structured banded
                solver when a large submodel (a generalized N-instance AS
                chain, say) exposes the banded-plus-spike topology.
            abstraction: Equivalent-rate semantics for the submodels,
                ``"mttf"`` (RAScad, default) or ``"flow"`` (exact
                steady-state flow).  See
                :func:`repro.ctmc.rewards.equivalent_failure_recovery_rates`.
        """
        with obs.span(
            "hierarchy.solve", model=self.top.name, method=method
        ):
            interfaces: Dict[str, SubmodelInterface] = {}
            for key, model in self._submodels.items():
                with obs.span("hierarchy.submodel", submodel=key):
                    interfaces[key] = abstract_submodel(
                        model,
                        values,
                        method=method,
                        name=key,
                        abstraction=abstraction,
                    )
            bound = resolve_bindings(self._bindings, interfaces)
            top_values = dict(values)
            overlap = set(bound) & set(top_values)
            if overlap:
                raise ModelError(
                    f"bound parameter(s) {sorted(overlap)} also appear in "
                    "the supplied values; remove them from one side to "
                    "avoid ambiguity"
                )
            top_values.update(bound)
            with obs.span("hierarchy.top", model=self.top.name):
                system = steady_state_availability(
                    self.top,
                    top_values,
                    method=method,
                    abstraction=abstraction,
                )

        reports: Dict[str, SubmodelReport] = {}
        total_downtime = system.yearly_downtime_minutes
        for key in self._submodels:
            minutes = sum(
                system.downtime_by_state.get(state, 0.0)
                for state in self._attributions[key]
            )
            fraction = minutes / total_downtime if total_downtime > 0 else 0.0
            reports[key] = SubmodelReport(
                interface=interfaces[key],
                downtime_minutes=minutes,
                downtime_fraction=fraction,
            )
        return HierarchicalResult(
            system=system, submodels=reports, bound_parameters=bound
        )

    def compile(self) -> "CompiledHierarchy":
        """Compile-once form for repeated solves (see :meth:`solve_batch`).

        The compilation is cached and invalidated when submodels or
        bindings are added, or when any constituent model is mutated.
        """
        cached = self._compiled
        if cached is not None and cached.is_current():
            return cached
        compiled = CompiledHierarchy(self)
        self._compiled = compiled
        return compiled

    def solve_batch(
        self,
        values: Mapping[str, ColumnLike],
        n_samples: Optional[int] = None,
        method: str = "auto",
        abstraction: str = "mttf",
    ) -> "BatchHierarchicalSolution":
        """Solve the hierarchy for a whole batch of parameter samples.

        ``values`` maps parameter names to scalars (shared by all
        samples) or ``(n_samples,)`` arrays.  Equivalent to calling
        :meth:`solve` once per sample, but compiled once and solved with
        stacked linear algebra — see ``docs/performance_guide.md``.  The
        default ``method="auto"`` routes large structured submodels
        through the banded/sparse engines (see
        :data:`repro.ctmc.batch.BATCH_METHODS`).
        """
        return self.compile().solve_batch(
            values, n_samples=n_samples, method=method, abstraction=abstraction
        )

    def interval_availability(
        self,
        values: Mapping[str, float],
        t: float,
        method: str = "auto",
        abstraction: str = "mttf",
    ) -> float:
        """Expected interval availability of the composed system over [0, t].

        The hierarchical analogue of the steady-state solve (and the
        capability the authors' companion DSN-2004 paper adds to
        RAScad): solve each submodel for its (Lambda, Mu) interface,
        bind, then evaluate the *top* model's interval availability
        transiently from its initial state.

        For t -> infinity this converges to the steady-state
        availability (tested); for short horizons it reflects the
        deployment starting healthy.
        """
        from repro.ctmc.transient import interval_availability

        interfaces: Dict[str, SubmodelInterface] = {}
        for key, model in self._submodels.items():
            interfaces[key] = abstract_submodel(
                model, values, method=method, name=key, abstraction=abstraction
            )
        bound = resolve_bindings(self._bindings, interfaces)
        top_values = dict(values)
        top_values.update(bound)
        return interval_availability(self.top, t, top_values)


class CompiledHierarchy:
    """Compile-once / evaluate-many form of a :class:`HierarchicalModel`.

    Every submodel and the top model are compiled (validated, frozen,
    rates vectorized) exactly once; :meth:`solve_batch` then maps a whole
    matrix of parameter samples through submodel abstraction, binding
    resolution and the top-model solve using stacked linear algebra.

    For ``method="direct"`` on arithmetic-only rate expressions the
    per-sample results are bit-identical to :meth:`HierarchicalModel.solve`
    (enforced by ``tests/hierarchy/test_compiled.py``).
    """

    def __init__(self, hierarchy: HierarchicalModel) -> None:
        self.hierarchy = hierarchy
        self.top: CompiledModel = compile_model(hierarchy.top)
        self.submodels: Dict[str, CompiledModel] = {
            key: compile_model(model)
            for key, model in hierarchy._submodels.items()
        }
        self._bindings: Dict[str, RateBinding] = dict(hierarchy._bindings)
        self._attributions: Dict[str, Tuple[str, ...]] = dict(
            hierarchy._attributions
        )
        self._signature = self._current_signature(hierarchy)

    @staticmethod
    def _current_signature(hierarchy: HierarchicalModel):
        return (
            hierarchy.top.version,
            tuple(
                (key, model.version)
                for key, model in hierarchy._submodels.items()
            ),
            tuple(sorted(hierarchy._bindings)),
        )

    def is_current(self) -> bool:
        """True while the source hierarchy has not been mutated."""
        return self._signature == self._current_signature(self.hierarchy)

    def solve_batch(
        self,
        values: Mapping[str, ColumnLike],
        n_samples: Optional[int] = None,
        method: str = "auto",
        abstraction: str = "mttf",
    ) -> "BatchHierarchicalSolution":
        """Solve submodels, bind, and solve the top model for all samples."""
        if n_samples is None:
            n_samples = _infer_batch_size(values)
        with obs.span(
            "hierarchy.solve_batch",
            model=self.top.model_name,
            method=method,
            n_samples=n_samples,
        ):
            interfaces: Dict[str, BatchAvailability] = {}
            for key, compiled in self.submodels.items():
                with obs.span("hierarchy.submodel", submodel=key):
                    interfaces[key] = batch_availability(
                        compiled,
                        values,
                        n_samples=n_samples,
                        method=method,
                        abstraction=abstraction,
                    )
            bound: Dict[str, np.ndarray] = {}
            for parameter, binding in self._bindings.items():
                interface = interfaces[binding.submodel]
                if binding.output == "failure_rate":
                    output = interface.failure_rate
                elif binding.output == "recovery_rate":
                    output = interface.recovery_rate
                elif binding.output == "availability":
                    output = interface.availability
                else:
                    output = 1.0 - interface.availability
                bound[parameter] = output * binding.scale
            overlap = set(bound) & set(values.keys())
            if overlap:
                raise ModelError(
                    f"bound parameter(s) {sorted(overlap)} also appear in "
                    "the supplied values; remove them from one side to "
                    "avoid ambiguity"
                )
            top_values: Dict[str, ColumnLike] = dict(values)
            top_values.update(bound)
            with obs.span("hierarchy.top", model=self.top.model_name):
                system = batch_availability(
                    self.top,
                    top_values,
                    n_samples=n_samples,
                    method=method,
                    abstraction=abstraction,
                )
        return BatchHierarchicalSolution(
            system=system,
            submodels=interfaces,
            bound_parameters=bound,
            attributions=dict(self._attributions),
        )


#: Metrics a batch solution can expose as plain arrays.
BATCH_METRICS = ("availability", "yearly_downtime_minutes", "mtbf_hours")


@dataclass(frozen=True)
class BatchHierarchicalSolution:
    """Struct-of-arrays result of a batched hierarchical solve.

    Attributes:
        system: Batched availability report of the top-level model.
        submodels: Per-submodel batched reports (the (Lambda, Mu)
            interfaces as arrays).
        bound_parameters: Parameter arrays injected into the top model.
        attributions: Down states of the top model attributed to each
            submodel (for full-result reconstruction).
    """

    system: BatchAvailability
    submodels: Dict[str, BatchAvailability]
    bound_parameters: Dict[str, np.ndarray]
    attributions: Dict[str, Tuple[str, ...]]

    @property
    def n_samples(self) -> int:
        return self.system.n_samples

    @property
    def availability(self) -> np.ndarray:
        return self.system.availability

    @property
    def yearly_downtime_minutes(self) -> np.ndarray:
        return self.system.yearly_downtime_minutes

    @property
    def mtbf_hours(self) -> np.ndarray:
        return self.system.mtbf_hours

    def metric_array(self, metric: str) -> np.ndarray:
        """One system metric for every sample, as a ``(n_samples,)`` array."""
        if metric not in BATCH_METRICS:
            raise ModelError(
                f"unknown batch metric {metric!r}; expected one of "
                f"{BATCH_METRICS}"
            )
        return getattr(self.system, metric)

    def result_at(self, sample: int) -> HierarchicalResult:
        """Materialize the full :class:`HierarchicalResult` for one sample.

        Reconstructs exactly what :meth:`HierarchicalModel.solve` would
        have returned for this sample's parameter values, including
        per-state probabilities and the downtime attribution.
        """
        system = _availability_result_at(self.system, sample)
        reports: Dict[str, SubmodelReport] = {}
        total_downtime = system.yearly_downtime_minutes
        for key, batch in self.submodels.items():
            detail = _availability_result_at(batch, sample)
            interface = SubmodelInterface(
                name=key,
                failure_rate=detail.failure_rate,
                recovery_rate=detail.recovery_rate,
                availability=detail.availability,
                detail=detail,
            )
            minutes = sum(
                system.downtime_by_state.get(state, 0.0)
                for state in self.attributions[key]
            )
            fraction = (
                minutes / total_downtime if total_downtime > 0 else 0.0
            )
            reports[key] = SubmodelReport(
                interface=interface,
                downtime_minutes=minutes,
                downtime_fraction=fraction,
            )
        bound = {
            name: float(column[sample])
            for name, column in self.bound_parameters.items()
        }
        return HierarchicalResult(
            system=system, submodels=reports, bound_parameters=bound
        )

    def results(self) -> Tuple[HierarchicalResult, ...]:
        """Full per-sample results (materializes objects; prefer arrays)."""
        return tuple(self.result_at(s) for s in range(self.n_samples))


def _availability_result_at(
    batch: BatchAvailability, sample: int
) -> AvailabilityResult:
    """Scalar :class:`AvailabilityResult` view of one batched sample."""
    pi = batch.pis[sample]
    up = batch.up_mask
    return AvailabilityResult(
        availability=float(batch.availability[sample]),
        yearly_downtime_minutes=float(
            batch.yearly_downtime_minutes[sample]
        ),
        mtbf_hours=float(batch.mtbf_hours[sample]),
        mttr_hours=float(batch.mttr_hours[sample]),
        failure_rate=float(batch.failure_rate[sample]),
        recovery_rate=float(batch.recovery_rate[sample]),
        state_probabilities=dict(zip(batch.state_names, pi.tolist())),
        downtime_by_state={
            name: unavailability_to_yearly_downtime_minutes(float(pi[i]))
            for i, name in enumerate(batch.state_names)
            if not up[i]
        },
    )


def _infer_batch_size(values: Mapping[str, ColumnLike]) -> int:
    for value in values.values():
        if isinstance(value, np.ndarray) and np.asarray(value).ndim == 1:
            return int(np.asarray(value).shape[0])
    raise ModelError(
        "cannot infer the sample count: no array-valued parameter column "
        "was supplied; pass n_samples explicitly"
    )

