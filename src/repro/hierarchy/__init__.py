"""Hierarchical Markov model composition (RAScad-style).

A complex system model is decomposed into submodels.  Each submodel is
solved for its equivalent failure/recovery rates (Lambda, Mu), and those
values are *bound* to named parameters of the parent model.  The paper's
Fig. 2 top model consumes ``La_appl/Mu_appl`` from the Application Server
submodel (Fig. 4) and ``La_hadb/Mu_hadb`` from the HADB node-pair
submodel (Fig. 3).
"""

from repro.hierarchy.interface import SubmodelInterface, abstract_submodel
from repro.hierarchy.binding import Binding, RateBinding
from repro.hierarchy.composer import (
    BatchHierarchicalSolution,
    CompiledHierarchy,
    HierarchicalModel,
    HierarchicalResult,
    SubmodelReport,
)

__all__ = [
    "SubmodelInterface",
    "abstract_submodel",
    "Binding",
    "RateBinding",
    "BatchHierarchicalSolution",
    "CompiledHierarchy",
    "HierarchicalModel",
    "HierarchicalResult",
    "SubmodelReport",
]
