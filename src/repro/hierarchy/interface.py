"""The (Lambda, Mu) abstraction of a solved submodel."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from repro.core.model import MarkovModel
from repro.ctmc.rewards import (
    equivalent_failure_recovery_rates,
    steady_state_availability,
    AvailabilityResult,
)


@dataclass(frozen=True)
class SubmodelInterface:
    """What a parent model sees of a solved submodel.

    Attributes:
        name: Submodel name.
        failure_rate: Equivalent failure rate Lambda (per hour).
        recovery_rate: Equivalent recovery rate Mu (per hour).
        availability: The submodel's own steady-state availability
            (``Mu / (Lambda + Mu)``, exactly).
        detail: Full :class:`~repro.ctmc.rewards.AvailabilityResult` for
            reporting (per-state probabilities, downtime attribution).
    """

    name: str
    failure_rate: float
    recovery_rate: float
    availability: float
    detail: AvailabilityResult

    @property
    def mean_up_time_hours(self) -> float:
        return 1.0 / self.failure_rate if self.failure_rate > 0 else float("inf")

    @property
    def mean_down_time_hours(self) -> float:
        return (
            1.0 / self.recovery_rate
            if self.recovery_rate not in (0.0, float("inf"))
            else 0.0
        )


def abstract_submodel(
    model: MarkovModel,
    values: Mapping[str, float],
    method: str = "direct",
    name: Optional[str] = None,
    abstraction: str = "mttf",
) -> SubmodelInterface:
    """Solve a submodel and return its (Lambda, Mu) interface.

    With ``abstraction="flow"`` the identity
    ``availability == Mu / (Lambda + Mu)`` holds exactly; with the
    default ``"mttf"`` (RAScad semantics) it holds to
    O(unavailability^2).  The reported ``availability`` is always the
    submodel's true steady-state availability, independent of the
    abstraction chosen for the rates.
    """
    detail = steady_state_availability(
        model, values, method=method, abstraction=abstraction
    )
    return SubmodelInterface(
        name=name or model.name,
        failure_rate=detail.failure_rate,
        recovery_rate=detail.recovery_rate,
        availability=detail.availability,
        detail=detail,
    )
