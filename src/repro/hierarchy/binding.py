"""Bindings: wiring submodel outputs into parent-model parameters.

A :class:`RateBinding` says "parameter ``La_appl`` of the parent takes the
value of submodel ``appserver``'s equivalent failure rate, optionally
scaled" — exactly the ``La_appl = $Lambda`` annotations in the paper's
Fig. 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Mapping

from repro.exceptions import ModelError
from repro.hierarchy.interface import SubmodelInterface

#: Which submodel output a binding draws from.
OUTPUTS = ("failure_rate", "recovery_rate", "availability", "unavailability")


@dataclass(frozen=True)
class RateBinding:
    """Bind one parent parameter to one submodel output.

    Attributes:
        parameter: Parent-model parameter name to set.
        submodel: Name of the submodel supplying the value.
        output: One of :data:`OUTPUTS`.
        scale: Multiplier applied to the output (e.g. the paper's top
            model multiplies the HADB pair failure rate by ``N_pair``).
    """

    parameter: str
    submodel: str
    output: str = "failure_rate"
    scale: float = 1.0

    def __post_init__(self) -> None:
        if self.output not in OUTPUTS:
            raise ModelError(
                f"binding for {self.parameter!r} uses unknown output "
                f"{self.output!r}; expected one of {OUTPUTS}"
            )
        if self.scale <= 0.0:
            raise ModelError(
                f"binding for {self.parameter!r} has non-positive scale "
                f"{self.scale}"
            )

    def resolve(self, interface: SubmodelInterface) -> float:
        """Extract and scale the bound value from a solved interface."""
        if self.output == "failure_rate":
            value = interface.failure_rate
        elif self.output == "recovery_rate":
            value = interface.recovery_rate
        elif self.output == "availability":
            value = interface.availability
        else:
            value = 1.0 - interface.availability
        return value * self.scale


#: A general binding: any callable from solved interfaces to a value.
Binding = Callable[[Mapping[str, SubmodelInterface]], float]


def resolve_bindings(
    bindings: Mapping[str, RateBinding],
    interfaces: Mapping[str, SubmodelInterface],
) -> Dict[str, float]:
    """Evaluate every binding against the solved submodel interfaces."""
    resolved: Dict[str, float] = {}
    for parameter, binding in bindings.items():
        if binding.submodel not in interfaces:
            raise ModelError(
                f"binding for parameter {parameter!r} references unknown "
                f"submodel {binding.submodel!r}; known: "
                f"{sorted(interfaces)}"
            )
        resolved[parameter] = binding.resolve(interfaces[binding.submodel])
    return resolved
