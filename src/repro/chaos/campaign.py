"""Seeded fault-injection campaigns with paper-style coverage estimation.

The paper's Section 4 estimates recovery coverage by firing thousands of
software-implemented fault injections at a live application server and
counting successful automatic recoveries; Eq. 1 turns the tally into a
lower confidence bound on coverage.  :func:`run_campaign` is that
experiment for our own serving stack:

1. start (or connect to) an :class:`~repro.service.server.AvailabilityServer`
   running with ``ServiceConfig(chaos=True)``;
2. for each of ``injections`` trials, pick an injection point from a
   seeded RNG, **arm exactly one fault** via ``POST /chaos/arm``, send a
   solve request that must traverse the armed site, and classify the
   outcome;
3. a trial is *recovered* when the client (with retries enabled) still
   obtains the bit-correct solve result and the server still answers
   ``/healthz`` — the same "system keeps delivering correct service"
   criterion the paper uses;
4. the recovered/total tallies — per point and overall — feed
   :func:`repro.estimation.coverage.estimate_coverage` (paper Eq. 1).

Every trial solves a unique parameter point so armed faults cannot be
masked by cache hits from earlier trials, and each trial verifies the
injection actually fired by diffing ``/chaos/status`` around the
request.  Given the same seed, the point sequence, tallies and coverage
bounds are bit-for-bit reproducible.
"""

from __future__ import annotations

import json
import pathlib
import random
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro import obs
from repro.chaos.injector import (
    INJECTION_POINTS,
    POINT_CACHE_CORRUPT,
    ChaosError,
)
from repro.estimation.coverage import CoverageEstimate, estimate_coverage

#: Version of the campaign-report JSON layout.
REPORT_SCHEMA = 1

#: Parameter swept to make every trial's solve request unique.
TRIAL_PARAMETER = "Tstart_long_as"

#: Relative tolerance when checking the recovered response against the
#: direct-solve oracle.  The service path is bit-identical to a direct
#: solve for the default method, so this is generous.
ORACLE_RTOL = 1e-9


@dataclass(frozen=True)
class TrialOutcome:
    """One classified fault injection.

    Attributes:
        index: Trial number (0-based).
        point: Injection point that was armed.
        activated: Whether ``/chaos/status`` confirmed the fault fired.
        recovered: Whether correct service survived the fault.
        detail: Classification note (``"ok"``, ``"wrong-result"``,
            ``"no-response: ..."``, ``"not-activated"``,
            ``"unhealthy: ..."``).
        attempts: Client attempts the solve needed (1 = no retry).
        duration_ms: Wall-clock time for the trial's solve.
    """

    index: int
    point: str
    activated: bool
    recovered: bool
    detail: str
    attempts: int
    duration_ms: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "point": self.point,
            "activated": self.activated,
            "recovered": self.recovered,
            "detail": self.detail,
            "attempts": self.attempts,
            "duration_ms": self.duration_ms,
        }


def _estimate_payload(estimate: CoverageEstimate) -> Dict[str, Any]:
    return {
        "n_trials": estimate.n_trials,
        "n_successes": estimate.n_successes,
        "point": estimate.point,
        "coverage_lower": estimate.lower,
        "fir_upper": estimate.fir_upper,
        "confidence": estimate.confidence,
    }


@dataclass
class CampaignReport:
    """Outcome of one :func:`run_campaign` run.

    ``overall`` and ``by_point`` are paper-Eq.-1 coverage estimates over
    the recovered/total tallies; ``trials`` holds every classified
    injection.  Deterministic given the campaign seed (modulo the
    ``duration_ms`` timing fields, which are excluded from
    :meth:`deterministic_dict`).
    """

    seed: int
    confidence: float
    url: str
    overall: CoverageEstimate
    by_point: Dict[str, CoverageEstimate]
    trials: List[TrialOutcome] = field(default_factory=list)

    @property
    def injections(self) -> int:
        return self.overall.n_trials

    @property
    def recovered(self) -> int:
        return self.overall.n_successes

    def to_dict(self) -> Dict[str, Any]:
        """Full JSON-able report (the ``--report`` artifact)."""
        document = self.deterministic_dict()
        document["url"] = self.url
        document["trials"] = [trial.to_dict() for trial in self.trials]
        return document

    def deterministic_dict(self) -> Dict[str, Any]:
        """The seed-determined part: same seed -> bit-identical dict."""
        return {
            "schema": REPORT_SCHEMA,
            "kind": "chaos-campaign",
            "seed": self.seed,
            "confidence": self.confidence,
            "injections": self.injections,
            "recovered": self.recovered,
            "overall": _estimate_payload(self.overall),
            "by_point": {
                point: _estimate_payload(estimate)
                for point, estimate in sorted(self.by_point.items())
            },
        }

    def write(self, path: Union[str, pathlib.Path]) -> pathlib.Path:
        """Write the JSON artifact; returns the path."""
        target = pathlib.Path(path)
        target.write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return target


class _Oracle:
    """Direct-solve ground truth for trial verification (memoized)."""

    def __init__(self) -> None:
        from repro.models.jsas import PAPER_PARAMETERS, JsasConfiguration

        self._config = JsasConfiguration(n_instances=2, n_pairs=2)
        self._base = PAPER_PARAMETERS.to_dict()
        self._memo: Dict[float, float] = {}

    def availability(self, value: float) -> float:
        cached = self._memo.get(value)
        if cached is None:
            values = dict(self._base)
            values[TRIAL_PARAMETER] = value
            cached = self._config.solve(values).system.availability
            self._memo[value] = cached
        return cached


def _fired_counts(status: Mapping[str, Any]) -> Dict[str, int]:
    points = status.get("points", {})
    return {
        point: int(points.get(point, {}).get("fired", 0))
        for point in INJECTION_POINTS
    }


def run_campaign(
    injections: int = 200,
    seed: int = 2004,
    url: Optional[str] = None,
    confidence: float = 0.95,
    report_path: Union[str, pathlib.Path, None] = None,
    stall_seconds: float = 0.02,
    timeout: float = 30.0,
) -> CampaignReport:
    """Fire ``injections`` seeded faults and estimate recovery coverage.

    Args:
        injections: Number of fault-injection trials.
        seed: Drives the injection-point sequence, the trial parameters
            and the server-side rate RNGs; same seed, same campaign.
        url: Base URL of a server already running with
            ``ServiceConfig(chaos=True)``.  ``None`` (the default)
            self-hosts one on a loopback port for the campaign's
            duration.
        confidence: Confidence level for the Eq. 1 coverage bounds.
        report_path: Optional path for the JSON artifact.
        stall_seconds: Delay used by the ``scheduler.stall`` injections.
        timeout: Client socket timeout per request.

    Returns:
        The :class:`CampaignReport`; also written to ``report_path``
        when given.
    """
    if injections < 1:
        raise ChaosError(f"need at least one injection, got {injections}")
    if url is not None:
        return _run_against(
            url, injections, seed, confidence, report_path,
            stall_seconds, timeout,
        )
    from repro.service.config import ServiceConfig
    from repro.service.server import AvailabilityServer

    config = ServiceConfig(port=0, chaos=True, chaos_seed=seed)
    with AvailabilityServer(config) as server:
        return _run_against(
            server.url, injections, seed, confidence, report_path,
            stall_seconds, timeout,
        )


def _run_against(
    url: str,
    injections: int,
    seed: int,
    confidence: float,
    report_path: Union[str, pathlib.Path, None],
    stall_seconds: float,
    timeout: float,
) -> CampaignReport:
    from repro.service.client import RetryPolicy, ServiceClient

    client = ServiceClient(
        url,
        timeout=timeout,
        # Retries are the recovery mechanism under test: transient 500s
        # (injected solver faults) and transport drops must be retried;
        # jitter is seeded so backoff draws reproduce too.
        retry=RetryPolicy(max_attempts=5, retry_statuses=(500, 503)),
        rng=random.Random(f"campaign-client:{seed}"),
    )
    status = client.chaos_status()
    if not status.get("enabled"):
        raise ChaosError(
            f"server at {url} does not have an enabled chaos injector"
        )
    oracle = _Oracle()
    rng = random.Random(f"campaign:{seed}")
    trials: List[TrialOutcome] = []
    tallies: Dict[str, List[int]] = {
        point: [0, 0] for point in INJECTION_POINTS
    }
    with obs.span("chaos.campaign", injections=injections, seed=seed):
        for index in range(injections):
            point = rng.choice(INJECTION_POINTS)
            # A unique parameter per trial keeps the solve a cache miss,
            # so scheduler/solver faults cannot be masked by a hit.
            value = round(0.5 + 0.01 * index + 0.001 * rng.random(), 12)
            outcome = _run_trial(
                client, oracle, index, point, value, stall_seconds
            )
            trials.append(outcome)
            tallies[point][0] += 1
            tallies[point][1] += int(outcome.recovered)
            obs.counter(
                "chaos_campaign_trials_total",
                point=point,
                recovered=str(outcome.recovered).lower(),
            ).inc()
            if not outcome.recovered:
                obs.event(
                    "chaos.campaign.not_recovered",
                    index=index,
                    point=point,
                    detail=outcome.detail,
                )
    overall = estimate_coverage(
        len(trials),
        sum(1 for trial in trials if trial.recovered),
        confidence,
    )
    by_point = {
        point: estimate_coverage(n, s, confidence)
        for point, (n, s) in tallies.items()
        if n > 0
    }
    report = CampaignReport(
        seed=seed,
        confidence=confidence,
        url=url,
        overall=overall,
        by_point=by_point,
        trials=trials,
    )
    obs.event(
        "chaos.campaign.complete",
        injections=report.injections,
        recovered=report.recovered,
        coverage_lower=overall.lower,
        fir_upper=overall.fir_upper,
    )
    if report_path is not None:
        report.write(report_path)
    return report


def _run_trial(
    client: "Any",
    oracle: _Oracle,
    index: int,
    point: str,
    value: float,
    stall_seconds: float,
) -> TrialOutcome:
    from repro.service.errors import ServiceError

    parameters = {TRIAL_PARAMETER: value}
    tag = f"trial-{index}"
    if point == POINT_CACHE_CORRUPT:
        # The corruption site is a cache *read* of an existing entry:
        # populate the entry first, then arm, then read it back.
        client.solve(parameters=parameters)
    before = _fired_counts(client.chaos_status())
    client.chaos_arm(
        point, count=1, delay_seconds=stall_seconds, tag=tag
    )
    started = time.perf_counter()
    recovered = True
    detail = "ok"
    attempts = 0
    try:
        response = client.solve(parameters=parameters)
        attempts = client.last_attempts
        expected = oracle.availability(value)
        got = response.get("availability")
        if not isinstance(got, float) or abs(got - expected) > abs(
            expected
        ) * ORACLE_RTOL:
            recovered = False
            detail = f"wrong-result: got {got!r}, expected {expected!r}"
    except ServiceError as exc:
        attempts = client.last_attempts
        recovered = False
        detail = f"no-response: {type(exc).__name__}: {exc}"
    duration_ms = (time.perf_counter() - started) * 1000.0
    after = _fired_counts(client.chaos_status())
    activated = after[point] > before[point]
    if recovered and not activated:
        # An armed fault that never fired proves nothing about
        # recovery; classify it as a failed trial so it cannot
        # silently inflate the coverage bound.
        recovered = False
        detail = "not-activated"
    if recovered:
        try:
            health = client.healthz()
        except ServiceError as exc:
            recovered = False
            detail = f"unhealthy: {type(exc).__name__}: {exc}"
        else:
            if health.get("status") != "ok":
                recovered = False
                detail = f"unhealthy: {health!r}"
    return TrialOutcome(
        index=index,
        point=point,
        activated=activated,
        recovered=recovered,
        detail=detail,
        attempts=attempts,
        duration_ms=duration_ms,
    )
