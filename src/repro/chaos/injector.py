"""Deterministic, seed-driven fault injection for the service stack.

The paper's availability numbers rest on a software-implemented
fault-injection campaign (>3,000 shots, Section 4); this module is the
equivalent instrument for our own serving subsystem.  Production code is
threaded with *named injection points* — one call to :func:`fire` per
potential fault site — and the module-level injector decides whether a
fault actually happens there.  The default injector is a shared no-op
(:data:`NULL_INJECTOR`), so the production path pays one function call
per site and nothing else; tests and campaigns install a live
:class:`ChaosInjector` (globally, mirroring :mod:`repro.obs`) to make
faults happen on demand.

Two firing modes:

* **armed** — :meth:`ChaosInjector.arm` schedules the next ``count``
  visits to a point to fault.  This is what the campaign runner uses:
  arm exactly one fault, send one request, classify the outcome.
  Deterministic by construction.
* **rate-driven** — a per-point Bernoulli probability drawn from a
  seeded :class:`random.Random`, for background chaos soaks.  The
  per-point RNG streams are independent, so the draw sequence at one
  point does not depend on traffic at another.

Injection points are a closed catalog (:data:`INJECTION_POINTS`);
arming an unknown point is an error so campaigns cannot silently probe
a site that does not exist.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro import obs
from repro.exceptions import ReproError

#: Catalog of named injection points threaded through ``repro.service``.
POINT_SOLVER_EXCEPTION = "solver.exception"
POINT_CACHE_CORRUPT = "cache.corrupt"
POINT_SCHEDULER_STALL = "scheduler.stall"
POINT_RESPONSE_DROP = "response.drop"
POINT_WORKER_DEATH = "worker.death"
POINT_SHARD_DEATH = "shard.death"

#: Points threaded through a single server process.  The single-server
#: campaign draws from exactly this tuple, so adding cluster-level
#: points elsewhere does not perturb seeded campaign reproducibility.
INJECTION_POINTS: Tuple[str, ...] = (
    POINT_SOLVER_EXCEPTION,
    POINT_CACHE_CORRUPT,
    POINT_SCHEDULER_STALL,
    POINT_RESPONSE_DROP,
    POINT_WORKER_DEATH,
)

#: Points that only exist in the cluster router process
#: (:mod:`repro.service.cluster`).
CLUSTER_INJECTION_POINTS: Tuple[str, ...] = (
    POINT_SHARD_DEATH,
)

#: Every point an injector can arm or fire.
ALL_INJECTION_POINTS: Tuple[str, ...] = (
    INJECTION_POINTS + CLUSTER_INJECTION_POINTS
)

#: What each point does when it fires (documentation surfaced through
#: ``/chaos/status`` and ``docs/chaos_guide.md``).
POINT_DESCRIPTIONS: Mapping[str, str] = {
    POINT_SOLVER_EXCEPTION: (
        "one request in a dispatched batch fails with an injected solver "
        "exception; the rest of the batch must still solve"
    ),
    POINT_CACHE_CORRUPT: (
        "a cached payload is overwritten with garbage on read; the "
        "cache's payload validator must detect it and recompute"
    ),
    POINT_SCHEDULER_STALL: (
        "a batch dispatch sleeps for the injection's delay before "
        "solving (slow dispatch / scheduler stall)"
    ),
    POINT_RESPONSE_DROP: (
        "the HTTP handler closes the connection without writing the "
        "response for one /v1/* request"
    ),
    POINT_WORKER_DEATH: (
        "a batcher worker thread dies after taking a batch; the batch "
        "must be re-queued and the worker respawned"
    ),
    POINT_SHARD_DEATH: (
        "the cluster router SIGKILLs one shard process before "
        "forwarding a request; the ring must fail over, the shard must "
        "be respawned and re-admitted, and the request must still "
        "succeed"
    ),
}


class ChaosError(ReproError):
    """Misuse of the chaos harness (unknown point, disabled injector)."""


class InjectedFault(ReproError):
    """The failure an armed ``solver.exception`` delivers to a request.

    Carries the injection point so outcomes can be attributed; the
    server maps it to a 500 like any other solver-side error, which is
    exactly the degradation contract under test (one poisoned request
    fails, the batch and the server survive).
    """

    def __init__(self, point: str, message: Optional[str] = None) -> None:
        super().__init__(message or f"injected fault at {point!r}")
        self.point = point


@dataclass(frozen=True)
class Injection:
    """One fault that actually fired at an injection point.

    Attributes:
        point: The injection-point name.
        delay_seconds: Stall duration for delay-style points.
        tag: Free-form correlation tag (the campaign stamps the trial
            index here).
    """

    point: str
    delay_seconds: float = 0.0
    tag: Optional[str] = None


def _check_point(point: str) -> None:
    if point not in ALL_INJECTION_POINTS:
        raise ChaosError(
            f"unknown injection point {point!r}; expected one of "
            f"{ALL_INJECTION_POINTS}"
        )


class NullInjector:
    """The default injector: every point is permanently quiet.

    ``fire`` is the only method production code calls; it returns
    ``None`` unconditionally.  Arming a null injector is an error — it
    would silently swallow a campaign's faults.
    """

    enabled = False

    def fire(self, point: str) -> Optional[Injection]:
        return None

    def arm(self, point: str, count: int = 1, **_: object) -> None:
        raise ChaosError(
            "cannot arm the null injector; install a ChaosInjector first "
            "(e.g. ServiceConfig(chaos=True) or chaos.set_injector(...))"
        )

    def status(self) -> Dict[str, object]:
        return {"enabled": False, "points": {}, "total_fired": 0}


class ChaosInjector:
    """Thread-safe armed/rate-driven fault injector.

    Args:
        rates: Optional per-point Bernoulli firing probability for
            background chaos (``{point: p}``).  Points not listed never
            fire spontaneously.
        seed: Seed for the rate-mode RNG streams (one independent
            stream per point, derived from this seed), so a soak run is
            reproducible.
        stall_seconds: Default delay carried by injections at
            delay-style points when ``arm`` does not override it.
    """

    enabled = True

    def __init__(
        self,
        rates: Optional[Mapping[str, float]] = None,
        seed: Optional[int] = None,
        stall_seconds: float = 0.05,
    ) -> None:
        rates = dict(rates or {})
        for point, rate in rates.items():
            _check_point(point)
            if not 0.0 <= float(rate) <= 1.0:
                raise ChaosError(
                    f"rate for {point!r} must be in [0, 1], got {rate!r}"
                )
        if stall_seconds < 0:
            raise ChaosError(f"negative stall_seconds {stall_seconds}")
        self.stall_seconds = float(stall_seconds)
        self._rates = {point: float(rate) for point, rate in rates.items()}
        self._lock = threading.Lock()
        self._armed: Dict[str, List[Injection]] = {
            point: [] for point in ALL_INJECTION_POINTS
        }
        self._fired: Dict[str, int] = {
            point: 0 for point in ALL_INJECTION_POINTS
        }
        # Independent per-point streams: traffic at one point cannot
        # perturb the draw sequence at another.  String seeds go through
        # random.seed's stable digest path, not hash(), so the streams
        # reproduce across processes whatever PYTHONHASHSEED is.
        self._rngs = {
            point: random.Random(
                None if seed is None else f"{seed}:{point}"
            )
            for point in ALL_INJECTION_POINTS
        }

    # Arming --------------------------------------------------------------

    def arm(
        self,
        point: str,
        count: int = 1,
        delay_seconds: Optional[float] = None,
        tag: Optional[str] = None,
    ) -> None:
        """Make the next ``count`` visits to ``point`` fault."""
        _check_point(point)
        if count < 1:
            raise ChaosError(f"arm count must be >= 1, got {count}")
        if delay_seconds is not None and delay_seconds < 0:
            raise ChaosError(f"negative delay_seconds {delay_seconds}")
        delay = self.stall_seconds if delay_seconds is None else float(
            delay_seconds
        )
        injection = Injection(point=point, delay_seconds=delay, tag=tag)
        with self._lock:
            self._armed[point].extend([injection] * int(count))

    def reset(self) -> None:
        """Disarm every point and zero the fired counters."""
        with self._lock:
            for point in ALL_INJECTION_POINTS:
                self._armed[point].clear()
                self._fired[point] = 0

    # Firing --------------------------------------------------------------

    def fire(self, point: str) -> Optional[Injection]:
        """Called by production code at a fault site.

        Returns the :class:`Injection` to act on, or ``None`` (the
        overwhelmingly common case) when the site should behave
        normally.
        """
        _check_point(point)
        with self._lock:
            pending = self._armed[point]
            if pending:
                injection = pending.pop(0)
            else:
                rate = self._rates.get(point, 0.0)
                if rate <= 0.0 or self._rngs[point].random() >= rate:
                    return None
                injection = Injection(
                    point=point, delay_seconds=self.stall_seconds
                )
            self._fired[point] += 1
        obs.counter("chaos_injections_total", point=point).inc()
        obs.event("chaos.injected", point=point, tag=injection.tag)
        return injection

    # Introspection -------------------------------------------------------

    def fired(self, point: str) -> int:
        """How many times ``point`` has fired since construction/reset."""
        _check_point(point)
        with self._lock:
            return self._fired[point]

    def status(self) -> Dict[str, object]:
        """JSON-able armed/fired snapshot (the ``/chaos/status`` body)."""
        with self._lock:
            points = {
                point: {
                    "armed": len(self._armed[point]),
                    "fired": self._fired[point],
                    "rate": self._rates.get(point, 0.0),
                    "description": POINT_DESCRIPTIONS[point],
                }
                for point in ALL_INJECTION_POINTS
            }
            total = sum(self._fired.values())
        return {"enabled": True, "points": points, "total_fired": total}


#: The shared, always-quiet default.
NULL_INJECTOR = NullInjector()
