"""Seeded cluster shard-kill drill: every request survives failover.

The single-server campaign (:mod:`repro.chaos.campaign`) measures
recovery *inside* one process; this drill measures the recovery layer
above it — the consistent-hash router of
:mod:`repro.service.cluster`.  The experiment:

1. boot a router with ``n_shards`` shard processes and a router-side
   chaos injector (``ClusterConfig(chaos=True)``);
2. send a seeded workload of distinct solve requests through one
   retrying client;
3. at seeded request indices, arm ``shard.death`` tagged with a seeded
   victim shard — the router SIGKILLs that shard right before
   forwarding, so the in-flight request must fail over to the next ring
   owner while the monitor respawns and re-admits the victim;
4. the drill passes only when **zero** requests fail and the ring ends
   at full strength.

Everything the seed controls — victim shards, kill indices, request
parameters — reproduces bit-for-bit; wall-clock fields are excluded
from :meth:`FailoverReport.deterministic_dict` just like the campaign
report.
"""

from __future__ import annotations

import json
import pathlib
import random
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

from repro import obs
from repro.chaos.injector import POINT_SHARD_DEATH, ChaosError

#: Version of the drill-report JSON layout.
REPORT_SCHEMA = 1

#: Parameter swept to make every drill request distinct (same knob the
#: campaign sweeps, so both harnesses stress the same solve surface).
DRILL_PARAMETER = "Tstart_long_as"


@dataclass
class FailoverReport:
    """Outcome of one :func:`run_failover_drill` run.

    Attributes:
        seed: The drill seed; same seed, same kills and workload.
        n_shards: Shards in the drilled cluster.
        requests: Requests sent.
        succeeded: Requests that returned a correct solve payload.
        failed: Requests that errored (must be 0 for a passing drill).
        kills: Shard kills injected.
        kill_events: One entry per kill: which shard died before which
            request, and its respawn generation afterwards.
        client_retries: Extra client attempts beyond one per request
            (0 when the router absorbed every failover internally).
        ring_size_after: Ring membership at drill end (== ``n_shards``
            when every victim was re-admitted).
        duration_ms: Wall clock for the whole drill (excluded from the
            deterministic dict).
        measurement: The availability measurement report built by
            :func:`repro.obs.monitor.build_measurement_report` when the
            drill ran with probing enabled (``probes > 0``); ``None``
            otherwise, and then absent from :meth:`to_dict` so
            probe-less reports keep their historical layout.
    """

    seed: int
    n_shards: int
    requests: int
    succeeded: int
    failed: int
    kills: int
    kill_events: List[Dict[str, Any]] = field(default_factory=list)
    client_retries: int = 0
    ring_size_after: int = 0
    duration_ms: float = 0.0
    measurement: Optional[Dict[str, Any]] = None

    def deterministic_dict(self) -> Dict[str, Any]:
        """The seed-determined part: same seed -> bit-identical dict.

        A passing drill has no timing-dependent content here: the kill
        schedule is seeded and every request succeeds, so the dict is a
        pure function of the drill parameters.
        """
        return {
            "schema": REPORT_SCHEMA,
            "kind": "failover-drill",
            "seed": self.seed,
            "n_shards": self.n_shards,
            "requests": self.requests,
            "succeeded": self.succeeded,
            "failed": self.failed,
            "kills": self.kills,
            "kill_events": [
                {
                    "shard": event["shard"],
                    "request_index": event["request_index"],
                }
                for event in self.kill_events
            ],
            "ring_size_after": self.ring_size_after,
        }

    def to_dict(self) -> Dict[str, Any]:
        """Full JSON-able report (the ``--report`` artifact)."""
        document = self.deterministic_dict()
        document["kill_events"] = self.kill_events
        document["client_retries"] = self.client_retries
        document["duration_ms"] = self.duration_ms
        if self.measurement is not None:
            document["measurement"] = self.measurement
        return document

    def write(self, path: Union[str, pathlib.Path]) -> pathlib.Path:
        """Write the JSON artifact; returns the path."""
        target = pathlib.Path(path)
        target.write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return target


def _kill_schedule(
    rng: random.Random, requests: int, kills: int, n_shards: int
) -> Dict[int, str]:
    """Seeded map of request index -> victim shard name.

    Kills land in the middle three fifths of the workload so each one
    has traffic before it (caches warm, ring settled) and after it
    (re-admission observed under load).
    """
    lo = max(1, requests // 5)
    hi = max(lo + 1, (4 * requests) // 5)
    indices = rng.sample(range(lo, hi), min(kills, hi - lo))
    return {
        index: f"shard-{rng.randrange(n_shards)}"
        for index in sorted(indices)
    }


def _probe_schedule(requests: int, probes: int) -> Dict[int, int]:
    """Request index → probe index: probes evenly interleaved.

    Deterministic and seed-free — the *timing* of probes relative to
    kills is fixed by construction, so every same-seed drill runs the
    identical interleaving.
    """
    return {(p * requests) // probes: p for p in range(probes)}


def run_failover_drill(
    n_shards: int = 4,
    requests: int = 32,
    kills: int = 1,
    seed: int = 2004,
    report_path: Union[str, pathlib.Path, None] = None,
    timeout: float = 30.0,
    readmit_timeout: float = 30.0,
    shard_cache_size: int = 64,
    probes: int = 0,
    probe_deadline_seconds: float = 10.0,
    min_failures: int = 2,
    trace_dir: Union[str, pathlib.Path, None] = None,
    measurement_path: Union[str, pathlib.Path, None] = None,
    shard_worker_processes: Optional[int] = None,
) -> FailoverReport:
    """Drill shard death under live traffic; zero failures required.

    Args:
        n_shards: Shard processes behind the drilled router.
        requests: Solve requests in the seeded workload.
        kills: ``shard.death`` injections to schedule.
        seed: Drives victims, kill indices and request parameters.
        report_path: Optional path for the JSON artifact.
        timeout: Client socket timeout per request.
        readmit_timeout: How long to wait at drill end for every killed
            shard to be respawned and re-admitted to the ring.
        shard_cache_size: Solve-cache entries per shard (small, so the
            drill boots fast).
        probes: Synthetic availability probes interleaved evenly with
            the workload (:mod:`repro.obs.monitor`); ``0`` disables the
            measurement pipeline entirely.
        probe_deadline_seconds: Deadline per probe (single attempt).
        min_failures: Consecutive probe failures that constitute a
            service-level outage episode.
        trace_dir: Distributed-trace directory: every cluster process
            (this drill process included, labeled ``"router"``) writes
            per-process span files there for ``obs report --cluster``.
        measurement_path: Optional path for the standalone measurement
            report JSON (also embedded in the drill report).
        shard_worker_processes: Pre-forked solver workers per shard;
            defaults to 1 when ``trace_dir`` is set (so probe traces
            include worker spans), else 0.

    Returns:
        The :class:`FailoverReport`; also written to ``report_path``
        when given.
    """
    if n_shards < 2:
        raise ChaosError(
            f"failover needs at least 2 shards, got {n_shards}"
        )
    if requests < 4:
        raise ChaosError(f"need at least 4 requests, got {requests}")
    if kills < 0 or kills > requests // 4:
        raise ChaosError(
            f"kills must be in [0, requests // 4], got {kills}"
        )
    if probes < 0 or probes > requests:
        raise ChaosError(
            f"probes must be in [0, requests], got {probes}"
        )
    from repro.obs import monitor
    from repro.obs.recorder import Recorder
    from repro.obs.sinks import InMemorySink, JsonlSink
    from repro.service.client import RetryPolicy, ServiceClient
    from repro.service.cluster import ClusterConfig, ClusterServer
    from repro.service.config import ServiceConfig
    from repro.service.errors import ServiceError

    rng = random.Random(f"failover:{seed}")
    schedule = _kill_schedule(rng, requests, kills, n_shards)
    probe_at = _probe_schedule(requests, probes) if probes else {}
    measuring = probes > 0 or trace_dir is not None
    worker_processes = (
        shard_worker_processes
        if shard_worker_processes is not None
        else (1 if trace_dir is not None else 0)
    )
    config = ClusterConfig(
        port=0,
        n_shards=n_shards,
        shard=ServiceConfig(
            port=0,
            workers=1,
            cache_size=shard_cache_size,
            worker_processes=worker_processes,
        ),
        chaos=True,
        chaos_seed=seed,
        trace_dir=str(trace_dir) if trace_dir is not None else None,
    )
    # The measurement pipeline needs the router's lifecycle events
    # (killed/dead/ready): collect them in memory regardless of whether
    # a recorder was already installed, and — when tracing — give this
    # drill process (which hosts the client and router spans) its own
    # per-process trace file, labeled "router".
    event_sink: Optional[InMemorySink] = None
    own_recorder: Optional[Recorder] = None
    previous_recorder = None
    previous_label: Optional[str] = None
    if measuring:
        import os as _os

        event_sink = InMemorySink()
        sinks: List[Any] = [event_sink]
        if trace_dir is not None:
            directory = pathlib.Path(trace_dir)
            directory.mkdir(parents=True, exist_ok=True)
            sinks.append(
                JsonlSink(
                    directory / f"router.{_os.getpid()}.jsonl",
                    header_fields={
                        "process": "router", "pid": _os.getpid()
                    },
                )
            )
            previous_label = obs.set_process_label("router")
        if obs.enabled():
            for sink in sinks:
                obs.get_recorder().add_sink(sink)
        else:
            own_recorder = Recorder(sinks=tuple(sinks), keep_records=False)
            previous_recorder = obs.set_recorder(own_recorder)
    started = time.perf_counter()
    succeeded = 0
    failures: List[Dict[str, Any]] = []
    kill_events: List[Dict[str, Any]] = []
    probe_records: List[Dict[str, Any]] = []
    client_retries = 0
    try:
        with obs.span(
            "chaos.failover", n_shards=n_shards, requests=requests, seed=seed
        ), ClusterServer(config) as router:
            client = ServiceClient(
                router.url,
                timeout=timeout,
                # 503 (ring momentarily empty) is retryable here; the
                # drill counts these retries to show how much the router
                # absorbed.
                retry=RetryPolicy(max_attempts=5, retry_statuses=(503,)),
                rng=random.Random(f"failover-client:{seed}"),
            )
            prober = (
                monitor.ProbeRunner(
                    router.url,
                    deadline_seconds=probe_deadline_seconds,
                    seed=seed,
                )
                if probes
                else None
            )
            for index in range(requests):
                victim = schedule.get(index)
                if victim is not None:
                    client.chaos_arm(
                        POINT_SHARD_DEATH, count=1, tag=victim
                    )
                    kill_events.append(
                        {"shard": victim, "request_index": index}
                    )
                value = round(0.5 + 0.05 * index, 12)
                try:
                    response = client.solve(
                        parameters={DRILL_PARAMETER: value}
                    )
                except ServiceError as exc:
                    failures.append(
                        {
                            "request_index": index,
                            "error": f"{type(exc).__name__}: {exc}",
                        }
                    )
                    obs.event(
                        "chaos.failover.request_failed",
                        index=index,
                        error=f"{type(exc).__name__}: {exc}",
                    )
                else:
                    client_retries += client.last_attempts - 1
                    if isinstance(response.get("availability"), float):
                        succeeded += 1
                    else:
                        failures.append(
                            {
                                "request_index": index,
                                "error": f"malformed payload: {response!r}",
                            }
                        )
                if prober is not None and index in probe_at:
                    probe_records.append(prober.probe(probe_at[index]))
            if prober is not None:
                prober.close()
            # Every victim must come back: wait for full ring
            # re-admission.
            deadline = time.monotonic() + readmit_timeout
            ring_size = 0
            while time.monotonic() < deadline:
                status = router.cluster.cluster_status()
                ring_size = len(status["ring"])
                if ring_size == n_shards and all(
                    shard["alive"] for shard in status["shards"].values()
                ):
                    break
                time.sleep(0.1)
            for event in kill_events:
                shard_status = router.cluster.cluster_status()["shards"][
                    event["shard"]
                ]
                event["respawns"] = shard_status["respawns"]
                event["generation"] = shard_status["generation"]
    finally:
        if event_sink is not None:
            if own_recorder is not None:
                obs.set_recorder(previous_recorder)
                own_recorder.close()
            else:
                recorder = obs.get_recorder()
                recorder.remove_sink(event_sink)
                for sink in sinks[1:]:
                    recorder.remove_sink(sink)
                    sink.close()
        if previous_label is not None:
            obs.set_process_label(previous_label)
    measurement: Optional[Dict[str, Any]] = None
    if probes:
        measurement = monitor.build_measurement_report(
            probe_records,
            event_sink.records if event_sink is not None else (),
            seed=seed,
            n_shards=n_shards,
            min_failures=min_failures,
        )
        if measurement_path is not None:
            monitor.write_measurement_report(measurement, measurement_path)
    report = FailoverReport(
        seed=seed,
        n_shards=n_shards,
        requests=requests,
        succeeded=succeeded,
        failed=len(failures),
        kills=len(kill_events),
        kill_events=kill_events,
        client_retries=client_retries,
        ring_size_after=ring_size,
        duration_ms=(time.perf_counter() - started) * 1000.0,
        measurement=measurement,
    )
    obs.event(
        "chaos.failover.complete",
        requests=report.requests,
        succeeded=report.succeeded,
        failed=report.failed,
        kills=report.kills,
        ring_size_after=report.ring_size_after,
    )
    if failures:
        obs.event("chaos.failover.failures", failures=failures)
    if report_path is not None:
        report.write(report_path)
    return report
