"""repro.chaos — deterministic fault injection for the service stack.

The paper measures recovery coverage by injecting faults into a live
server and counting successful automatic recoveries (Section 4, Eq. 1).
This package does the same to *our* production-shaped subsystem,
:mod:`repro.service`:

* :mod:`repro.chaos.injector` — named injection points with a no-op
  default, armed or rate-driven firing, seeded determinism;
* :mod:`repro.chaos.campaign` — the campaign runner: N seeded
  injections against a running server, recovered/not-recovered
  classification, and the paper's one-sided coverage bound computed by
  :mod:`repro.estimation.coverage` (import it as
  ``repro.chaos.campaign`` — it pulls in :mod:`repro.service`, which
  this package root must not).

Production code interacts with exactly one function::

    from repro import chaos

    injection = chaos.fire("scheduler.stall")
    if injection is not None:
        time.sleep(injection.delay_seconds)

With the default :data:`~repro.chaos.injector.NULL_INJECTOR` installed,
``fire`` returns ``None`` unconditionally and the site costs one call.
The global-injector pattern (get/set/scope) mirrors :mod:`repro.obs`.
"""

from __future__ import annotations

import contextlib
from typing import Iterator, Optional, Union

from repro.chaos.injector import (
    ALL_INJECTION_POINTS,
    CLUSTER_INJECTION_POINTS,
    INJECTION_POINTS,
    NULL_INJECTOR,
    POINT_CACHE_CORRUPT,
    POINT_DESCRIPTIONS,
    POINT_RESPONSE_DROP,
    POINT_SCHEDULER_STALL,
    POINT_SHARD_DEATH,
    POINT_SOLVER_EXCEPTION,
    POINT_WORKER_DEATH,
    ChaosError,
    ChaosInjector,
    InjectedFault,
    Injection,
    NullInjector,
)

__all__ = [
    "ALL_INJECTION_POINTS",
    "CLUSTER_INJECTION_POINTS",
    "INJECTION_POINTS",
    "NULL_INJECTOR",
    "POINT_CACHE_CORRUPT",
    "POINT_DESCRIPTIONS",
    "POINT_RESPONSE_DROP",
    "POINT_SCHEDULER_STALL",
    "POINT_SHARD_DEATH",
    "POINT_SOLVER_EXCEPTION",
    "POINT_WORKER_DEATH",
    "ChaosError",
    "ChaosInjector",
    "InjectedFault",
    "Injection",
    "NullInjector",
    "enabled",
    "fire",
    "get_injector",
    "inject",
    "set_injector",
]

InjectorLike = Union[ChaosInjector, NullInjector]

_current: InjectorLike = NULL_INJECTOR


def get_injector() -> InjectorLike:
    """The injector fault sites currently consult."""
    return _current


def set_injector(injector: InjectorLike) -> InjectorLike:
    """Install an injector globally; returns the previous one."""
    global _current
    previous = _current
    _current = injector
    return previous


def enabled() -> bool:
    """True when a live injector is installed (guard for hot paths)."""
    return _current.enabled


def fire(point: str) -> Optional[Injection]:
    """Consult the global injector at a named fault site."""
    return _current.fire(point)


@contextlib.contextmanager
def inject(injector: Optional[ChaosInjector] = None) -> Iterator[ChaosInjector]:
    """Install an injector for the duration of a ``with`` block.

    Creates a fresh armed-mode :class:`ChaosInjector` when none is
    given; always restores the previous injector on exit.
    """
    active = injector if injector is not None else ChaosInjector()
    previous = set_injector(active)
    try:
        yield active
    finally:
        set_injector(previous)
