"""Hierarchical Markov model of the sharded cluster.

The paper's Fig. 2 composes an AS submodel and an HADB submodel under a
small top-level chain; this module composes the same shape from the
cluster topology of :mod:`repro.selfmodel.topology`:

**Shard submodel** — the measured failure/recovery cycle of one shard
process, with one state per measured phase::

    Up --La_shard--> Failed --Mu_detect--> Restoring --Mu_restore--> Up

``Failed`` is the killed-but-undetected window (the monitor poll gap:
the ``killed -> dead`` phase sample), ``Restoring`` covers respawn +
ready handshake + ring re-admission (the ``dead -> ready`` sample).

**Top model** — a k-of-n birth-death chain over shard counts, its rates
bound to the shard submodel's equivalent (Lambda, Mu) interface exactly
like the paper binds ``La_appl``/``Mu_appl``::

    Shards{n} <-> Shards{n-1} <-> ... <-> Shards{0}
    down: j * La_shard_eq      up: (n - j) * Mu_shard_eq

The service is up while at least ``quorum`` shards serve.

**Worker pool** (optional) — a 1-of-w pool per shard, abstracted and
bound into a ``WorkerOutage`` top state entered from every up state at
``j * La_workers_eq`` (the paper's HADB-tier pattern: conservative,
because a worker-pool outage on *any* serving shard is charged as a
service outage).

**Cache tier** (optional) — a Warm/Rebuilding cycle registered as a
*masked* submodel: it is solved and reported (a cold cache degrades
latency) but attributed no top-level downtime and bound to nothing,
because the service keeps answering while a cache rebuilds.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.model import MarkovModel
from repro.exceptions import SelfModelError
from repro.hierarchy.composer import HierarchicalModel
from repro.selfmodel.topology import ClusterTopology

#: Free parameters of the shard submodel (all rates per hour).
SHARD_PARAMETERS = ("La_shard", "Mu_detect", "Mu_restore")

#: Free parameters of the optional worker-pool submodel.
WORKER_PARAMETERS = ("La_worker", "Mu_worker")

#: Free parameters of the optional (masked) cache-tier submodel.
CACHE_PARAMETERS = ("La_cache", "Mu_cache")

#: Top-model parameters produced by bindings, never supplied directly.
BOUND_PARAMETERS = (
    "La_shard_eq",
    "Mu_shard_eq",
    "La_workers_eq",
    "Mu_workers_eq",
)


def build_shard_model(name: str = "shard") -> MarkovModel:
    """One shard's measured failure/recovery cycle (3 states)."""
    model = MarkovModel(
        name, "shard process: kill -> detect -> respawn/re-admit"
    )
    model.add_state("Up", reward=1.0, description="serving on the ring")
    model.add_state(
        "Failed",
        reward=0.0,
        description="killed, not yet detected by the health monitor",
    )
    model.add_state(
        "Restoring",
        reward=0.0,
        description="detected dead; respawning and re-admitting",
    )
    model.add_transition("Up", "Failed", "La_shard")
    model.add_transition("Failed", "Restoring", "Mu_detect")
    model.add_transition("Restoring", "Up", "Mu_restore")
    return model


def build_worker_pool_model(
    workers: int, name: str = "workers"
) -> MarkovModel:
    """Pre-forked solver pool: up while at least one worker lives.

    A birth-death chain over live workers; the parent respawns dead
    workers one at a time (rate ``Mu_worker``), and each live worker
    dies independently at ``La_worker``.
    """
    if workers < 1:
        raise SelfModelError(
            f"worker pool model needs at least 1 worker, got {workers}"
        )
    model = MarkovModel(
        name, f"pre-forked solver pool ({workers} worker(s))"
    )
    for live in range(workers, -1, -1):
        model.add_state(
            f"Pool{live}", reward=1.0 if live >= 1 else 0.0
        )
    for live in range(workers, 0, -1):
        model.add_transition(
            f"Pool{live}", f"Pool{live - 1}", f"{live} * La_worker"
        )
    for live in range(workers):
        model.add_transition(f"Pool{live}", f"Pool{live + 1}", "Mu_worker")
    return model


def build_cache_model(name: str = "cache") -> MarkovModel:
    """Solve-cache tier: Warm <-> Rebuilding (masked: degrades, not down)."""
    model = MarkovModel(name, "solve cache: warm vs rebuilding")
    model.add_state("Warm", reward=1.0)
    model.add_state(
        "Rebuilding",
        reward=0.0,
        description="cache lost (shard respawn); refilling from traffic",
    )
    model.add_transition("Warm", "Rebuilding", "La_cache")
    model.add_transition("Rebuilding", "Warm", "Mu_cache")
    return model


def build_top_model(
    topology: ClusterTopology, include_workers: bool = False
) -> MarkovModel:
    """k-of-n birth-death chain over live shards (+ worker-outage state)."""
    n = topology.n_shards
    model = MarkovModel(
        "cluster",
        f"router composition: {topology.quorum}-of-{n} shards serving",
    )
    for live in range(n, -1, -1):
        model.add_state(
            f"Shards{live}",
            reward=1.0 if live >= topology.quorum else 0.0,
        )
    for live in range(n, 0, -1):
        model.add_transition(
            f"Shards{live}", f"Shards{live - 1}", f"{live} * La_shard_eq"
        )
    for live in range(n):
        # The router's monitor respawns every dead shard concurrently —
        # one "repair crew" per shard, not a shared crew.
        model.add_transition(
            f"Shards{live}",
            f"Shards{live + 1}",
            f"{n - live} * Mu_shard_eq",
        )
    if include_workers:
        model.add_state(
            "WorkerOutage",
            reward=0.0,
            description="a serving shard's solver pool is fully dead",
        )
        for live in range(topology.quorum, n + 1):
            model.add_transition(
                f"Shards{live}", "WorkerOutage", f"{live} * La_workers_eq"
            )
        model.add_transition("WorkerOutage", f"Shards{n}", "Mu_workers_eq")
    return model


def build_cluster_hierarchy(
    topology: ClusterTopology,
    include_workers: bool = False,
    include_cache: bool = False,
) -> HierarchicalModel:
    """Compose the full cluster model for the given topology.

    Args:
        topology: Shape of the modeled cluster.
        include_workers: Model the per-shard solver pool as a bound
            submodel (requires ``topology.worker_processes >= 1`` and
            fitted ``La_worker``/``Mu_worker`` rates).
        include_cache: Register the cache tier as a *masked* submodel
            (solved and reported, but not bound and attributed no
            downtime).

    Returns:
        A :class:`~repro.hierarchy.composer.HierarchicalModel` whose
        free parameters are :func:`required_parameters` of the same
        flags.
    """
    if include_workers and topology.worker_processes < 1:
        raise SelfModelError(
            "include_workers requires worker_processes >= 1 in the "
            f"topology, got {topology.worker_processes}"
        )
    top = build_top_model(topology, include_workers=include_workers)
    hierarchy = HierarchicalModel(top)
    shard_down = tuple(
        f"Shards{live}" for live in range(topology.quorum)
    )
    hierarchy.add_submodel(build_shard_model(), attribute_states=shard_down)
    hierarchy.bind("La_shard_eq", "shard", "failure_rate")
    hierarchy.bind("Mu_shard_eq", "shard", "recovery_rate")
    if include_workers:
        hierarchy.add_submodel(
            build_worker_pool_model(topology.worker_processes),
            attribute_states=("WorkerOutage",),
        )
        hierarchy.bind("La_workers_eq", "workers", "failure_rate")
        hierarchy.bind("Mu_workers_eq", "workers", "recovery_rate")
    if include_cache:
        hierarchy.add_submodel(build_cache_model(), attribute_states=())
    return hierarchy


def required_parameters(
    include_workers: bool = False, include_cache: bool = False
) -> Tuple[str, ...]:
    """Free parameter names a solve of the hierarchy must supply."""
    names = list(SHARD_PARAMETERS)
    if include_workers:
        names.extend(WORKER_PARAMETERS)
    if include_cache:
        names.extend(CACHE_PARAMETERS)
    return tuple(names)


def model_shape(
    topology: ClusterTopology,
    include_workers: bool = False,
    include_cache: bool = False,
) -> Dict[str, object]:
    """Seed-pure structural summary for deterministic report blocks."""
    submodels: Dict[str, int] = {"shard": 3}
    if include_workers:
        submodels["workers"] = topology.worker_processes + 1
    if include_cache:
        submodels["cache"] = 2
    top_states = topology.n_shards + 1 + (1 if include_workers else 0)
    return {
        "top_states": top_states,
        "submodels": submodels,
        "quorum": topology.quorum,
    }
