"""Compare the model's prediction against the measured availability.

The paper's validation step: the model is considered to *agree* with
the measurement when the predicted availability interval (rate CIs
propagated through the model) overlaps the measured availability
interval.  The measured side gets a Clopper-Pearson binomial interval
over the probe outcomes — the same exact machinery as the paper's
Eq. 1 coverage bound, two-sided — because a short campaign's point
estimate (often exactly 1.0 from a handful of probes) says much less
than its interval.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional, Tuple, Union

import pathlib

from repro.exceptions import SelfModelError
from repro.selfmodel.fit import SECONDS_PER_HOUR


def binomial_interval(
    successes: int, trials: int, confidence: float = 0.95
) -> Tuple[float, float]:
    """Exact (Clopper-Pearson) two-sided binomial confidence interval.

    The beta-quantile form of the paper's Eq. 1 bound: the lower edge
    is 0 when no successes were seen and the upper edge 1 when no
    failures were — both exact, not approximations.
    """
    from scipy import stats

    if trials < 1:
        raise SelfModelError(
            f"binomial interval needs at least one trial, got {trials}"
        )
    if not 0 <= successes <= trials:
        raise SelfModelError(
            f"successes must be in [0, trials]; got {successes}/{trials}"
        )
    if not 0.0 < confidence < 1.0:
        raise SelfModelError(
            f"confidence must be in (0, 1), got {confidence}"
        )
    alpha = 1.0 - confidence
    lower = (
        0.0
        if successes == 0
        else float(
            stats.beta.ppf(alpha / 2.0, successes, trials - successes + 1)
        )
    )
    upper = (
        1.0
        if successes == trials
        else float(
            stats.beta.ppf(
                1.0 - alpha / 2.0, successes + 1, trials - successes
            )
        )
    )
    return lower, upper


def intervals_overlap(
    a: Tuple[float, float], b: Tuple[float, float]
) -> bool:
    """True when closed intervals ``a`` and ``b`` intersect."""
    return a[0] <= b[1] and b[0] <= a[1]


def validate_prediction(
    prediction: Mapping[str, Any],
    measurement: Union[str, pathlib.Path, Mapping[str, Any]],
    confidence: float = 0.95,
) -> Dict[str, Any]:
    """The agreement verdict between a prediction and a measurement.

    Args:
        prediction: A selfmodel prediction report (parsed).
        measurement: The measurement report (path or parsed; v1
            artifacts are upgraded by the loader shim).
        confidence: Level of the measured-side binomial interval.

    Returns:
        The validation document: measured interval, predicted interval,
        overlap flag, MTTR cross-check, and the ``"verdict"``
        (``"agree"`` / ``"disagree"``).
    """
    from repro.obs.monitor import load_measurement_report

    report = load_measurement_report(measurement)
    n_probes = int(report.get("n_probes") or 0)
    if n_probes < 1:
        raise SelfModelError(
            "measurement report has no probes; cannot validate a "
            "prediction against it (run the drill with probes > 0)"
        )
    failures = int(report.get("probe_failures") or 0)
    successes = n_probes - failures
    measured_interval = binomial_interval(successes, n_probes, confidence)
    predicted = prediction["predicted"]["availability"]
    predicted_interval = (
        float(predicted["lower"]),
        float(predicted["upper"]),
    )
    overlap = intervals_overlap(predicted_interval, measured_interval)

    # MTTR cross-check: the shard submodel's mean outage vs the
    # measured killed -> ready mean (both in seconds).
    model_mttr: Optional[float] = None
    fitted = prediction.get("fitted", {})
    if "Mu_detect" in fitted and "Mu_restore" in fitted:
        model_mttr = (
            1.0 / float(fitted["Mu_detect"]["point"])
            + 1.0 / float(fitted["Mu_restore"]["point"])
        ) * SECONDS_PER_HOUR
    measured_mttr = report.get("mttr_seconds")
    mttr_ratio = (
        model_mttr / measured_mttr
        if model_mttr is not None and measured_mttr
        else None
    )

    notes = []
    if successes == n_probes:
        notes.append(
            f"all {n_probes} probes succeeded; the measured point is "
            "1.0 and only the binomial interval's lower edge "
            f"({measured_interval[0]:.6f}) constrains the comparison"
        )
    if not overlap:
        notes.append(
            "predicted and measured intervals are disjoint; check the "
            "fit diagnostics (restore_consistency_ratio) and whether "
            "the drill's exposure is long enough for a stable Eq. 2 fit"
        )
    return {
        "kind": "selfmodel-validation",
        "confidence": confidence,
        "predicted_interval": list(predicted_interval),
        "measured": {
            "n_probes": n_probes,
            "probe_failures": failures,
            "probe_availability": successes / n_probes,
            "interval": list(measured_interval),
            "empirical_availability": report.get("empirical_availability"),
            "mttr_seconds": measured_mttr,
            "mtbf_seconds": report.get("mtbf_seconds"),
        },
        "model": {
            "mttr_seconds": model_mttr,
            "mttr_ratio": mttr_ratio,
        },
        "overlap": overlap,
        "verdict": "agree" if overlap else "disagree",
        "notes": notes,
    }
