"""Close the paper's loop on our own cluster.

The paper's thesis is a loop: *measure* a real application server,
*model* it as a hierarchical Markov chain with rates fitted from the
measurements, and show the model *predicts* the measured availability.
:mod:`repro.selfmodel` executes that loop against this library's own
production stack — the consistent-hash sharded cluster of
:mod:`repro.service.cluster` — using the measurement layer of
:mod:`repro.obs.monitor` and the estimation/model/solver engines built
for the paper reproduction:

1. :mod:`~repro.selfmodel.topology` — derive the model topology from
   the cluster's shape (k-of-n shards behind the router; optional
   worker-pool and cache tiers).
2. :mod:`~repro.selfmodel.fit` — fit rates with confidence intervals
   from a measurement report (exponential MLE for recovery phases,
   paper Eq. 2 for the failure rate).
3. :mod:`~repro.selfmodel.predict` — solve the hierarchy at the point
   and propagate the rate CIs through a corner sweep on the compiled
   batch engine.
4. :mod:`~repro.selfmodel.validate` — the agreement verdict against
   the measured probe availability (Clopper-Pearson interval).
5. :mod:`~repro.selfmodel.pipeline` — the one-shot
   drill -> measure -> fit -> predict -> compare loop.
6. :mod:`~repro.selfmodel.whatif` — the fitted model as a catalog
   entry for ``solve`` / ``sweep`` / ``uncertainty`` what-ifs.
"""

from repro.selfmodel.topology import ClusterTopology
from repro.selfmodel.model import (
    build_cache_model,
    build_cluster_hierarchy,
    build_shard_model,
    build_top_model,
    build_worker_pool_model,
    required_parameters,
)
from repro.selfmodel.fit import (
    FIT_SCHEMA,
    FittedParameters,
    FittedRate,
    fit_parameters,
    load_fit,
)
from repro.selfmodel.predict import (
    PREDICTION_SCHEMA,
    load_prediction_report,
    predict_availability,
    render_prediction_report,
    write_prediction_report,
)
from repro.selfmodel.validate import (
    binomial_interval,
    intervals_overlap,
    validate_prediction,
)
from repro.selfmodel.pipeline import run_selfmodel_drill
from repro.selfmodel.whatif import ClusterSelfModel

from repro.models.catalog import register_model_builder

# The fitted cluster sits in the model catalog next to the paper's
# configurations, so generic CLI paths (solve/sweep/uncertainty
# --fitted) can load it by name.  Idempotent: re-imports re-register.
register_model_builder(
    "cluster", ClusterSelfModel.from_artifact, replace=True
)

__all__ = [
    "ClusterTopology",
    "build_cache_model",
    "build_cluster_hierarchy",
    "build_shard_model",
    "build_top_model",
    "build_worker_pool_model",
    "required_parameters",
    "FIT_SCHEMA",
    "FittedParameters",
    "FittedRate",
    "fit_parameters",
    "load_fit",
    "PREDICTION_SCHEMA",
    "load_prediction_report",
    "predict_availability",
    "render_prediction_report",
    "write_prediction_report",
    "binomial_interval",
    "intervals_overlap",
    "validate_prediction",
    "run_selfmodel_drill",
    "ClusterSelfModel",
]
