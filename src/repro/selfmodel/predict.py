"""Solve the fitted cluster model and put an interval on the prediction.

Point prediction: solve the hierarchy at the fitted point values.
Interval: propagate each fitted rate's confidence interval through the
model with a *corner sweep* — steady-state availability is monotone in
every individual rate of this topology (failure rates push it down,
recovery rates pull it up), so the extremes over the hyper-rectangle of
rate intervals are attained at its corners.  All ``2^m`` corners plus
the point solve go through one compiled
:meth:`~repro.hierarchy.composer.HierarchicalModel.solve_batch` call —
the same batch engine the paper-model sweeps use, and fully
deterministic (no sampling), so same-seed runs produce bit-identical
deterministic blocks.
"""

from __future__ import annotations

import itertools
import json
import pathlib
from typing import Any, Dict, Mapping, Optional, Union

import numpy as np

from repro.exceptions import SelfModelError
from repro.selfmodel.fit import FittedParameters, parameters_for
from repro.selfmodel.model import (
    build_cluster_hierarchy,
    model_shape,
    required_parameters,
)
from repro.selfmodel.topology import ClusterTopology

#: Version of the prediction-report JSON layout.
PREDICTION_SCHEMA = 1

#: Corner sweeps double per interval parameter; cap the blow-up.
MAX_INTERVAL_PARAMETERS = 12


def predict_availability(
    topology: ClusterTopology,
    fitted: FittedParameters,
    method: str = "auto",
    include_workers: Optional[bool] = None,
    include_cache: Optional[bool] = None,
    measurement: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """Predict steady-state availability (point + interval) for a cluster.

    Args:
        topology: Shape of the modeled cluster.
        fitted: Rates from :func:`repro.selfmodel.fit.fit_parameters`.
        method: Steady-state method for every constituent solve
            (``"auto"`` routes through the compiled engines).
        include_workers / include_cache: Override which optional tiers
            the model includes; by default a tier is included exactly
            when its rates were fitted *and* the topology carries it.
        measurement: The source measurement report; when given, its
            seed-pure fields are stamped into the deterministic block
            and the measured availability is echoed for validation.

    Returns:
        The schema-versioned prediction report (a plain dict, ready for
        :func:`write_prediction_report`).
    """
    if include_workers is None:
        include_workers = (
            topology.worker_processes >= 1 and "La_worker" in fitted.rates
        )
    if include_cache is None:
        include_cache = "La_cache" in fitted.rates
    rates = parameters_for(
        fitted,
        include_workers=include_workers,
        include_cache=include_cache,
    )
    hierarchy = build_cluster_hierarchy(
        topology,
        include_workers=include_workers,
        include_cache=include_cache,
    )
    interval_names = sorted(
        name for name, rate in rates.items() if rate.has_interval
    )
    if len(interval_names) > MAX_INTERVAL_PARAMETERS:
        raise SelfModelError(
            f"{len(interval_names)} interval parameters would need "
            f"{2 ** len(interval_names)} corner solves (cap "
            f"{2 ** MAX_INTERVAL_PARAMETERS}); reduce the interval set"
        )
    n_corners = 2 ** len(interval_names)
    n_samples = 1 + n_corners

    # Sample 0 is the point solve; samples 1.. are the interval corners.
    columns: Dict[str, Any] = {}
    for name, rate in rates.items():
        if name in interval_names:
            column = np.full(n_samples, rate.point)
            for corner, choice in enumerate(
                itertools.product((0, 1), repeat=len(interval_names))
            ):
                bits = dict(zip(interval_names, choice))
                column[1 + corner] = (
                    rate.upper if bits[name] else rate.lower
                )
            columns[name] = column
        else:
            columns[name] = rate.point

    solution = hierarchy.solve_batch(
        columns, n_samples=n_samples, method=method
    )
    point = solution.result_at(0)

    def band(values: np.ndarray) -> Dict[str, float]:
        return {
            "point": float(values[0]),
            "lower": float(values.min()),
            "upper": float(values.max()),
        }

    submodels: Dict[str, Any] = {}
    for name, report in point.submodels.items():
        submodels[name] = {
            "availability": report.interface.availability,
            "failure_rate_per_hour": report.interface.failure_rate,
            "recovery_rate_per_hour": report.interface.recovery_rate,
            "downtime_minutes": report.downtime_minutes,
            "downtime_fraction": report.downtime_fraction,
            "masked": not hierarchy.attributions.get(name),
        }

    shape = model_shape(
        topology,
        include_workers=include_workers,
        include_cache=include_cache,
    )
    deterministic: Dict[str, Any] = {
        "schema": PREDICTION_SCHEMA,
        "kind": "selfmodel-prediction",
        "seed": fitted.seed,
        "confidence": fitted.confidence,
        "method": method,
        "topology": topology.to_dict(),
        "model": shape,
        "parameters": sorted(
            required_parameters(
                include_workers=include_workers,
                include_cache=include_cache,
            )
        ),
        "interval_parameters": interval_names,
        "n_samples": n_samples,
    }
    if measurement is not None:
        source = measurement.get("deterministic", {})
        deterministic["measurement"] = {
            "seed": source.get("seed"),
            "n_shards": source.get("n_shards"),
            "n_probes": source.get("n_probes"),
            "kill_count": source.get("kill_count"),
            "schema": source.get("schema"),
        }

    report: Dict[str, Any] = {
        "schema": PREDICTION_SCHEMA,
        "kind": "selfmodel-prediction",
        "deterministic": deterministic,
        "seed": fitted.seed,
        "confidence": fitted.confidence,
        "fitted": {
            name: rate.to_dict() for name, rate in fitted.rates.items()
        },
        "diagnostics": fitted.diagnostics,
        "predicted": {
            "availability": band(solution.availability),
            "yearly_downtime_minutes": band(
                solution.yearly_downtime_minutes
            ),
            "mtbf_hours": band(solution.mtbf_hours),
            "mttr_hours": band(solution.system.mttr_hours),
        },
        "submodels": submodels,
        "bound_parameters": {
            name: float(column[0])
            for name, column in solution.bound_parameters.items()
        },
    }
    if measurement is not None:
        report["measured"] = {
            "probe_availability": measurement.get("probe_availability"),
            "n_probes": measurement.get("n_probes"),
            "probe_failures": measurement.get("probe_failures"),
            "empirical_availability": measurement.get(
                "empirical_availability"
            ),
            "mttr_seconds": measurement.get("mttr_seconds"),
            "mtbf_seconds": measurement.get("mtbf_seconds"),
        }
    return report


def write_prediction_report(
    report: Mapping[str, Any], path: Union[str, pathlib.Path]
) -> pathlib.Path:
    """Write the report as sorted-keys JSON; returns the path."""
    target = pathlib.Path(path)
    target.write_text(
        json.dumps(dict(report), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return target


def load_prediction_report(
    source: Union[str, pathlib.Path, Mapping[str, Any]],
) -> Dict[str, Any]:
    """Load a prediction report from a path or parsed mapping."""
    if isinstance(source, Mapping):
        report: Dict[str, Any] = dict(source)
    else:
        report = json.loads(
            pathlib.Path(source).read_text(encoding="utf-8")
        )
    if report.get("kind") != "selfmodel-prediction":
        raise SelfModelError(
            f"not a selfmodel prediction report: "
            f"kind={report.get('kind')!r}"
        )
    if report.get("schema") != PREDICTION_SCHEMA:
        raise SelfModelError(
            f"unsupported prediction schema {report.get('schema')!r} "
            f"(this library reads {PREDICTION_SCHEMA})"
        )
    return report


def render_prediction_report(report: Mapping[str, Any]) -> str:
    """Human-readable summary of one prediction report."""
    predicted = report["predicted"]
    availability = predicted["availability"]
    downtime = predicted["yearly_downtime_minutes"]
    topology = report["deterministic"]["topology"]
    lines = [
        f"selfmodel prediction (schema {report['schema']}, "
        f"seed {report['seed']})",
        f"topology: {topology['quorum']}-of-{topology['n_shards']} shards",
        f"predicted availability: {availability['point']:.9f} "
        f"[{availability['lower']:.9f}, {availability['upper']:.9f}] "
        f"({report['confidence']:.0%} rate CIs, corner propagation)",
        f"predicted downtime: {downtime['point']:.4g} min/yr "
        f"[{downtime['lower']:.4g}, {downtime['upper']:.4g}]",
    ]
    for name, sub in sorted(report.get("submodels", {}).items()):
        masked = " (masked)" if sub.get("masked") else ""
        lines.append(
            f"  {name}{masked}: A={sub['availability']:.6f}, "
            f"Lambda={sub['failure_rate_per_hour']:.4g}/h, "
            f"Mu={sub['recovery_rate_per_hour']:.4g}/h, "
            f"downtime share {sub['downtime_fraction']:.1%}"
        )
    validation = report.get("validation")
    if validation is not None:
        measured = validation["measured"]
        lines.append(
            f"measured probe availability: "
            f"{measured['probe_availability']:.6f} "
            f"[{measured['interval'][0]:.6f}, "
            f"{measured['interval'][1]:.6f}] "
            f"({measured['n_probes']} probes)"
        )
        lines.append(f"verdict: {validation['verdict'].upper()}")
    return "\n".join(lines)
