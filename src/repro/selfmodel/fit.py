"""Fit the cluster model's rates from a measurement report.

The paper's Table 1 step: turn observed data into model parameters with
uncertainty attached.  Sources, per parameter (all rates per hour):

========== ==================== =========================================
parameter  measurement           estimator
========== ==================== =========================================
La_shard   kills over exposure  :func:`repro.estimation.estimate_failure_rate`
                                (Eq. 2 life test; exact chi-squared CI)
Mu_detect  detect phase samples :func:`repro.estimation.exponential_rate_estimate`
Mu_restore respawn phase samples                 (same, exact chi-squared CI)
La_worker  (none observed)      Eq. 2 n=0 conservative upper bound
Mu_worker  (not measured)       tied to ``Mu_restore``
La_cache   kills (a respawned   same life test as ``La_shard``
           shard restarts cold)
Mu_cache   (not measured)       tied to ``Mu_restore``
========== ==================== =========================================

The composite ``restore`` phase (killed -> ready) is *not* a parameter —
the model's Failed -> Restoring -> Up path already composes it — but it
is fitted as a consistency diagnostic: ``1/Mu_detect + 1/Mu_restore``
should track the measured mean restore time.

Kill schedules are seeded, so a drill's ``kill_count`` is seed-pure;
exposure is wall-clock.  Every fitted *point* value is therefore
deterministic only given the same artifact — which is why prediction
reports put parameter *names*, never values, in their deterministic
block.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from repro.exceptions import SelfModelError
from repro.selfmodel.model import (
    CACHE_PARAMETERS,
    SHARD_PARAMETERS,
    WORKER_PARAMETERS,
)

#: Version of the fit-artifact JSON layout.
FIT_SCHEMA = 1

SECONDS_PER_HOUR = 3600.0

#: Floor for interval lower bounds (per hour): keeps corner solves away
#: from exactly-zero rates (a zero failure rate makes the up state
#: absorbing, which is fine analytically but degenerate numerically).
RATE_FLOOR = 1e-9


@dataclass(frozen=True)
class FittedRate:
    """One model parameter with its fitted value and interval.

    Attributes:
        name: Model parameter name (e.g. ``"Mu_detect"``).
        point: Fitted point value (per hour) — what the point solve uses.
        lower / upper: Confidence bounds (per hour); equal to ``point``
            when no interval could be fitted.
        n: Observations behind the fit (samples or failures).
        confidence: Level of ``[lower, upper]``.
        source: Where the number came from (``"phase:detect"``,
            ``"life-test"``, ``"tied:Mu_restore"``).
        method: Estimator used (``"exponential_mle"``,
            ``"eq2_life_test"``, ``"tied"``).
        conservative: True when the point is itself a conservative
            bound (the paper's n=0 practice), not an MLE.
    """

    name: str
    point: float
    lower: float
    upper: float
    n: int
    confidence: float
    source: str
    method: str
    conservative: bool = False

    def __post_init__(self) -> None:
        if not self.point > 0.0:
            raise SelfModelError(
                f"fitted rate {self.name!r} must be positive, "
                f"got {self.point}"
            )
        if not self.lower <= self.point <= self.upper:
            raise SelfModelError(
                f"fitted rate {self.name!r} has an inconsistent interval "
                f"[{self.lower}, {self.upper}] around {self.point}"
            )

    @property
    def has_interval(self) -> bool:
        """True when the bounds genuinely bracket the point."""
        return self.lower < self.upper

    @property
    def mean_hours(self) -> float:
        """Implied mean sojourn, hours."""
        return 1.0 / self.point

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "point": self.point,
            "lower": self.lower,
            "upper": self.upper,
            "n": self.n,
            "confidence": self.confidence,
            "source": self.source,
            "method": self.method,
            "conservative": self.conservative,
        }

    @classmethod
    def from_dict(cls, document: Mapping[str, Any]) -> "FittedRate":
        return cls(
            name=str(document["name"]),
            point=float(document["point"]),
            lower=float(document["lower"]),
            upper=float(document["upper"]),
            n=int(document["n"]),
            confidence=float(document["confidence"]),
            source=str(document["source"]),
            method=str(document["method"]),
            conservative=bool(document.get("conservative", False)),
        )


@dataclass(frozen=True)
class FittedParameters:
    """The full fitted parameter set plus fit diagnostics."""

    seed: int
    n_shards: int
    confidence: float
    rates: Dict[str, FittedRate]
    diagnostics: Dict[str, Any] = field(default_factory=dict)

    def point_values(self) -> Dict[str, float]:
        """Parameter name -> point value, ready for a hierarchy solve."""
        return {name: rate.point for name, rate in self.rates.items()}

    def interval_parameters(self) -> Tuple[str, ...]:
        """Names of parameters with a genuine interval, sorted."""
        return tuple(
            sorted(
                name
                for name, rate in self.rates.items()
                if rate.has_interval
            )
        )

    def require(self, names: Tuple[str, ...]) -> None:
        missing = [name for name in names if name not in self.rates]
        if missing:
            raise SelfModelError(
                f"fitted parameters missing {missing}; available: "
                f"{sorted(self.rates)}"
            )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": FIT_SCHEMA,
            "kind": "selfmodel-fit",
            "seed": self.seed,
            "n_shards": self.n_shards,
            "confidence": self.confidence,
            "rates": {
                name: rate.to_dict() for name, rate in self.rates.items()
            },
            "diagnostics": self.diagnostics,
        }

    @classmethod
    def from_dict(cls, document: Mapping[str, Any]) -> "FittedParameters":
        if document.get("kind") != "selfmodel-fit":
            raise SelfModelError(
                f"not a selfmodel fit artifact: kind={document.get('kind')!r}"
            )
        if document.get("schema") != FIT_SCHEMA:
            raise SelfModelError(
                f"unsupported fit schema {document.get('schema')!r} "
                f"(this library reads {FIT_SCHEMA})"
            )
        return cls(
            seed=int(document.get("seed", 0)),
            n_shards=int(document.get("n_shards", 0)),
            confidence=float(document.get("confidence", 0.95)),
            rates={
                name: FittedRate.from_dict(rate)
                for name, rate in document.get("rates", {}).items()
            },
            diagnostics=dict(document.get("diagnostics", {})),
        )

    def write(self, path: Union[str, pathlib.Path]) -> pathlib.Path:
        target = pathlib.Path(path)
        target.write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return target

    def summary(self) -> str:
        lines = [
            f"fitted cluster parameters (seed {self.seed}, "
            f"{self.confidence:.0%} intervals)"
        ]
        for name in sorted(self.rates):
            rate = self.rates[name]
            marker = " [conservative]" if rate.conservative else ""
            lines.append(
                f"  {name}: {rate.point:.4g}/h "
                f"[{rate.lower:.4g}, {rate.upper:.4g}] "
                f"(n={rate.n}, {rate.source}){marker}"
            )
        return "\n".join(lines)


def _phase_rate(
    name: str, estimate: Any, phase: str
) -> FittedRate:
    """Per-hour :class:`FittedRate` from a per-second phase estimate."""
    hourly = estimate.scaled(SECONDS_PER_HOUR)
    return FittedRate(
        name=name,
        point=hourly.rate,
        lower=max(hourly.lower, RATE_FLOOR),
        upper=hourly.upper,
        n=hourly.n,
        confidence=hourly.confidence,
        source=f"phase:{phase}",
        method="exponential_mle",
    )


def fit_parameters(
    measurement: Union[str, pathlib.Path, Mapping[str, Any]],
    confidence: float = 0.95,
    include_workers: bool = False,
    include_cache: bool = False,
    worker_processes: int = 0,
) -> FittedParameters:
    """Fit every cluster-model rate from one measurement report.

    Args:
        measurement: Path to a measurement report JSON, or the parsed
            report (v1 artifacts are upgraded by the loader shim).
        confidence: Level for every fitted interval.
        include_workers: Also fit the worker-pool tier's rates.  No
            worker deaths are observed in a kill drill, so ``La_worker``
            is the Eq. 2 n=0 conservative upper bound over the summed
            worker exposure — useful for what-if sweeps, deliberately
            pessimistic for prediction.
        include_cache: Also fit the cache tier's rates (cache loss
            piggybacks on shard kills: a respawned shard restarts cold).
        worker_processes: Workers per shard (needed for the worker
            exposure when ``include_workers``).

    Raises:
        SelfModelError: When the report lacks the phase samples or
            exposure the shard fit needs.
    """
    from repro.estimation.failure_rate import estimate_failure_rate
    from repro.obs.monitor import EstimationInputs, load_measurement_report

    report = load_measurement_report(measurement)
    inputs = EstimationInputs.from_report(report)
    if not inputs.detect or not inputs.respawn:
        raise SelfModelError(
            "measurement report has no complete shard recovery episodes "
            "(need detect + respawn phase samples); run the drill with "
            "kills >= 1 and probes > 0"
        )
    if inputs.shard_exposure_seconds <= 0.0:
        raise SelfModelError(
            "measurement report has zero shard exposure; cannot fit a "
            "failure rate (paper Eq. 2 needs T > 0)"
        )
    phase_rates = inputs.rates(confidence)
    rates: Dict[str, FittedRate] = {}
    rates["Mu_detect"] = _phase_rate(
        "Mu_detect", phase_rates["detect"], "detect"
    )
    rates["Mu_restore"] = _phase_rate(
        "Mu_restore", phase_rates["respawn"], "respawn"
    )

    exposure_hours = inputs.shard_exposure_seconds / SECONDS_PER_HOUR
    # estimate_failure_rate's bounds are each one-sided; pass the
    # central-interval equivalent so [lower, upper] matches the phase
    # estimates' central `confidence` convention.
    one_sided = 1.0 - (1.0 - confidence) / 2.0
    life_test = estimate_failure_rate(
        inputs.kill_count, exposure_hours, one_sided
    )
    if inputs.kill_count > 0:
        rates["La_shard"] = FittedRate(
            name="La_shard",
            point=life_test.point,
            lower=max(life_test.lower, RATE_FLOOR),
            upper=life_test.upper,
            n=inputs.kill_count,
            confidence=confidence,
            source="life-test",
            method="eq2_life_test",
        )
    else:
        # The paper's n=0 practice: no failures observed, use the
        # conservative upper bound as the modeled rate.
        rates["La_shard"] = FittedRate(
            name="La_shard",
            point=life_test.upper,
            lower=RATE_FLOOR,
            upper=life_test.upper,
            n=0,
            confidence=confidence,
            source="life-test",
            method="eq2_life_test",
            conservative=True,
        )

    if include_workers:
        workers = worker_processes or 1
        worker_exposure = exposure_hours * workers
        worker_test = estimate_failure_rate(0, worker_exposure, confidence)
        rates["La_worker"] = FittedRate(
            name="La_worker",
            point=worker_test.upper,
            lower=RATE_FLOOR,
            upper=worker_test.upper,
            n=0,
            confidence=confidence,
            source="life-test:workers",
            method="eq2_life_test",
            conservative=True,
        )
        rates["Mu_worker"] = FittedRate(
            name="Mu_worker",
            point=rates["Mu_restore"].point,
            lower=rates["Mu_restore"].point,
            upper=rates["Mu_restore"].point,
            n=rates["Mu_restore"].n,
            confidence=confidence,
            source="tied:Mu_restore",
            method="tied",
        )
    if include_cache:
        rates["La_cache"] = FittedRate(
            name="La_cache",
            point=rates["La_shard"].point,
            lower=rates["La_shard"].lower,
            upper=rates["La_shard"].upper,
            n=rates["La_shard"].n,
            confidence=confidence,
            source="tied:La_shard",
            method="tied",
            conservative=rates["La_shard"].conservative,
        )
        rates["Mu_cache"] = FittedRate(
            name="Mu_cache",
            point=rates["Mu_restore"].point,
            lower=rates["Mu_restore"].point,
            upper=rates["Mu_restore"].point,
            n=rates["Mu_restore"].n,
            confidence=confidence,
            source="tied:Mu_restore",
            method="tied",
        )

    diagnostics = _diagnostics(report, inputs, phase_rates, rates)
    return FittedParameters(
        seed=int(report.get("seed", 0)),
        n_shards=int(report.get("n_shards", 0)),
        confidence=confidence,
        rates=rates,
        diagnostics=diagnostics,
    )


def _diagnostics(
    report: Mapping[str, Any],
    inputs: Any,
    phase_rates: Mapping[str, Any],
    rates: Mapping[str, FittedRate],
) -> Dict[str, Any]:
    """Consistency checks between the fit and the raw measurement."""
    diagnostics: Dict[str, Any] = {
        "phase_rates_per_second": {
            phase: estimate.to_dict()
            for phase, estimate in phase_rates.items()
        },
        "shard_exposure_seconds": inputs.shard_exposure_seconds,
        "kill_count": inputs.kill_count,
    }
    # Composite-phase cross-check: the model's Failed -> Restoring -> Up
    # path implies a mean outage of 1/Mu_detect + 1/Mu_restore, which
    # should track the directly-measured killed -> ready mean.
    restore = phase_rates.get("restore")
    if restore is not None:
        composed = (
            1.0 / phase_rates["detect"].rate
            + 1.0 / phase_rates["respawn"].rate
        )
        measured = restore.mean_duration
        diagnostics["composed_mean_outage_seconds"] = composed
        diagnostics["measured_mean_restore_seconds"] = measured
        diagnostics["restore_consistency_ratio"] = (
            composed / measured if measured > 0 else None
        )
    mttr = report.get("mttr_seconds")
    if mttr:
        model_mttr = (
            1.0 / rates["Mu_detect"].point + 1.0 / rates["Mu_restore"].point
        ) * SECONDS_PER_HOUR
        diagnostics["measured_mttr_seconds"] = mttr
        diagnostics["model_shard_mttr_seconds"] = model_mttr
    return diagnostics


def load_fit(
    source: Union[str, pathlib.Path, Mapping[str, Any]],
) -> FittedParameters:
    """Load a fit artifact from a path or parsed mapping."""
    if isinstance(source, Mapping):
        return FittedParameters.from_dict(source)
    return FittedParameters.from_dict(
        json.loads(pathlib.Path(source).read_text(encoding="utf-8"))
    )


def parameters_for(
    fitted: FittedParameters,
    include_workers: bool = False,
    include_cache: bool = False,
) -> Dict[str, FittedRate]:
    """The subset of fitted rates one hierarchy variant consumes."""
    names = list(SHARD_PARAMETERS)
    if include_workers:
        names.extend(WORKER_PARAMETERS)
    if include_cache:
        names.extend(CACHE_PARAMETERS)
    fitted.require(tuple(names))
    return {name: fitted.rates[name] for name in names}
