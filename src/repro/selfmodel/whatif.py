"""What-if interface: the fitted cluster model as a first-class config.

:class:`ClusterSelfModel` gives the fitted cluster the same surface as
the paper's Config 1-4 (:class:`~repro.models.jsas.JsasConfiguration`):
``solve`` / ``solve_batch`` with baked-in base values, a batch-capable
metric for :func:`~repro.sensitivity.parametric.parametric_sweep`, and
an :class:`~repro.uncertainty.analysis.UncertaintyAnalysis` whose
distributions come straight from the fitted rate intervals.  That is
what lets the ``solve`` / ``sweep`` / ``uncertainty`` CLI paths load
*our own stack* next to the paper's configurations — sweep the respawn
rate, resize the shard count, and read the availability consequences
off the same engines.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, Mapping, Optional, Union

from repro.exceptions import SelfModelError
from repro.selfmodel.fit import (
    FittedParameters,
    fit_parameters,
    load_fit,
    parameters_for,
)
from repro.selfmodel.model import build_cluster_hierarchy
from repro.selfmodel.topology import ClusterTopology


class ClusterSelfModel:
    """The fitted cluster hierarchy with its base parameter values.

    Duck-type compatible with
    :class:`~repro.models.jsas.JsasConfiguration` where the generic
    drivers need it (``solve``, ``solve_batch``, ``name``), so
    :class:`~repro.models.jsas.configs.HierarchicalConfigMetric` routes
    sweeps and uncertainty batches through the compiled engine
    unchanged.
    """

    def __init__(
        self,
        topology: ClusterTopology,
        fitted: FittedParameters,
        include_workers: Optional[bool] = None,
        include_cache: Optional[bool] = None,
    ) -> None:
        if include_workers is None:
            include_workers = (
                topology.worker_processes >= 1
                and "La_worker" in fitted.rates
            )
        if include_cache is None:
            include_cache = "La_cache" in fitted.rates
        self.topology = topology
        self.fitted = fitted
        self.include_workers = include_workers
        self.include_cache = include_cache
        self.rates = parameters_for(
            fitted,
            include_workers=include_workers,
            include_cache=include_cache,
        )
        self.hierarchy = build_cluster_hierarchy(
            topology,
            include_workers=include_workers,
            include_cache=include_cache,
        )
        self.base_values: Dict[str, float] = {
            name: rate.point for name, rate in self.rates.items()
        }

    @property
    def name(self) -> str:
        return f"cluster-{self.topology.quorum}of{self.topology.n_shards}"

    @classmethod
    def from_artifact(
        cls,
        source: Union[str, pathlib.Path, Mapping[str, Any]],
        quorum: Optional[int] = None,
        n_shards: Optional[int] = None,
        confidence: float = 0.95,
    ) -> "ClusterSelfModel":
        """Build from any selfmodel artifact on disk (or parsed).

        Accepts, by ``"kind"``:

        * ``selfmodel-prediction`` — topology and fitted rates are both
          embedded; the round-trip artifact of choice.
        * ``selfmodel-fit`` — fitted rates; the topology is rebuilt
          from the fit's shard count (override with ``n_shards``).
        * ``measurement`` — fits on the fly from the raw measurement.
        * ``failover-drill`` — uses the embedded measurement block.
        """
        if isinstance(source, Mapping):
            document: Dict[str, Any] = dict(source)
        else:
            document = json.loads(
                pathlib.Path(source).read_text(encoding="utf-8")
            )
        kind = document.get("kind")
        if kind == "selfmodel-prediction":
            topology = ClusterTopology.from_dict(
                document["deterministic"]["topology"]
            )
            fitted = FittedParameters(
                seed=int(document.get("seed", 0)),
                n_shards=topology.n_shards,
                confidence=float(document.get("confidence", confidence)),
                rates={
                    name: _rate_from_dict(rate)
                    for name, rate in document.get("fitted", {}).items()
                },
                diagnostics=dict(document.get("diagnostics", {})),
            )
        elif kind == "selfmodel-fit":
            fitted = load_fit(document)
            topology = ClusterTopology(
                n_shards=n_shards or fitted.n_shards or 1,
                quorum=quorum or 1,
                source="fit-artifact",
            )
        elif kind == "measurement":
            fitted = fit_parameters(document, confidence=confidence)
            topology = ClusterTopology(
                n_shards=n_shards or fitted.n_shards or 1,
                quorum=quorum or 1,
                source="measurement",
            )
        elif kind == "failover-drill":
            measurement = document.get("measurement")
            if not measurement:
                raise SelfModelError(
                    "drill report carries no measurement block; rerun "
                    "the drill with --probes > 0"
                )
            fitted = fit_parameters(measurement, confidence=confidence)
            topology = ClusterTopology(
                n_shards=n_shards or int(document.get("n_shards") or 0),
                quorum=quorum or 1,
                source="failover-drill",
            )
        else:
            raise SelfModelError(
                f"unrecognized selfmodel artifact kind {kind!r}; expected "
                "selfmodel-prediction, selfmodel-fit, measurement, or "
                "failover-drill"
            )
        if quorum is not None and topology.quorum != quorum:
            topology = ClusterTopology.from_dict(
                {**topology.to_dict(), "quorum": quorum}
            )
        return cls(topology, fitted)

    def solve(
        self,
        values: Optional[Mapping[str, float]] = None,
        method: str = "auto",
        abstraction: str = "mttf",
    ) -> Any:
        """Solve at the fitted base values, with optional overrides."""
        merged = dict(self.base_values)
        if values:
            merged.update(
                (name, value)
                for name, value in values.items()
                if name in self.base_values
            )
        return self.hierarchy.solve(
            merged, method=method, abstraction=abstraction
        )

    def solve_batch(
        self,
        values: Mapping[str, Any],
        n_samples: Optional[int] = None,
        method: str = "auto",
        abstraction: str = "mttf",
    ) -> Any:
        """Batched solve; non-overridden parameters stay at base values."""
        merged: Dict[str, Any] = dict(self.base_values)
        merged.update(
            (name, value)
            for name, value in values.items()
            if name in self.base_values
        )
        return self.hierarchy.solve_batch(
            merged,
            n_samples=n_samples,
            method=method,
            abstraction=abstraction,
        )

    def metric(
        self, metric: str = "availability", method: str = "auto"
    ) -> Any:
        """A batch-capable metric callable for sweeps / uncertainty."""
        from repro.models.jsas.configs import HierarchicalConfigMetric

        return HierarchicalConfigMetric(self, metric=metric, method=method)

    def uncertainty_analysis(
        self, metric: str = "yearly_downtime_minutes", method: str = "auto"
    ) -> Any:
        """Uncertainty analysis over the fitted rate intervals.

        Each parameter with a genuine interval varies uniformly over
        ``[lower, upper]`` (the paper's §7 treatment of its own ranged
        parameters); point-only parameters stay fixed.
        """
        from repro.uncertainty.analysis import UncertaintyAnalysis
        from repro.uncertainty.distributions import Uniform

        distributions = {
            name: Uniform(rate.lower, rate.upper)
            for name, rate in self.rates.items()
            if rate.has_interval
        }
        if not distributions:
            raise SelfModelError(
                "no fitted parameter carries an interval; nothing to vary"
            )
        return UncertaintyAnalysis(
            metric=self.metric(metric=metric, method=method),
            distributions=distributions,
            base_values=dict(self.base_values),
            metric_name=metric,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ClusterSelfModel({self.topology.describe()!r}, "
            f"parameters={sorted(self.base_values)})"
        )


def _rate_from_dict(document: Mapping[str, Any]) -> Any:
    from repro.selfmodel.fit import FittedRate

    return FittedRate.from_dict(document)
