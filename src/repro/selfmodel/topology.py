"""Cluster topology: what the selfmodel models.

The paper starts from the deployed system's architecture (N application
server instances, HADB node pairs, a load balancer) and turns it into a
model topology.  This module does the same for *our* production stack —
the consistent-hash sharded cluster of :mod:`repro.service.cluster`:

* each **shard** is the AS-instance analog (an OS process that can be
  killed, detected dead, respawned and re-admitted to the ring);
* the **router** is the composition point: the service is up while at
  least ``quorum`` shards serve (k-of-n, default 1 — the ring forwards
  to any live owner);
* each shard optionally carries a **pre-forked worker pool** and a
  **solve cache** as sub-tiers (the HADB-pair analogs).

A :class:`ClusterTopology` can be derived from a live deployment
(:func:`ClusterTopology.from_cluster_config` /
:func:`ClusterTopology.from_cluster_status`) or constructed directly,
and round-trips through JSON for the prediction report's deterministic
block.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

from repro.exceptions import SelfModelError


@dataclass(frozen=True)
class ClusterTopology:
    """Shape of the modeled cluster (counts only; no rates).

    Attributes:
        n_shards: Shard processes behind the router.
        quorum: Minimum live shards for the service to count as up.
            The default 1 matches the router's behavior: requests fail
            over along the ring, so one live shard keeps serving.
        worker_processes: Pre-forked solver workers per shard (0 when
            shards solve in-process).
        cache_size: Solve-cache entries per shard (0 disables the
            cache tier).
        replicas: Virtual nodes per shard on the consistent-hash ring
            (recorded for provenance; the availability model does not
            depend on it).
    """

    n_shards: int
    quorum: int = 1
    worker_processes: int = 0
    cache_size: int = 0
    replicas: int = 0
    source: str = field(default="manual", compare=False)

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise SelfModelError(
                f"topology needs at least one shard, got {self.n_shards}"
            )
        if not 1 <= self.quorum <= self.n_shards:
            raise SelfModelError(
                f"quorum must be in [1, n_shards]; got quorum={self.quorum} "
                f"with n_shards={self.n_shards}"
            )
        if self.worker_processes < 0 or self.cache_size < 0:
            raise SelfModelError(
                "worker_processes and cache_size must be non-negative"
            )

    @classmethod
    def from_cluster_config(
        cls, config: Any, quorum: int = 1
    ) -> "ClusterTopology":
        """Derive the topology from a :class:`~repro.service.cluster.ClusterConfig`."""
        return cls(
            n_shards=config.n_shards,
            quorum=quorum,
            worker_processes=config.shard.worker_processes,
            cache_size=config.shard.cache_size,
            replicas=config.replicas,
            source="cluster-config",
        )

    @classmethod
    def from_cluster_status(
        cls,
        status: Mapping[str, Any],
        quorum: int = 1,
        worker_processes: Optional[int] = None,
        cache_size: Optional[int] = None,
    ) -> "ClusterTopology":
        """Derive the topology from a ``/cluster/status`` document.

        The status endpoint reports ring membership, not per-shard
        process configuration, so ``worker_processes`` / ``cache_size``
        can be supplied when known (they default to 0 / unknown).
        """
        if "n_shards" not in status:
            raise SelfModelError(
                "not a cluster status document: missing 'n_shards'"
            )
        return cls(
            n_shards=int(status["n_shards"]),
            quorum=quorum,
            worker_processes=int(worker_processes or 0),
            cache_size=int(cache_size or 0),
            replicas=int(status.get("replicas") or 0),
            source="cluster-status",
        )

    @classmethod
    def from_dict(cls, document: Mapping[str, Any]) -> "ClusterTopology":
        """Rebuild a topology from its :meth:`to_dict` form."""
        return cls(
            n_shards=int(document["n_shards"]),
            quorum=int(document.get("quorum", 1)),
            worker_processes=int(document.get("worker_processes", 0)),
            cache_size=int(document.get("cache_size", 0)),
            replicas=int(document.get("replicas", 0)),
            source=str(document.get("source", "manual")),
        )

    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON form (embedded in report deterministic blocks)."""
        return {
            "n_shards": self.n_shards,
            "quorum": self.quorum,
            "worker_processes": self.worker_processes,
            "cache_size": self.cache_size,
            "replicas": self.replicas,
            "source": self.source,
        }

    def describe(self) -> str:
        """One-line human summary."""
        tiers = []
        if self.worker_processes:
            tiers.append(f"{self.worker_processes} worker(s)/shard")
        if self.cache_size:
            tiers.append(f"cache[{self.cache_size}]/shard")
        suffix = f" ({', '.join(tiers)})" if tiers else ""
        return (
            f"{self.quorum}-of-{self.n_shards} sharded cluster{suffix}"
        )
