"""One-shot closed loop: drill -> measure -> fit -> predict -> compare.

The paper's whole methodology as a single call: run a seeded failover
drill with probing enabled, fit the cluster model's rates from the
drill's own phase samples and kill exposure, solve the hierarchical
model, and attach the agreement verdict against the measured probe
availability.  Everything seed-pure lands in the prediction report's
deterministic block, so two same-seed runs diff clean — the property
the ``selfmodel-smoke`` CI job asserts.
"""

from __future__ import annotations

import pathlib
from typing import Any, Dict, Optional, Union

from repro.exceptions import SelfModelError
from repro.selfmodel.fit import fit_parameters
from repro.selfmodel.predict import (
    predict_availability,
    write_prediction_report,
)
from repro.selfmodel.topology import ClusterTopology
from repro.selfmodel.validate import validate_prediction


def run_selfmodel_drill(
    n_shards: int = 4,
    requests: int = 32,
    kills: int = 2,
    seed: int = 2004,
    probes: int = 8,
    quorum: int = 1,
    confidence: float = 0.95,
    method: str = "auto",
    report_path: Union[str, pathlib.Path, None] = None,
    measurement_path: Union[str, pathlib.Path, None] = None,
    prediction_path: Union[str, pathlib.Path, None] = None,
    trace_dir: Union[str, pathlib.Path, None] = None,
    min_failures: int = 2,
    shard_worker_processes: Optional[int] = None,
) -> Dict[str, Any]:
    """Run the full measurement -> model -> prediction loop once.

    Args:
        n_shards / requests / kills / seed / probes: Drill shape; see
            :func:`repro.chaos.failover.run_failover_drill`.  At least
            one kill and one probe are required — without kills there
            are no recovery phases to fit, without probes no measured
            availability to validate against.
        quorum: Minimum serving shards for "up" in the model (default
            1, matching the router's failover behavior).
        confidence: Level for every fitted interval and the measured
            binomial interval.
        method: Steady-state method for the model solves.
        report_path / measurement_path / prediction_path: Optional
            artifact paths (drill report, measurement report,
            prediction report).
        trace_dir: Optional distributed-trace directory for the drill.
        shard_worker_processes: Pre-forked solver workers per shard
            (drill pass-through; also recorded in the topology).

    Returns:
        ``{"drill": FailoverReport, "topology": ClusterTopology,
        "fitted": FittedParameters, "prediction": dict}`` where the
        prediction report carries the ``"validation"`` verdict.
    """
    from repro.chaos.failover import run_failover_drill

    if kills < 1:
        raise SelfModelError(
            "the selfmodel loop needs kills >= 1 (no kills, no recovery "
            "phases to fit)"
        )
    if probes < 1:
        raise SelfModelError(
            "the selfmodel loop needs probes >= 1 (no probes, no "
            "measured availability to validate against)"
        )
    drill = run_failover_drill(
        n_shards=n_shards,
        requests=requests,
        kills=kills,
        seed=seed,
        report_path=report_path,
        probes=probes,
        min_failures=min_failures,
        trace_dir=trace_dir,
        measurement_path=measurement_path,
        shard_worker_processes=shard_worker_processes,
    )
    measurement = drill.measurement
    if measurement is None:
        raise SelfModelError(
            "drill produced no measurement block despite probes >= 1"
        )
    topology = ClusterTopology(
        n_shards=n_shards,
        quorum=quorum,
        worker_processes=shard_worker_processes or 0,
        cache_size=0,
        source="failover-drill",
    )
    fitted = fit_parameters(measurement, confidence=confidence)
    prediction = predict_availability(
        topology,
        fitted,
        method=method,
        measurement=measurement,
    )
    prediction["validation"] = validate_prediction(
        prediction, measurement, confidence=confidence
    )
    if prediction_path is not None:
        write_prediction_report(prediction, prediction_path)
    return {
        "drill": drill,
        "topology": topology,
        "fitted": fitted,
        "prediction": prediction,
    }
