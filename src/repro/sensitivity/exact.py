"""Exact stationary-distribution sensitivities (adjoint method).

For an irreducible CTMC with stationary vector pi solving ``pi Q = 0``,
``pi 1 = 1``, differentiating with respect to a parameter theta gives the
linear system::

    (d pi) Q = - pi (d Q),      (d pi) 1 = 0

which has a unique solution when Q is irreducible.  ``dQ`` itself is
assembled by differentiating each transition-rate expression (central
differences on the *rates*, which are smooth elementary functions of the
parameters — so the only approximation error is the tiny FD error on
scalar rate values, not on the chain solution).

Compared to finite-differencing the availability itself
(:mod:`repro.sensitivity.local`), this is numerically far better
conditioned for highly-available systems: differencing two availabilities
that agree to 6+ digits loses half the significand, while the adjoint
solve keeps full precision.  The agreement between the two is itself a
library self-check (tested).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

import numpy as np

from repro.core.model import MarkovModel
from repro.ctmc.generator import GeneratorMatrix, build_generator
from repro.ctmc.steady_state import steady_state_vector
from repro.exceptions import EstimationError, SolverError
from repro.units import MINUTES_PER_YEAR


def generator_parameter_derivative(
    model: MarkovModel,
    values: Mapping[str, float],
    parameter: str,
    relative_step: float = 1e-6,
) -> np.ndarray:
    """``dQ/d theta`` as a dense matrix (rates differentiated pointwise)."""
    if parameter not in values:
        raise EstimationError(
            f"parameter {parameter!r} is not in the supplied values"
        )
    x = float(values[parameter])
    step = abs(x) * relative_step if x != 0.0 else relative_step
    up = dict(values)
    down = dict(values)
    up[parameter] = x + step
    down[parameter] = x - step
    names = model.state_names
    index = {name: i for i, name in enumerate(names)}
    n = len(names)
    dq = np.zeros((n, n))
    for transition in model.transitions:
        if parameter not in transition.rate.variables:
            continue
        derivative = (
            transition.rate_value(up) - transition.rate_value(down)
        ) / (2.0 * step)
        i, j = index[transition.source], index[transition.target]
        dq[i, j] += derivative
        dq[i, i] -= derivative
    return dq


def stationary_derivative(
    generator: GeneratorMatrix,
    dq: np.ndarray,
    pi: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Solve ``(d pi) Q = -pi dQ`` with ``(d pi) 1 = 0``."""
    q = generator.dense()
    n = q.shape[0]
    if dq.shape != (n, n):
        raise SolverError(
            f"dQ shape {dq.shape} does not match the generator ({n} states)"
        )
    if pi is None:
        pi = steady_state_vector(generator)
    rhs = -(pi @ dq)
    a = q.T.copy()
    # Replace the last balance equation by the zero-sum constraint; the
    # dropped equation is linearly dependent on the rest.
    a[n - 1, :] = 1.0
    b = rhs.copy()
    b[n - 1] = 0.0
    try:
        dpi = np.linalg.solve(a, b)
    except np.linalg.LinAlgError as exc:
        raise SolverError(f"sensitivity system is singular: {exc}") from exc
    return dpi


def availability_derivatives(
    model: MarkovModel,
    values: Mapping[str, float],
    parameters: Sequence[str],
    scaled: bool = False,
) -> Dict[str, float]:
    """``d(availability)/d theta`` for each parameter, exactly.

    Args:
        model: The availability model.
        values: Operating point.
        parameters: Parameters to differentiate with respect to.
        scaled: If True, return elasticities of the *unavailability*
            (``theta / U * dU/d theta`` with ``U = 1 - A``) — the useful
            scaled quantity for HA systems (availability elasticities are
            all ~0 because A ~ 1).

    Returns:
        ``{parameter: derivative_or_elasticity}``.
    """
    generator = build_generator(model, values)
    pi = steady_state_vector(generator)
    up = generator.up_mask()
    out: Dict[str, float] = {}
    unavailability = float(pi[~up].sum()) if (~up).any() else 0.0
    for parameter in parameters:
        dq = generator_parameter_derivative(model, values, parameter)
        dpi = stationary_derivative(generator, dq, pi=pi)
        da = float(dpi[up].sum())
        if scaled:
            if unavailability <= 0.0:
                raise EstimationError(
                    "cannot scale: the model has zero unavailability"
                )
            out[parameter] = -da * float(values[parameter]) / unavailability
        else:
            out[parameter] = da
    return out


def downtime_derivatives(
    model: MarkovModel,
    values: Mapping[str, float],
    parameters: Sequence[str],
) -> Dict[str, float]:
    """Derivative of yearly downtime (minutes) per unit parameter change.

    Directly actionable numbers: "one more failure per year costs X
    minutes of annual downtime".
    """
    derivatives = availability_derivatives(model, values, parameters)
    return {
        name: -value * MINUTES_PER_YEAR
        for name, value in derivatives.items()
    }
