"""Local (derivative-based) sensitivity analysis."""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Sequence

from repro.exceptions import EstimationError

MetricFunction = Callable[[Dict[str, float]], float]


def local_sensitivities(
    metric: MetricFunction,
    parameters: Sequence[str],
    base_values: Mapping[str, float],
    relative_step: float = 1e-4,
    scaled: bool = True,
) -> Dict[str, float]:
    """Central finite-difference sensitivities of a metric.

    Args:
        metric: Callable from a parameter dict to the metric value.
        parameters: Names to differentiate with respect to.
        base_values: The operating point.
        relative_step: Step size as a fraction of each parameter value.
        scaled: If True (default) return *elasticities*
            ``(x / f) * df/dx`` — the percent change in the metric per
            percent change in the parameter — which are comparable across
            parameters with wildly different units.  If False, raw
            derivatives.

    Returns:
        ``{parameter: sensitivity}``.
    """
    if relative_step <= 0.0:
        raise EstimationError(f"step must be positive, got {relative_step}")
    base = dict(base_values)
    f0 = float(metric(base))
    out: Dict[str, float] = {}
    for name in parameters:
        if name not in base:
            raise EstimationError(
                f"parameter {name!r} is not in the base values"
            )
        x = base[name]
        step = abs(x) * relative_step
        if step == 0.0:
            step = relative_step
        up = dict(base)
        down = dict(base)
        up[name] = x + step
        down[name] = x - step
        derivative = (float(metric(up)) - float(metric(down))) / (2.0 * step)
        if scaled:
            if f0 == 0.0:
                raise EstimationError(
                    "cannot scale sensitivities: metric is zero at the "
                    "base point"
                )
            out[name] = derivative * x / f0
        else:
            out[name] = derivative
    return out
