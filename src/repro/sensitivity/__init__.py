"""Parametric and sensitivity analysis.

* :func:`~repro.sensitivity.parametric.parametric_sweep` — evaluate a
  metric along a 1-D parameter grid (the paper's Figs. 5–6).
* :func:`~repro.sensitivity.parametric.parametric_sweep_2d` — 2-D grids.
* :func:`~repro.sensitivity.local.local_sensitivities` — scaled
  finite-difference derivatives around a base point.
* :func:`~repro.sensitivity.importance.downtime_importance` — rank
  parameters by their contribution to metric variation over ranges.
"""

from repro.sensitivity.parametric import (
    SweepResult,
    parametric_sweep,
    parametric_sweep_2d,
)
from repro.sensitivity.local import local_sensitivities
from repro.sensitivity.importance import downtime_importance
from repro.sensitivity.exact import (
    availability_derivatives,
    downtime_derivatives,
    stationary_derivative,
)

__all__ = [
    "SweepResult",
    "parametric_sweep",
    "parametric_sweep_2d",
    "local_sensitivities",
    "downtime_importance",
    "availability_derivatives",
    "downtime_derivatives",
    "stationary_derivative",
]
