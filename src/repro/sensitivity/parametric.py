"""Parametric sweeps: metric vs. one or two parameters.

This is RAScad's "parametric analysis capability" used for the paper's
Figs. 5 and 6 (availability vs. the AS HW/OS failure recovery time).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro.exceptions import EstimationError

MetricFunction = Callable[[Dict[str, float]], float]


@dataclass(frozen=True)
class SweepResult:
    """Result of a one-dimensional parametric sweep.

    Attributes:
        parameter: Swept parameter name.
        grid: The parameter values evaluated.
        values: Metric value at each grid point.
        metric_name: Label for reports.
    """

    parameter: str
    grid: Tuple[float, ...]
    values: Tuple[float, ...]
    metric_name: str = "metric"

    def crossing(self, threshold: float) -> float:
        """First grid abscissa where the metric crosses the threshold.

        Linear interpolation between the bracketing grid points; raises
        if the metric never crosses.  Used to find where availability
        drops below "five 9s" in the Fig. 5 reproduction.
        """
        values = np.asarray(self.values)
        above = values >= threshold
        if above.all() or (~above).all():
            raise EstimationError(
                f"metric never crosses {threshold!r} on the grid"
            )
        for i in range(len(values) - 1):
            if above[i] != above[i + 1]:
                x0, x1 = self.grid[i], self.grid[i + 1]
                y0, y1 = values[i], values[i + 1]
                if y1 == y0:
                    return float(x0)
                return float(x0 + (threshold - y0) * (x1 - x0) / (y1 - y0))
        raise EstimationError("no crossing found")  # pragma: no cover

    def as_rows(self) -> List[Tuple[float, float]]:
        """(grid value, metric value) pairs — the figure's data series."""
        return list(zip(self.grid, self.values))

    def ascii_plot(self, width: int = 60, height: int = 12) -> str:
        """Minimal ASCII rendering of the series, for terminal reports."""
        values = np.asarray(self.values, dtype=float)
        lo, hi = float(values.min()), float(values.max())
        span = hi - lo or 1.0
        columns = np.linspace(0, len(values) - 1, width).round().astype(int)
        rows = []
        for level in range(height, -1, -1):
            cut = lo + span * level / height
            line = "".join(
                "*" if values[c] >= cut else " " for c in columns
            )
            label = f"{cut:.7f}" if span < 1e-2 else f"{cut:.4g}"
            rows.append(f"{label} |{line}")
        rows.append(
            " " * 10
            + f"{self.parameter}: {self.grid[0]:.3g} .. {self.grid[-1]:.3g}"
        )
        return "\n".join(rows)


def parametric_sweep(
    metric: MetricFunction,
    parameter: str,
    grid: Sequence[float],
    base_values: Mapping[str, float],
    metric_name: str = "metric",
) -> SweepResult:
    """Evaluate ``metric`` with ``parameter`` set to each grid value.

    ``base_values`` supplies every other parameter; the swept parameter
    need not pre-exist in it.
    """
    if len(grid) < 2:
        raise EstimationError("a sweep needs at least two grid points")
    if callable(getattr(metric, "evaluate_batch", None)):
        # Batch-capable metric: evaluate the whole grid in one compiled
        # solve (bit-identical to the per-point loop; see
        # repro.core.compiled).
        columns: Dict[str, object] = dict(base_values)
        columns[parameter] = np.array([float(g) for g in grid], dtype=float)
        raw = metric.evaluate_batch(columns, len(grid))
        values = [float(v) for v in np.asarray(raw, dtype=float)]
    else:
        values = []
        for point in grid:
            merged = dict(base_values)
            merged[parameter] = float(point)
            values.append(float(metric(merged)))
    return SweepResult(
        parameter=parameter,
        grid=tuple(float(g) for g in grid),
        values=tuple(values),
        metric_name=metric_name,
    )


def parametric_sweep_2d(
    metric: MetricFunction,
    parameter_x: str,
    grid_x: Sequence[float],
    parameter_y: str,
    grid_y: Sequence[float],
    base_values: Mapping[str, float],
) -> np.ndarray:
    """2-D sweep; returns a ``(len(grid_x), len(grid_y))`` metric array."""
    if len(grid_x) < 2 or len(grid_y) < 2:
        raise EstimationError("2-D sweeps need at least two points per axis")
    nx, ny = len(grid_x), len(grid_y)
    if callable(getattr(metric, "evaluate_batch", None)):
        # One compiled solve over the flattened grid (row-major, matching
        # the loop order below).
        xs = np.repeat(np.array([float(x) for x in grid_x]), ny)
        ys = np.tile(np.array([float(y) for y in grid_y]), nx)
        columns: Dict[str, object] = dict(base_values)
        columns[parameter_x] = xs
        columns[parameter_y] = ys
        raw = metric.evaluate_batch(columns, nx * ny)
        return np.asarray(raw, dtype=float).reshape(nx, ny)
    out = np.empty((nx, ny))
    for i, x in enumerate(grid_x):
        for j, y in enumerate(grid_y):
            merged = dict(base_values)
            merged[parameter_x] = float(x)
            merged[parameter_y] = float(y)
            out[i, j] = float(metric(merged))
    return out
