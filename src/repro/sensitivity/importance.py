"""Range-based parameter importance.

Ranks parameters by how much the metric swings when each one traverses
its plausible range while the others stay at base values — a simple,
robust "tornado diagram" measure that complements the derivative-based
:mod:`repro.sensitivity.local` (which can understate parameters whose
effect is nonlinear over the range).
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Tuple

from repro.exceptions import EstimationError

MetricFunction = Callable[[Dict[str, float]], float]


def downtime_importance(
    metric: MetricFunction,
    ranges: Mapping[str, Tuple[float, float]],
    base_values: Mapping[str, float],
) -> Dict[str, float]:
    """One-at-a-time swing of the metric over each parameter's range.

    Args:
        metric: Callable from a parameter dict to the metric value.
        ranges: ``{parameter: (low, high)}`` plausible ranges (the same
            ranges the uncertainty analysis samples from).
        base_values: Values for all parameters at the operating point.

    Returns:
        ``{parameter: |metric(high) - metric(low)|}``, sorted descending
        by swing, so iterating the dict yields the most influential
        parameter first.
    """
    if not ranges:
        raise EstimationError("at least one parameter range is required")
    swings: Dict[str, float] = {}
    for name, (low, high) in ranges.items():
        if low > high:
            raise EstimationError(
                f"range for {name!r} is inverted: ({low}, {high})"
            )
        at_low = dict(base_values)
        at_low[name] = float(low)
        at_high = dict(base_values)
        at_high[name] = float(high)
        swings[name] = abs(float(metric(at_high)) - float(metric(at_low)))
    return dict(sorted(swings.items(), key=lambda kv: kv[1], reverse=True))
