"""Sampling distributions for uncertain parameters.

Each distribution maps a uniform [0, 1) variate to a parameter value via
its inverse CDF (:meth:`Distribution.ppf`).  Driving every distribution
through the inverse CDF lets plain Monte Carlo and Latin hypercube
sampling share the same distribution objects.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.exceptions import EstimationError


class Distribution:
    """Interface for a one-dimensional sampling distribution."""

    def ppf(self, u: float) -> float:
        """Inverse CDF: map ``u in [0, 1)`` to a sample value."""
        raise NotImplementedError

    @property
    def mean(self) -> float:
        """Analytic mean, used in reports."""
        raise NotImplementedError

    def support(self) -> tuple:
        """The (low, high) support, used for validation and reports."""
        raise NotImplementedError


@dataclass(frozen=True)
class Uniform(Distribution):
    """Uniform on [low, high] — the distribution the paper samples from.

    The paper's §7 lists plain ranges (e.g. ``La_as: 10/year – 50/year``)
    and RAScad's uncertainty analysis draws uniformly from them; the
    published means (3.78 and 2.99 minutes) are consistent with uniform
    sampling, which we verify in the benchmarks.
    """

    low: float
    high: float

    def __post_init__(self) -> None:
        if not (self.low < self.high):
            raise EstimationError(
                f"Uniform requires low < high, got [{self.low}, {self.high}]"
            )

    def ppf(self, u: float) -> float:
        return self.low + (self.high - self.low) * u

    @property
    def mean(self) -> float:
        return 0.5 * (self.low + self.high)

    def support(self) -> tuple:
        return (self.low, self.high)


@dataclass(frozen=True)
class LogUniform(Distribution):
    """Log-uniform on [low, high]; natural for rates spanning decades."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if not (0.0 < self.low < self.high):
            raise EstimationError(
                f"LogUniform requires 0 < low < high, got "
                f"[{self.low}, {self.high}]"
            )

    def ppf(self, u: float) -> float:
        return math.exp(
            math.log(self.low) + (math.log(self.high) - math.log(self.low)) * u
        )

    @property
    def mean(self) -> float:
        span = math.log(self.high) - math.log(self.low)
        return (self.high - self.low) / span

    def support(self) -> tuple:
        return (self.low, self.high)


@dataclass(frozen=True)
class Triangular(Distribution):
    """Triangular on [low, high] with the given mode.

    Useful for "most-likely plus pessimistic tail" engineering judgments.
    """

    low: float
    mode: float
    high: float

    def __post_init__(self) -> None:
        if not (self.low <= self.mode <= self.high) or self.low >= self.high:
            raise EstimationError(
                f"Triangular requires low <= mode <= high with low < high, "
                f"got ({self.low}, {self.mode}, {self.high})"
            )

    def ppf(self, u: float) -> float:
        span = self.high - self.low
        cut = (self.mode - self.low) / span
        if u < cut:
            return self.low + math.sqrt(u * span * (self.mode - self.low))
        return self.high - math.sqrt((1.0 - u) * span * (self.high - self.mode))

    @property
    def mean(self) -> float:
        return (self.low + self.mode + self.high) / 3.0

    def support(self) -> tuple:
        return (self.low, self.high)


@dataclass(frozen=True)
class Fixed(Distribution):
    """A degenerate distribution — include a parameter in the snapshot
    table without actually varying it."""

    value: float

    def ppf(self, u: float) -> float:
        return self.value

    @property
    def mean(self) -> float:
        return self.value

    def support(self) -> tuple:
        return (self.value, self.value)
