"""Result container for an uncertainty analysis run."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.estimation.intervals import percentile_interval
from repro.exceptions import EstimationError


@dataclass(frozen=True)
class UncertaintyResult:
    """Outputs of an uncertainty analysis.

    Attributes:
        metric_name: Name of the analyzed output metric.
        values: One metric value per parameter snapshot.
        snapshots: The sampled parameter dictionaries, same order.
    """

    metric_name: str
    values: Tuple[float, ...]
    snapshots: Tuple[Dict[str, float], ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.values:
            raise EstimationError("uncertainty result has no samples")
        if self.snapshots and len(self.snapshots) != len(self.values):
            raise EstimationError(
                "snapshot count does not match value count"
            )

    @property
    def n_samples(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        return float(np.mean(self.values))

    @property
    def std(self) -> float:
        if self.n_samples < 2:
            return 0.0
        return float(np.std(self.values, ddof=1))

    def confidence_interval(self, confidence: float = 0.80) -> Tuple[float, float]:
        """Central empirical interval over the sampled population.

        This matches the paper's reporting: "the 80% confidence interval
        is (1.9 min., 6.0 min.)" means 80% of sampled systems fall in
        that range.
        """
        return percentile_interval(self.values, confidence)

    def percentile(self, q: float) -> float:
        return float(np.percentile(self.values, q))

    def fraction_below(self, threshold: float) -> float:
        """Fraction of sampled systems with metric below the threshold.

        Used for statements like "over 80% of sampled systems have yearly
        downtime less than 5.25 minutes".
        """
        values = np.asarray(self.values)
        return float((values < threshold).mean())

    def summary(self, confidence_levels: Sequence[float] = (0.80, 0.90)) -> str:
        parts = [
            f"{self.metric_name}: mean={self.mean:.3g} over "
            f"{self.n_samples} samples"
        ]
        for level in confidence_levels:
            low, high = self.confidence_interval(level)
            parts.append(f"{level:.0%} CI=({low:.3g}, {high:.3g})")
        return ", ".join(parts)

    def scatter_rows(self) -> List[Tuple[int, float]]:
        """(snapshot index, value) pairs — the paper's scatter plots."""
        return list(enumerate(self.values))
