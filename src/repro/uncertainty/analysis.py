"""The uncertainty analysis driver.

Given a *solver function* (any callable mapping a parameter dict to a
metric value — typically a closure over a hierarchical model), a set of
parameter distributions, and base values for everything not varied, the
driver samples N snapshots, evaluates the metric for each, and returns an
:class:`~repro.uncertainty.results.UncertaintyResult`.

This mirrors the paper's Figs. 7–8 runs: six varied parameters, 1,000
snapshots, metric = yearly downtime in minutes.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Optional, Sequence

import numpy as np

from repro import obs, parallel
from repro.exceptions import EstimationError
from repro.uncertainty.distributions import Distribution
from repro.uncertainty.results import UncertaintyResult
from repro.uncertainty.sampling import (
    latin_hypercube_matrix,
    monte_carlo_matrix,
    snapshots_from_columns,
)

MetricFunction = Callable[[Dict[str, float]], float]

#: Protocol for batch-capable metrics: any callable that additionally
#: exposes ``evaluate_batch(columns, n_samples) -> (n_samples,) array``,
#: where ``columns`` maps parameter names to scalars or sample arrays.
#: ``repro.models.jsas.configs.HierarchicalConfigMetric`` is the
#: canonical implementation.


class UncertaintyAnalysis:
    """Configurable random-sampling uncertainty analysis.

    Example::

        analysis = UncertaintyAnalysis(
            metric=lambda p: solve_config1(p).yearly_downtime_minutes,
            metric_name="yearly downtime (minutes)",
            distributions={
                "La_as": Uniform(10 / 8760, 50 / 8760),
                "FIR": Uniform(0.0, 0.002),
            },
            base_values=PAPER_PARAMETERS.to_dict(),
        )
        result = analysis.run(n_samples=1000, seed=7)
        print(result.summary())
    """

    def __init__(
        self,
        metric: MetricFunction,
        distributions: Mapping[str, Distribution],
        base_values: Mapping[str, float],
        metric_name: str = "metric",
        sampler: str = "monte_carlo",
    ) -> None:
        if not callable(metric):
            raise EstimationError("metric must be callable")
        if sampler not in ("monte_carlo", "latin_hypercube"):
            raise EstimationError(
                f"unknown sampler {sampler!r}; expected 'monte_carlo' or "
                "'latin_hypercube'"
            )
        overlap_missing = set(distributions) - set(base_values)
        # Varied parameters need not pre-exist in base_values; they are
        # simply overlaid.  (No validation error — a metric closure may
        # accept extra keys.)
        del overlap_missing
        self.metric = metric
        self.metric_name = metric_name
        self.distributions = dict(distributions)
        self.base_values = dict(base_values)
        self.sampler = sampler

    def run(
        self,
        n_samples: int = 1000,
        seed: Optional[int] = None,
        keep_snapshots: bool = True,
        batch: Optional[bool] = None,
        n_jobs: Optional[int] = 1,
    ) -> UncertaintyResult:
        """Sample, solve, and summarize.

        Args:
            n_samples: Number of parameter snapshots (the paper uses 1000).
            seed: RNG seed for reproducibility.
            keep_snapshots: Store the sampled parameter dicts in the
                result (needed for scatter plots and importance
                post-processing; disable to save memory on huge runs).
            batch: Execution path.  ``None`` (default) uses the batched
                engine whenever the metric exposes ``evaluate_batch``
                (see :mod:`repro.core.compiled`); ``True`` requires it;
                ``False`` forces the per-snapshot callable path.  A
                seeded run returns byte-identical results either way —
                both paths draw the same samples and the batched solvers
                reproduce the scalar arithmetic exactly.
            n_jobs: Worker processes for the solve stage (``None`` = one
                per CPU).  Sampling always happens up front in the
                parent, and the solve fan-out runs through
                :func:`repro.parallel.map_chunked` with fixed chunk
                boundaries, so a seeded run is bit-identical for every
                ``n_jobs`` value.
        """
        batch_capable = callable(getattr(self.metric, "evaluate_batch", None))
        if batch is True and not batch_capable:
            raise EstimationError(
                "batch=True requires a metric with an evaluate_batch "
                "method; see repro.models.jsas.configs."
                "HierarchicalConfigMetric for the protocol"
            )
        use_batch = batch_capable if batch is None else bool(batch)
        jobs = parallel.resolve_jobs(n_jobs)
        with obs.span(
            "uncertainty.run",
            metric=self.metric_name,
            n_samples=n_samples,
            sampler=self.sampler,
            path="batch" if use_batch else "scalar",
            n_jobs=jobs,
        ):
            rng = np.random.default_rng(seed)
            with obs.span("uncertainty.sample", sampler=self.sampler):
                if self.sampler == "monte_carlo":
                    columns = monte_carlo_matrix(
                        self.distributions, n_samples, rng
                    )
                else:
                    columns = latin_hypercube_matrix(
                        self.distributions, n_samples, rng
                    )
            if use_batch:
                merged_columns: Dict[str, object] = dict(self.base_values)
                merged_columns.update(columns)
                with obs.span("uncertainty.solve", path="batch"):
                    if jobs == 1:
                        raw = self.metric.evaluate_batch(
                            merged_columns, n_samples
                        )
                    else:
                        raw = parallel.map_chunked(
                            self._batch_range_evaluator(merged_columns),
                            n_samples,
                            n_jobs=jobs,
                        )
                with obs.span("uncertainty.summarize"):
                    values = tuple(
                        float(v) for v in np.asarray(raw, dtype=float)
                    )
                    # With keep_snapshots=False the per-sample dicts are
                    # never materialized at all — the batched path works
                    # on columns.
                    snapshots = (
                        tuple(snapshots_from_columns(columns, n_samples))
                        if keep_snapshots
                        else ()
                    )
                    return UncertaintyResult(
                        metric_name=self.metric_name,
                        values=values,
                        snapshots=snapshots,
                    )
            snapshot_dicts = snapshots_from_columns(columns, n_samples)
            with obs.span("uncertainty.solve", path="scalar"):
                if jobs == 1:
                    # One merged dict, updated in place: every snapshot
                    # carries the same key set, so overlaying each one on
                    # the previous state is equivalent to re-copying
                    # base_values per snapshot.
                    merged = dict(self.base_values)
                    scalar_values = []
                    for snapshot in snapshot_dicts:
                        merged.update(snapshot)
                        scalar_values.append(float(self.metric(merged)))
                else:
                    scalar_values = [
                        float(v)
                        for v in parallel.map_chunked(
                            self._scalar_range_evaluator(snapshot_dicts),
                            n_samples,
                            n_jobs=jobs,
                        )
                    ]
            with obs.span("uncertainty.summarize"):
                return UncertaintyResult(
                    metric_name=self.metric_name,
                    values=tuple(scalar_values),
                    snapshots=tuple(snapshot_dicts) if keep_snapshots else (),
                )

    # Parallel range evaluators -------------------------------------------

    def _batch_range_evaluator(
        self, merged_columns: Mapping[str, object]
    ) -> Callable[[int, int], np.ndarray]:
        """A per-chunk slice of the batched solve.

        Every batched solver stage is per-sample independent (verified
        by the chunk-determinism tests in ``tests/kernels`` and
        ``tests/ctmc``), so evaluating ``[start:stop)`` alone is
        bit-identical to that slice of the full-batch result.
        """

        def evaluate_range(start: int, stop: int) -> np.ndarray:
            sliced = {
                name: column[start:stop]
                if isinstance(column, np.ndarray)
                else column
                for name, column in merged_columns.items()
            }
            return np.asarray(
                self.metric.evaluate_batch(sliced, stop - start),
                dtype=float,
            )

        return evaluate_range

    def _scalar_range_evaluator(
        self, snapshot_dicts: Sequence[Dict[str, float]]
    ) -> Callable[[int, int], np.ndarray]:
        def evaluate_range(start: int, stop: int) -> np.ndarray:
            merged = dict(self.base_values)
            out = np.empty(stop - start, dtype=float)
            for i in range(start, stop):
                merged.update(snapshot_dicts[i])
                out[i - start] = float(self.metric(merged))
            return out

        return evaluate_range

    def run_at_means(self) -> float:
        """Evaluate the metric with every varied parameter at its mean.

        Useful as a cheap sanity anchor: for mildly nonlinear metrics the
        sampled mean should land near this value.
        """
        merged = dict(self.base_values)
        for name, dist in self.distributions.items():
            merged[name] = dist.mean
        return float(self.metric(merged))
