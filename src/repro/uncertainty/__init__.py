"""Uncertainty analysis: random sampling over parameter ranges.

Implements RAScad's "multivariate/uncertainty analysis" capability used
for the paper's Figs. 7 and 8: draw N parameter snapshots from stated
ranges, solve the model for each, and report the mean of the output
metric with empirical confidence intervals.
"""

from repro.uncertainty.distributions import (
    Distribution,
    Fixed,
    LogUniform,
    Triangular,
    Uniform,
)
from repro.uncertainty.sampling import (
    latin_hypercube_matrix,
    latin_hypercube_samples,
    monte_carlo_matrix,
    monte_carlo_samples,
)
from repro.uncertainty.analysis import UncertaintyAnalysis
from repro.uncertainty.results import UncertaintyResult
from repro.uncertainty.decomposition import first_order_indices

__all__ = [
    "first_order_indices",
    "Distribution",
    "Fixed",
    "LogUniform",
    "Triangular",
    "Uniform",
    "latin_hypercube_matrix",
    "latin_hypercube_samples",
    "monte_carlo_matrix",
    "monte_carlo_samples",
    "UncertaintyAnalysis",
    "UncertaintyResult",
]
